"""Legacy setup shim: the sandbox has no `wheel` package and no network,
so PEP 660 editable installs fail; `setup.py develop` works offline."""

from setuptools import setup

setup()
