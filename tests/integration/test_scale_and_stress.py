"""Integration: concurrency stress and conservation at moderate scale."""

import threading

from repro.analysis import CpuAnalysis, reconstruct
from repro.analysis import reconstruct_from_records
from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem
from repro.core import MonitorMode
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb, ThreadPool

IDL = "module ST { interface Svc { long step(in long n); }; };"


class TestConcurrencyStress:
    def test_many_clients_many_calls(self, cluster):
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)
        server = cluster.process("server")
        server_orb = Orb(server, cluster.network, policy=ThreadPool(size=4),
                         registry=registry)

        class SvcImpl(compiled.Svc):
            def step(self, n):
                cluster.clock.consume(10)
                return n + 1

        ref = server_orb.activate(SvcImpl())
        clients, threads = [], []
        CLIENTS, CALLS = 8, 25
        for index in range(CLIENTS):
            client = cluster.process(f"client{index}")
            stub = Orb(client, cluster.network, registry=registry).resolve(ref)
            threads.append(
                threading.Thread(
                    target=lambda stub=stub: [stub.step(i) for i in range(CALLS)]
                )
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        records = cluster.all_records()
        assert len(records) == CLIENTS * CALLS * 4
        dscg = reconstruct_from_records(records)
        stats = dscg.stats()
        assert stats["chains"] == CLIENTS
        assert stats["nodes"] == CLIENTS * CALLS
        assert stats["abnormal_events"] == 0

    def test_event_numbers_dense_under_concurrency(self, cluster):
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)
        server = cluster.process("server")
        server_orb = Orb(server, cluster.network, registry=registry)

        class SvcImpl(compiled.Svc):
            def step(self, n):
                return n

        ref = server_orb.activate(SvcImpl())
        threads = []
        for index in range(6):
            client = cluster.process(f"c{index}")
            stub = Orb(client, cluster.network, registry=registry).resolve(ref)
            threads.append(
                threading.Thread(target=lambda stub=stub: [stub.step(i) for i in range(10)])
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        from collections import defaultdict

        per_chain = defaultdict(list)
        for record in cluster.all_records():
            per_chain[record.chain_uuid].append(record.event_seq)
        for seqs in per_chain.values():
            assert sorted(seqs) == list(range(len(seqs)))


class TestEmbeddedCpuConservation:
    def test_cpu_conserved_over_thousand_calls(self):
        config = EmbeddedConfig(
            components=20, interfaces=10, methods=30, processes=3,
            pool_threads_per_process=6, seed=11, cost_ns=100,
        )
        system = EmbeddedSystem(config, mode=MonitorMode.CPU, uuid_prefix="ce")
        try:
            system.run(total_calls=1_000, roots=4)
            database, run_id = system.collect()
            dscg = reconstruct(database, run_id)
            cpu = CpuAnalysis(dscg)
            # each call burns exactly cost_ns on the virtual clock
            assert cpu.total_by_processor().total_ns() == 1_000 * config.cost_ns
            roots_total = 0
            for tree in dscg.root_chains():
                for root in tree.roots:
                    roots_total += cpu.inclusive_cpu(root).total_ns()
            assert roots_total == 1_000 * config.cost_ns
        finally:
            system.shutdown()
