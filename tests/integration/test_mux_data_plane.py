"""Integration: the multiplexed data plane is analyzer-invisible.

The fast path (shared mux channels, fused CDR, batched probe logging)
must change *throughput*, never *observations*: for a fixed workload the
reconstructed DSCG — serialized canonically — is bit-identical whether
the client ORB runs ``channel="mux"`` or the legacy
``channel="per-thread"`` lock-step loop, and pipelined concurrent
callers still produce complete, well-formed chains.
"""

from __future__ import annotations

import threading

from repro.analysis import reconstruct_from_records
from repro.analysis.serialize import dscg_to_json
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
    TracingEvent,
)
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

IDL = """
module DP {
  interface Back { long add(in long a, in long b); };
  interface Front { long compute(in long n); };
};
"""


class _Deployment:
    """Two-tier deployment (client -> front -> back) on one host."""

    def __init__(self, channel: str):
        self.clock = VirtualClock()
        self.network = Network()
        self.host = Host("dp-host", PlatformKind.HPUX_11, clock=self.clock)
        self.registry = InterfaceRegistry()
        self.compiled = compile_idl(IDL, instrument=True, registry=self.registry)
        uuid_factory = SequentialUuidFactory()
        self.processes = []
        for name in ("client", "front", "back"):
            process = SimProcess(name, self.host)
            MonitoringRuntime(
                process,
                MonitorConfig(mode=MonitorMode.LATENCY, uuid_factory=uuid_factory),
            )
            self.processes.append(process)
        client, front, back = self.processes
        self.client_orb = Orb(client, self.network, registry=self.registry, channel=channel)
        self.front_orb = Orb(front, self.network, registry=self.registry, channel=channel)
        self.back_orb = Orb(back, self.network, registry=self.registry)
        compiled, clock = self.compiled, self.clock

        class BackImpl(compiled.Back):
            def add(self, a, b):
                clock.consume(50)
                return a + b

        back_ref = self.back_orb.activate(BackImpl())
        back_stub = self.front_orb.resolve(back_ref)

        class FrontImpl(compiled.Front):
            def compute(self, n):
                clock.consume(100)
                return back_stub.add(n, n)

        self.stub = self.client_orb.resolve(self.front_orb.activate(FrontImpl()))

    def records(self):
        out = []
        for process in self.processes:
            out.extend(process.log_buffer.snapshot())
        out.sort(key=lambda r: (r.chain_uuid, r.event_seq))
        return out

    def shutdown(self):
        for orb in (self.client_orb, self.front_orb, self.back_orb):
            orb.shutdown()
        for process in self.processes:
            process.shutdown()


def _run_fixed_workload(channel: str) -> str:
    deployment = _Deployment(channel)
    try:
        for n in range(12):
            assert deployment.stub.compute(n) == 2 * n
        dscg = reconstruct_from_records(deployment.records())
        return dscg_to_json(dscg)
    finally:
        deployment.shutdown()


class TestAnalyzerInvisibility:
    def test_mux_and_per_thread_dscg_bit_identical(self):
        mux_json = _run_fixed_workload("mux")
        legacy_json = _run_fixed_workload("per-thread")
        assert mux_json == legacy_json

    def test_mux_run_is_self_deterministic(self):
        assert _run_fixed_workload("mux") == _run_fixed_workload("mux")


class TestPipelinedChains:
    def test_concurrent_callers_produce_complete_chains(self):
        deployment = _Deployment("mux")
        try:
            results: dict[int, list] = {}
            barrier = threading.Barrier(4)

            def worker(worker_id):
                barrier.wait()
                values = [deployment.stub.compute(n) for n in range(8)]
                results[worker_id] = values

            threads = [
                threading.Thread(target=worker, args=(k,)) for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert all(results[k] == [2 * n for n in range(8)] for k in range(4))
            records = deployment.records()
            # 4 workers x 8 calls x 2 hops x 4 probe events per hop.
            assert len(records) == 4 * 8 * 2 * 4
            by_chain: dict[str, list] = {}
            for record in records:
                by_chain.setdefault(record.chain_uuid, []).append(record)
            # One chain per client thread (the FTL persists in TSS across
            # sequential calls from the same thread — observation O1/O2),
            # and pipelining must not bleed events across those chains.
            assert len(by_chain) == 4
            for chain_records in by_chain.values():
                events = [r.event for r in chain_records]
                assert events.count(TracingEvent.STUB_START) == 16
                assert events.count(TracingEvent.SKEL_END) == 16
            dscg = reconstruct_from_records(records)
            assert not dscg.abnormal_events()
            assert dscg.node_count() == 64
            # All four client threads shared one channel per endpoint.
            assert len(deployment.client_orb._channels) == 1
        finally:
            deployment.shutdown()
