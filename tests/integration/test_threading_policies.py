"""Integration: observations O1/O2 — causality survives every threading policy."""

import threading

import pytest

from repro.analysis import reconstruct_from_records
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb, ThreadPerConnection, ThreadPerRequest, ThreadPool

IDL = """
module TP {
  interface Svc {
    long step(in long depth);
  };
};
"""


def run_workload(cluster, policy, clients=4, calls=3):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    server = cluster.process(f"server-{policy.name}")
    server_orb = Orb(server, cluster.network, policy=policy, registry=registry)

    class SvcImpl(compiled.Svc):
        self_stub = None

        def step(self, depth):
            cluster.clock.consume(500)
            if depth > 0:
                return self.self_stub.step(depth - 1) + 1
            return 0

    impl = SvcImpl()
    ref = server_orb.activate(impl)
    impl.self_stub = server_orb.resolve(ref)

    threads = []
    for index in range(clients):
        client = cluster.process(f"client-{policy.name}-{index}")
        orb = Orb(client, cluster.network, registry=registry)
        stub = orb.resolve(ref)

        def work(stub=stub):
            for _ in range(calls):
                assert stub.step(2) == 2

        threads.append(threading.Thread(target=work))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    records = []
    for process in cluster.processes:
        records.extend(process.log_buffer.drain())
    return reconstruct_from_records(records)


@pytest.mark.parametrize(
    "policy_factory",
    [ThreadPerRequest, ThreadPerConnection, lambda: ThreadPool(size=2)],
    ids=["thread-per-request", "thread-per-connection", "thread-pool"],
)
def test_chains_never_intertwine(cluster, policy_factory):
    dscg = run_workload(cluster, policy_factory())
    stats = dscg.stats()
    # 4 client threads: each produces one chain of 3 sibling roots with
    # 2 nested recursion levels each = 3 nodes per root.
    assert stats["chains"] == 4
    assert stats["nodes"] == 4 * 3 * 3
    assert stats["abnormal_events"] == 0
    assert stats["max_depth"] == 3
    for tree in dscg.chains.values():
        assert len(tree.roots) == 3


def test_pool_threads_are_recycled_with_fresh_ftls(cluster):
    # A pool of ONE thread serves every request; the single recycled
    # thread must be re-annotated with each incoming call's FTL (O2).
    dscg = run_workload(cluster, ThreadPool(size=1), clients=3, calls=2)
    assert dscg.stats()["abnormal_events"] == 0
    assert dscg.stats()["chains"] == 3
    server_threads = set()
    for node in dscg.walk():
        entity = node.server_thread
        if entity is not None and "server" in entity[0]:
            server_threads.add(entity)
    # every top-level dispatch ran on the same recycled pool thread
    top_level_threads = {
        node.server_thread
        for tree in dscg.chains.values()
        for node in tree.roots
    }
    assert len(top_level_threads) == 1
