"""Integration: remaining IDL features end-to-end through the ORB.

Attributes (expanded to ``_get_/_set_`` operations), interface
inheritance on live stubs, object-reference sequences, and constants.
"""

import pytest

from repro.analysis import reconstruct_from_records
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb

IDL = """
module Feat {
  const long MAX_SLOTS = 4;

  interface Probe {
    readonly attribute long reading;
    attribute string label;
  };

  interface Collector {
    long gather(in sequence<Probe> probes);
  };

  interface Base {
    long base_value();
  };

  interface Derived : Base {
    long derived_value();
  };
};
"""


@pytest.fixture
def deployment(cluster):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    client = cluster.process("client")
    server = cluster.process("server")
    client_orb = Orb(client, cluster.network, registry=registry)
    server_orb = Orb(server, cluster.network, registry=registry)
    return compiled, cluster, client_orb, server_orb


class TestAttributes:
    def make_probe(self, compiled, server_orb):
        class ProbeImpl(compiled.Probe):
            def __init__(self):
                self._reading = 42
                self._label = "initial"

            def _get_reading(self):
                return self._reading

            def _get_label(self):
                return self._label

            def _set_label(self, value):
                self._label = value

        return server_orb.activate(ProbeImpl(), interface="Feat::Probe")

    def test_readonly_attribute_get(self, deployment):
        compiled, cluster, client_orb, server_orb = deployment
        stub = client_orb.resolve(self.make_probe(compiled, server_orb))
        assert stub._get_reading() == 42

    def test_readwrite_attribute(self, deployment):
        compiled, cluster, client_orb, server_orb = deployment
        stub = client_orb.resolve(self.make_probe(compiled, server_orb))
        assert stub._get_label() == "initial"
        stub._set_label("updated")
        assert stub._get_label() == "updated"

    def test_readonly_has_no_setter(self, deployment):
        compiled, cluster, client_orb, server_orb = deployment
        stub = client_orb.resolve(self.make_probe(compiled, server_orb))
        assert not hasattr(type(stub), "_set_reading")

    def test_attribute_access_is_traced(self, deployment):
        compiled, cluster, client_orb, server_orb = deployment
        stub = client_orb.resolve(self.make_probe(compiled, server_orb))
        stub._get_reading()
        records = cluster.all_records()
        assert {r.operation for r in records} == {"_get_reading"}
        assert len(records) == 4


class TestInheritance:
    def test_derived_stub_serves_base_operations(self, deployment):
        compiled, cluster, client_orb, server_orb = deployment

        class DerivedImpl(compiled.Derived):
            def base_value(self):
                return 10

            def derived_value(self):
                return 20

        ref = server_orb.activate(DerivedImpl(), interface="Feat::Derived")
        stub = client_orb.resolve(ref)
        assert stub.base_value() == 10
        assert stub.derived_value() == 20
        # inherited op records carry the *derived* interface identity
        records = cluster.all_records()
        assert {r.interface for r in records} == {"Feat::Derived"}


class TestReferenceSequences:
    def test_sequence_of_object_references(self, deployment):
        compiled, cluster, client_orb, server_orb = deployment

        class ProbeImpl(compiled.Probe):
            def __init__(self, reading):
                self._reading = reading

            def _get_reading(self):
                return self._reading

            def _get_label(self):
                return ""

            def _set_label(self, value):
                pass

        class CollectorImpl(compiled.Collector):
            def gather(self, probes):
                return sum(p._get_reading() for p in probes)

        probe_stubs = []
        for reading in (1, 2, 3):
            ref = server_orb.activate(ProbeImpl(reading), interface="Feat::Probe")
            probe_stubs.append(client_orb.resolve(ref))
        collector_ref = server_orb.activate(CollectorImpl(), interface="Feat::Collector")
        collector = client_orb.resolve(collector_ref)
        assert collector.gather(probe_stubs) == 6

        # gather's nested _get_reading calls are children in the chain
        dscg = reconstruct_from_records(cluster.all_records())
        gather_nodes = dscg.nodes_for_function("Feat::Collector", "gather")
        assert len(gather_nodes) == 1
        assert len(gather_nodes[0].children) == 3
        assert not dscg.abnormal_events()


class TestConstants:
    def test_constant_exposed(self, deployment):
        compiled, *_ = deployment
        assert compiled.namespace["Feat_MAX_SLOTS"] == 4
        assert compiled.MAX_SLOTS == 4
