"""Integration: the asyncio data plane is analyzer-invisible.

The event-loop plane (stream-framed GIOP, awaitable mux, async
stubs/skeletons, contextvar FTL) must change *how calls wait*, never
*what the analyzer sees*: for a fixed workload the reconstructed DSCG —
serialized canonically — is bit-identical to the threaded plane, on both
storage backends, down to the CCSG XML; and thousands of pipelined tasks
still produce complete, well-formed chains.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis import (
    CpuAnalysis,
    build_ccsg,
    dscg_to_json,
    reconstruct,
    reconstruct_from_records,
    render_ccsg_xml,
)
from repro.collector import LogCollector, MonitoringDatabase
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
    TracingEvent,
)
from repro.idl import compile_idl
from repro.orb import AsyncioDispatch, InterfaceRegistry, Orb
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock
from repro.store import SegmentStore

IDL = """
module ADP {
  interface Back { long add(in long a, in long b); };
  interface Front { long compute(in long n); };
};
"""


class _Deployment:
    """Two-tier deployment (client -> front -> back), either plane.

    ``plane="threaded"`` is the reference: sync stubs over the threaded
    mux channel. ``plane="async"`` compiles the same IDL with
    ``async_mode``, routes the client and middle tier over
    ``channel="asyncio"`` and dispatches the servers on event loops.
    """

    def __init__(self, plane: str):
        self.plane = plane
        self.clock = VirtualClock()
        self.network = Network()
        self.host = Host("adp-host", PlatformKind.HPUX_11, clock=self.clock)
        self.registry = InterfaceRegistry()
        self.compiled = compile_idl(
            IDL,
            instrument=True,
            registry=self.registry,
            async_mode=(plane == "async"),
        )
        uuid_factory = SequentialUuidFactory()
        self.processes = []
        for name in ("client", "front", "back"):
            process = SimProcess(name, self.host)
            MonitoringRuntime(
                process,
                MonitorConfig(mode=MonitorMode.LATENCY, uuid_factory=uuid_factory),
            )
            self.processes.append(process)
        client, front, back = self.processes
        if plane == "async":
            channel = "asyncio"
            policies = (AsyncioDispatch(), AsyncioDispatch())
        else:
            channel = "mux"
            policies = (None, None)
        self.client_orb = Orb(
            client, self.network, registry=self.registry, channel=channel
        )
        self.front_orb = Orb(
            front, self.network, policy=policies[0],
            registry=self.registry, channel=channel,
        )
        self.back_orb = Orb(
            back, self.network, policy=policies[1], registry=self.registry
        )
        compiled, clock = self.compiled, self.clock

        if plane == "async":

            class BackImpl(compiled.Back):
                async def add(self, a, b):
                    clock.consume(50)
                    return a + b

            back_stub = self.front_orb.resolve(self.back_orb.activate(BackImpl()))

            class FrontImpl(compiled.Front):
                async def compute(self, n):
                    clock.consume(100)
                    return await back_stub.add(n, n)

        else:

            class BackImpl(compiled.Back):
                def add(self, a, b):
                    clock.consume(50)
                    return a + b

            back_stub = self.front_orb.resolve(self.back_orb.activate(BackImpl()))

            class FrontImpl(compiled.Front):
                def compute(self, n):
                    clock.consume(100)
                    return back_stub.add(n, n)

        self.stub = self.client_orb.resolve(self.front_orb.activate(FrontImpl()))

    def drive_sequential(self, calls: int) -> list:
        """Run ``calls`` invocations in one logical chain, either plane."""
        if self.plane == "async":

            async def drive():
                return [await self.stub.compute(n) for n in range(calls)]

            return asyncio.run(drive())
        return [self.stub.compute(n) for n in range(calls)]

    def records(self):
        out = []
        for process in self.processes:
            out.extend(process.log_buffer.snapshot())
        out.sort(key=lambda r: (r.chain_uuid, r.event_seq))
        return out

    def shutdown(self):
        for orb in (self.client_orb, self.front_orb, self.back_orb):
            orb.shutdown()
        for process in self.processes:
            process.shutdown()


def _run_fixed_workload(plane: str) -> str:
    deployment = _Deployment(plane)
    try:
        assert deployment.drive_sequential(12) == [2 * n for n in range(12)]
        return dscg_to_json(reconstruct_from_records(deployment.records()))
    finally:
        deployment.shutdown()


class TestAnalyzerInvisibility:
    def test_async_and_threaded_dscg_bit_identical(self):
        assert _run_fixed_workload("async") == _run_fixed_workload("threaded")

    def test_async_run_is_self_deterministic(self):
        assert _run_fixed_workload("async") == _run_fixed_workload("async")


class TestBackendIdentity:
    """Both planes, collected into both backends: one analyzer truth."""

    @pytest.fixture(scope="class")
    def captures(self, tmp_path_factory):
        out = {}
        for plane in ("async", "threaded"):
            deployment = _Deployment(plane)
            try:
                deployment.drive_sequential(12)
                sqlite = MonitoringDatabase()
                segment = SegmentStore(
                    str(tmp_path_factory.mktemp(f"adp-{plane}") / "store"),
                    auto_compact=0,
                )
                LogCollector(sqlite).collect(
                    deployment.processes, run_id="adp", description=plane,
                    drain=False,
                )
                LogCollector(backend=segment).collect(
                    deployment.processes, run_id="adp", description=plane
                )
                out[plane] = (sqlite, segment)
            finally:
                deployment.shutdown()
        yield out
        for sqlite, segment in out.values():
            sqlite.close()
            segment.close()

    def test_dscg_identical_across_planes_and_backends(self, captures):
        serialized = {
            (plane, kind): dscg_to_json(reconstruct(backend, "adp", annotate=True))
            for plane, backends in captures.items()
            for kind, backend in zip(("sqlite", "segment"), backends)
        }
        reference = serialized[("threaded", "sqlite")]
        assert all(value == reference for value in serialized.values()), sorted(
            key for key, value in serialized.items() if value != reference
        )

    def test_ccsg_xml_identical_across_planes_and_backends(self, captures):
        rendered = set()
        for plane, backends in captures.items():
            for backend in backends:
                dscg = reconstruct(backend, "adp", annotate=True)
                rendered.add(
                    render_ccsg_xml(
                        build_ccsg(dscg, CpuAnalysis(dscg)), description="adp"
                    )
                )
        assert len(rendered) == 1


class TestPipelinedTaskChains:
    def test_concurrent_tasks_produce_complete_chains(self):
        deployment = _Deployment("async")
        try:
            async def worker(worker_id):
                return [await deployment.stub.compute(n) for n in range(8)]

            async def main():
                return await asyncio.gather(*(worker(k) for k in range(6)))

            results = asyncio.run(main())
            assert all(row == [2 * n for n in range(8)] for row in results)
            records = deployment.records()
            # 6 tasks x 8 calls x 2 hops x 4 probe events per hop.
            assert len(records) == 6 * 8 * 2 * 4
            by_chain: dict[str, list] = {}
            for record in records:
                by_chain.setdefault(record.chain_uuid, []).append(record)
            # One chain per driver task: each gather child inherits no
            # bound FTL (the parent never called anything before the
            # fan-out), starts its own chain at its first root call, and
            # keeps it across sequential awaits — the task-plane analogue
            # of observation O1/O2. Pipelining must not bleed events
            # across those chains.
            assert len(by_chain) == 6
            for chain_records in by_chain.values():
                events = [r.event for r in chain_records]
                assert events.count(TracingEvent.STUB_START) == 16
                assert events.count(TracingEvent.SKEL_END) == 16
            dscg = reconstruct_from_records(records)
            assert not dscg.abnormal_events()
            assert dscg.node_count() == 96
            # All six tasks shared one asyncio channel per endpoint, and
            # the channel really pipelined them.
            assert len(deployment.client_orb._async_channels) == 1
            (channel,) = deployment.client_orb._async_channels.values()
            assert channel.peak_pending >= 2
        finally:
            deployment.shutdown()

    def test_high_fanout_single_process(self):
        # A smaller cousin of the bench's >=5000-in-flight capability
        # cell: a thousand concurrent awaits on one loop, one task each.
        deployment = _Deployment("async")
        try:
            async def main():
                return await asyncio.gather(
                    *(deployment.stub.compute(n) for n in range(1000))
                )

            results = asyncio.run(main())
            assert results == [2 * n for n in range(1000)]
            (channel,) = deployment.client_orb._async_channels.values()
            assert channel.peak_pending >= 500
        finally:
            deployment.shutdown()
