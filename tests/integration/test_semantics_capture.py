"""Integration: application-semantics capture through the real ORB.

Section 2.1: the probes can collect "application semantics about each
function call behavior (input/output/return parameter, thrown
exceptions)", which "is primarily useful for application debugging and
testing". SEMANTICS monitor mode must capture arguments at probe 1 and
outcomes at probe 3 without disturbing the call.
"""

import pytest

from repro.analysis import semantics_report
from repro.analysis.semantics import exception_hotspots
from repro.core import MonitorMode, TracingEvent
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb

IDL = """
module SC {
  exception Invalid { string why; };
  interface Validator {
    long check(in long value) raises (Invalid);
  };
};
"""


@pytest.fixture
def deployment(cluster):
    cluster.mode = MonitorMode.SEMANTICS
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    client = cluster.process("client", mode=MonitorMode.SEMANTICS)
    server = cluster.process("server", mode=MonitorMode.SEMANTICS)
    client_orb = Orb(client, cluster.network, registry=registry)
    server_orb = Orb(server, cluster.network, registry=registry)

    class ValidatorImpl(compiled.Validator):
        def check(self, value):
            if value < 0:
                raise compiled.Invalid(why=f"negative: {value}")
            if value > 100:
                raise RuntimeError("way out of range")
            return value * 2

    ref = server_orb.activate(ValidatorImpl())
    return compiled, cluster, client_orb.resolve(ref)


class TestSemanticsCapture:
    def test_arguments_recorded_at_stub_start(self, deployment):
        compiled, cluster, stub = deployment
        stub.check(21)
        starts = [
            r for r in cluster.all_records() if r.event is TracingEvent.STUB_START
        ]
        assert starts[0].semantics == {"operation": "check", "args": ["21"]}

    def test_ok_outcome_recorded_at_skel_end(self, deployment):
        compiled, cluster, stub = deployment
        assert stub.check(5) == 10
        ends = [r for r in cluster.all_records() if r.event is TracingEvent.SKEL_END]
        assert ends[0].semantics["status"] == "ok"
        assert "10" in ends[0].semantics["result"]

    def test_user_exception_recorded(self, deployment):
        compiled, cluster, stub = deployment
        with pytest.raises(compiled.Invalid):
            stub.check(-3)
        ends = [r for r in cluster.all_records() if r.event is TracingEvent.SKEL_END]
        assert ends[0].semantics["status"] == "user_exception"
        assert "negative" in ends[0].semantics["exception"]

    def test_system_exception_recorded(self, deployment):
        compiled, cluster, stub = deployment
        with pytest.raises(Exception):
            stub.check(1000)
        ends = [r for r in cluster.all_records() if r.event is TracingEvent.SKEL_END]
        assert ends[0].semantics["status"] == "system_exception"

    def test_report_and_hotspots(self, deployment):
        compiled, cluster, stub = deployment
        stub.check(1)
        stub.check(2)
        for bad in (-1, -2, 1000):
            with pytest.raises(Exception):
                stub.check(bad)
        report = semantics_report(cluster.all_records())
        entry = report["SC::Validator::check"]
        assert entry.invocations == 5
        assert entry.ok == 2
        assert entry.user_exceptions == 2
        assert entry.system_exceptions == 1
        assert entry.failure_rate == pytest.approx(0.6)
        hotspots = exception_hotspots(report)
        assert hotspots[0].function == "SC::Validator::check"

    def test_other_modes_capture_nothing(self, cluster):
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)
        client = cluster.process("c2", mode=MonitorMode.LATENCY)
        server = cluster.process("s2", mode=MonitorMode.LATENCY)
        client_orb = Orb(client, cluster.network, registry=registry)
        server_orb = Orb(server, cluster.network, registry=registry)

        class ValidatorImpl(compiled.Validator):
            def check(self, value):
                return value

        stub = client_orb.resolve(server_orb.activate(ValidatorImpl()))
        stub.check(1)
        assert all(r.semantics is None for r in cluster.all_records())
