"""Streaming/batch equivalence, seeded incident determinism, exporters, CLI.

The acceptance gates of the streaming subsystem:

- a fault-free completed stream reconstructs **bit-identically** to the
  batch analyzer, whichever storage backend replays it;
- the seeded delay scenario always ranks the injected component
  (``BackImpl``) first and the same seed yields byte-identical reports;
- incident reports annotate the Chrome/OTLP exporters and drive the
  ``repro incidents`` CLI exit code.
"""

import json

import pytest

from repro.analysis import dscg_to_json, reconstruct
from repro.analysis.streaming import (
    StreamingReconstructor,
    detect_run,
    run_seeded_delay_scenario,
    seeded_incident_report,
)
from repro.collector import MonitoringDatabase
from repro.store import SegmentStore


class TestFaultFreeBitIdentity:
    def test_streaming_matches_batch_on_both_backends(self, tmp_path):
        # calls=12 stays below the earliest fault window (warm-up is 16),
        # so the stream is fault-free without touching the plan.
        scenario = run_seeded_delay_scenario(5, calls=12)
        sqlite = scenario.store
        run_id = scenario.run_id

        segment = SegmentStore(str(tmp_path / "store"), auto_compact=0)
        (meta,) = sqlite.runs()
        segment.create_run(meta)
        with segment.bulk_ingest():
            segment.insert_records(run_id, sqlite.all_records(run_id))

        batch_json = dscg_to_json(reconstruct(sqlite, run_id))
        for backend in (sqlite, segment):
            streaming = StreamingReconstructor()
            streaming.ingest_many(backend.all_records(run_id))
            assert dscg_to_json(streaming.finalize()) == batch_json
            assert streaming.pending_dropped == 0
        sqlite.close()
        segment.close()

    def test_streaming_matches_batch_under_injected_delay(self):
        # Delays shift timestamps but never collide event numbers, so the
        # equivalence contract holds for the faulted stream too.
        scenario = run_seeded_delay_scenario(7)
        assert scenario.faults_injected["by_kind"].get("delay", 0) > 0
        streaming = StreamingReconstructor()
        streaming.ingest_many(scenario.store.all_records(scenario.run_id))
        assert dscg_to_json(streaming.finalize()) == dscg_to_json(
            reconstruct(scenario.store, scenario.run_id)
        )
        scenario.store.close()


class TestSeededIncidentDeterminism:
    @pytest.fixture(scope="class")
    def seeded(self):
        return seeded_incident_report(7)

    def test_injected_component_ranked_first(self, seeded):
        _, incidents = seeded
        assert incidents
        for incident in incidents:
            assert incident.root_cause is not None
            assert incident.root_cause.component == "BackImpl"
            assert incident.root_cause.function == "SD::Back::work"
        # The leaf that absorbed the delay alarms, and so may its
        # ancestors — but the ranking always points at Back.
        assert any(i.function == "SD::Back::work" for i in incidents)

    def test_same_seed_byte_identical(self, seeded):
        document, _ = seeded
        replay, _ = seeded_incident_report(7)
        assert replay == document

    def test_different_seed_differs(self, seeded):
        document, _ = seeded
        other, other_incidents = seeded_incident_report(8)
        assert other != document
        # A different seed still detects its own window.
        assert other_incidents

    def test_document_shape(self, seeded):
        document, incidents = seeded
        parsed = json.loads(document)
        assert parsed["format"] == "repro-incidents"
        assert parsed["incident_count"] == len(incidents)
        assert parsed["scenario"]["fault"]["scope"] == "mid->back"
        assert parsed["stream"]["anomalous_completions"] > 0
        assert parsed["config"]["persistence"] >= 1
        first = parsed["incidents"][0]
        assert first["incident_id"].startswith("inc-")
        assert first["window"]["closed_by"] in ("cooldown", "finalize")
        assert first["causes"][0]["component"] == "BackImpl"


class TestExporterAnnotations:
    @pytest.fixture(scope="class")
    def detected(self):
        scenario = run_seeded_delay_scenario(7)
        detector = detect_run(scenario.store, scenario.run_id)
        assert detector.incidents
        yield scenario, detector
        scenario.store.close()

    def test_chrome_trace_marks_implicated_chains(self, detected):
        from repro.telemetry import chrome_trace_document

        scenario, detector = detected
        incidents = detector.incidents
        document = chrome_trace_document(
            detector.dscg, run_id=scenario.run_id, incidents=incidents
        )
        implicated = set()
        for incident in incidents:
            implicated.update(incident.implicated_chains)
        annotated = [
            event
            for event in document["traceEvents"]
            if "incident_ids" in event.get("args", {})
        ]
        assert annotated
        for event in annotated:
            assert event["args"]["trace_id"] in implicated
        summaries = document["otherData"]["incidents"]
        assert {s["incident_id"] for s in summaries} == {
            i.incident_id for i in incidents
        }
        assert all(s["root_cause_component"] == "BackImpl" for s in summaries)

    def test_otlp_marks_implicated_spans(self, detected):
        from repro.telemetry import otlp_document

        scenario, detector = detected
        document = otlp_document(
            detector.dscg, run_id=scenario.run_id, incidents=detector.incidents
        )
        flagged = [
            attr
            for resource in document["resourceSpans"]
            for scope in resource["scopeSpans"]
            for span in scope["spans"]
            for attr in span["attributes"]
            if attr["key"] == "repro.incident_ids"
        ]
        assert flagged
        ids = {i.incident_id for i in detector.incidents}
        for attr in flagged:
            for incident_id in attr["value"]["stringValue"].split(","):
                assert incident_id in ids
        assert document["otherData"]["incidents"]

    def test_unannotated_export_unchanged(self, detected):
        from repro.telemetry import render_chrome_trace, render_otlp

        _, detector = detected
        plain_chrome = render_chrome_trace(detector.dscg)
        assert plain_chrome == render_chrome_trace(detector.dscg, incidents=None)
        assert "incident_ids" not in plain_chrome
        assert "repro.incident_ids" not in render_otlp(detector.dscg)


class TestIncidentsCli:
    def test_demo_exit_code_and_determinism(self, tmp_path, capsys):
        from repro.cli import main

        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["incidents", "--demo-faults", "7", "--output", str(first)]) == 1
        assert main(["incidents", "--demo-faults", "7", "--output", str(second)]) == 1
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        assert document["incident_count"] >= 1

    def test_clean_stream_exits_zero(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "clean.json"
        # 10 calls end before the fault window opens: no incidents.
        code = main(
            ["incidents", "--demo-faults", "7", "--calls", "10",
             "--output", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["incident_count"] == 0

    def test_watch_prints_live_incidents(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["incidents", "--demo-faults", "7", "--watch",
                     "--output", str(tmp_path / "inc.json")])
        assert code == 1
        captured = capsys.readouterr().out
        assert "root cause BackImpl (SD::Back::work)" in captured

    def test_replay_store_and_annotated_export(self, tmp_path):
        from repro.cli import main

        db_path = tmp_path / "run.db"
        scenario = run_seeded_delay_scenario(
            7, store=MonitoringDatabase(str(db_path))
        )
        scenario.store.close()

        reports = tmp_path / "incidents.json"
        assert main(["incidents", str(db_path), "--output", str(reports)]) == 1

        trace = tmp_path / "trace.json"
        assert main(
            ["export-trace", str(db_path), "--incidents", str(reports),
             "--output", str(trace)]
        ) == 0
        document = json.loads(trace.read_text())
        assert document["otherData"]["incidents"]
        assert any(
            "incident_ids" in event.get("args", {})
            for event in document["traceEvents"]
        )

    def test_missing_database_is_an_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="provide a database"):
            main(["incidents"])
