"""Multi-process cluster deployment: identity, liveness, loss balance.

Every test here launches real worker OS processes wired over real TCP
sockets. The headline claim is bit-identity — the cluster's collected
run reconstructs to byte-for-byte the same DSCG JSON and CCSG XML as the
single-interpreter reference — and the failure-path claim is that loss
accounting still balances when a worker is SIGKILLed mid-flight: its
buffered records are charged to ``records_uncollected`` from its last
heartbeat, so ``stored + uncollected == produced`` cluster-wide.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.cluster.identity import run_identity_check
from repro.cluster.workload import driver_name, server_name
from repro.store import SegmentStore

#: Records per monitored ring call: request + reply on the driver side,
#: request + reply on the serving side (latency mode).
RECORDS_PER_CALL = 4


def _run_meta(store, run_id):
    return next(m for m in store.runs() if m.run_id == run_id)


class TestClusterIdentity:
    def test_cluster_matches_single_process_bit_for_bit(self, tmp_path):
        outcome = run_identity_check(2, 3, str(tmp_path))
        assert outcome["checks"]["identical"], outcome["checks"]
        # The comparison only proves cluster == reference; pin both to
        # the expected shape so an empty run can't vacuously pass.
        assert outcome["cluster"]["records"] == 2 * 3 * RECORDS_PER_CALL
        assert outcome["cluster"]["processes"] == [
            "driver-00", "server-00", "driver-01", "server-01",
        ]
        loss = outcome["cluster"]["loss"]
        assert loss["records_uncollected"] == 0
        assert loss["records_dropped_at_probe"] == 0
        assert loss["records_lost_in_delivery"] == 0


class TestKillNineAccounting:
    def test_sigkill_charges_uncollected_and_balances(self, tmp_path):
        calls = 3
        store = SegmentStore(str(tmp_path / "central"))
        try:
            cluster = Cluster(2, spool_root=str(tmp_path))
            cluster.up()
            try:
                replies = cluster.run_calls(calls)
                assert sum(r["errors"] for r in replies) == 0
                # The done replies carried buffer occupancy, so the
                # coordinator knows exactly what worker 1 held.
                doomed = cluster.handles[1]
                produced = sum(
                    sum(h.last_buffered.values()) for h in cluster.handles
                )
                assert produced == 2 * calls * RECORDS_PER_CALL
                expected_uncollected = sum(doomed.last_buffered.values())
                assert expected_uncollected > 0
                cluster.kill(1)
                stored = cluster.collect(store, "after-kill")
            finally:
                cluster.down()
            meta = _run_meta(store, "after-kill")
            loss = meta.extra["loss"]
            assert loss["records_uncollected"] == expected_uncollected
            assert sorted(loss["failed_drains"]) == sorted(
                [driver_name(1), server_name(1)]
            )
            # The balance that makes the loss report trustworthy:
            assert stored + loss["records_uncollected"] == produced
            assert stored == store.record_count("after-kill")
            # Survivors' processes still collected in ring order.
            assert meta.extra["processes"][:2] == [
                driver_name(0), server_name(0),
            ]
        finally:
            store.close()

    def test_dead_neighbour_fails_fast_not_hang(self, tmp_path):
        # The ring survivor's next call lands on a reset TCP connection;
        # it must surface as a counted error promptly, not a hang.
        store = SegmentStore(str(tmp_path / "central"))
        try:
            cluster = Cluster(2, spool_root=str(tmp_path))
            cluster.up()
            try:
                cluster.kill(1)
                replies = cluster.run_calls(1, timeout=30.0)
                assert len(replies) == 1  # only the survivor was driven
                assert replies[0]["errors"] == 1
            finally:
                cluster.down()
        finally:
            store.close()


class TestGracefulDrain:
    def test_sigterm_ships_final_spools(self, tmp_path):
        calls = 2
        store = SegmentStore(str(tmp_path / "central"))
        try:
            cluster = Cluster(2, spool_root=str(tmp_path))
            cluster.up()
            try:
                cluster.run_calls(calls)
                inserted = cluster.drain(store, run_id="drained")
            finally:
                cluster.down()
            assert inserted == 2 * calls * RECORDS_PER_CALL
            meta = _run_meta(store, "drained")
            loss = meta.extra["loss"]
            assert loss["records_uncollected"] == 0
            assert loss["failed_drains"] == []
            assert store.record_count("drained") == inserted
        finally:
            store.close()


class TestLoadPlane:
    def test_open_loop_step_reports_latency_and_goodput(self, tmp_path):
        cluster = Cluster(2, plane="load", spool_root=str(tmp_path))
        cluster.up()
        try:
            merged, per_worker = cluster.run_load(
                rate_per_worker=200.0, arrivals_per_worker=100, seed=7
            )
        finally:
            cluster.down()
        assert len(per_worker) == 2
        assert merged.offered == 200
        assert merged.completed + merged.shed + merged.errors == 200
        assert merged.errors == 0
        summary = merged.to_json()
        assert {"p50_ms", "p99_ms", "p999_ms"} <= set(summary)
        assert summary["p50_ms"] > 0
        if merged.completed:
            assert merged.goodput > 0


@pytest.mark.parametrize("workers", [1, 3])
def test_ring_scales_beyond_two(tmp_path, workers):
    calls = 2
    store = SegmentStore(str(tmp_path / "central"))
    try:
        cluster = Cluster(workers, spool_root=str(tmp_path))
        cluster.up()
        try:
            replies = cluster.run_calls(calls)
            assert sum(r["errors"] for r in replies) == 0
            stored = cluster.collect(store, "ring")
        finally:
            cluster.down()
        assert stored == workers * calls * RECORDS_PER_CALL
        meta = _run_meta(store, "ring")
        assert len(meta.extra["processes"]) == 2 * workers
    finally:
        store.close()
