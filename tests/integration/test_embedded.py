"""Integration: the synthetic large-scale embedded system (small scale)."""

import pytest

from repro.analysis import reconstruct
from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem, generate_embedded_idl
from repro.idl import parse_idl
from repro.idl.semantics import analyze


class TestGeneratorShape:
    def test_default_population_counts(self):
        config = EmbeddedConfig()
        counts = config.methods_per_interface()
        assert len(counts) == 155
        assert sum(counts) == 801
        assert set(counts) == {5, 6}

    def test_generated_idl_compiles(self):
        config = EmbeddedConfig(components=6, interfaces=4, methods=10, processes=2)
        spec = analyze(parse_idl(generate_embedded_idl(config)))
        assert len(spec.interfaces) == 4
        total_methods = sum(len(i.operations) for i in spec.interfaces.values())
        assert total_methods == 10

    def test_every_interface_implemented(self):
        config = EmbeddedConfig(components=6, interfaces=4, methods=8, processes=2)
        covered = {config.interface_of_component(c) for c in range(config.components)}
        assert covered == set(range(4))

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            EmbeddedConfig(interfaces=10, methods=5)
        with pytest.raises(ValueError):
            EmbeddedConfig(components=3, interfaces=10, methods=10)


class TestSmallSystemRun:
    @pytest.fixture(scope="class")
    def small_system(self):
        config = EmbeddedConfig(
            components=12,
            interfaces=8,
            methods=24,
            processes=3,
            pool_threads_per_process=6,
            seed=7,
            cost_ns=100,
        )
        system = EmbeddedSystem(config, uuid_prefix="e5")
        yield system
        system.shutdown()

    def test_exact_call_count(self, small_system):
        small_system.run(total_calls=300, roots=3)
        database, run_id = small_system.collect()
        stats = database.population_stats(run_id)
        assert stats["calls"] == 300  # budget-split invariant
        assert stats["chains"] == 3

    def test_reconstruction_clean_and_complete(self, small_system):
        small_system.run(total_calls=200, roots=2)
        database, run_id = small_system.collect()
        dscg = reconstruct(database, run_id)
        stats = dscg.stats()
        assert stats["nodes"] == 200
        assert stats["abnormal_events"] == 0
        assert stats["chains"] == 2

    def test_deterministic_structure_across_runs(self):
        def run_once():
            config = EmbeddedConfig(
                components=8, interfaces=6, methods=12, processes=2,
                pool_threads_per_process=4, seed=99, cost_ns=10,
            )
            system = EmbeddedSystem(config, uuid_prefix="e6")
            try:
                system.run(total_calls=100, roots=2)
                database, run_id = system.collect()
                dscg = reconstruct(database, run_id)
                shapes = []
                for tree in sorted(dscg.chains.values(), key=lambda t: t.chain_uuid):
                    shapes.append(
                        [(n.function, n.depth()) for n in tree.walk()]
                    )
                return shapes
            finally:
                system.shutdown()

        assert run_once() == run_once()
