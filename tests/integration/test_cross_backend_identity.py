"""Cross-backend identity: SQLite and the segment store are interchangeable.

The acceptance contract of the storage seam: for the same captured
records, ``reconstruct()`` — nodes, chains, annotations, serialized
JSON, loss accounting — must be bit-identical whichever backend held the
run, including under record loss and for the sharded parallel analyzer.
"""

import json
import random

import pytest

from repro.analysis import (
    CpuAnalysis,
    build_ccsg,
    dscg_to_json,
    loss_report,
    reconstruct,
    reconstruct_sharded,
    render_ccsg_xml,
)
from repro.collector import LogCollector, MonitoringDatabase
from repro.core import RunMetadata
from repro.store import SegmentStore


def _embedded_processes():
    from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem

    system = EmbeddedSystem(EmbeddedConfig())
    system.run(total_calls=600, roots=6)
    system.quiesce()
    return system


@pytest.fixture(scope="module")
def backends(tmp_path_factory):
    """One embedded-system capture collected into both backends."""
    system = _embedded_processes()
    try:
        sqlite = MonitoringDatabase()
        segment = SegmentStore(
            str(tmp_path_factory.mktemp("xbackend") / "store"), auto_compact=0
        )
        # snapshot first (drain=False) so the second collector sees the
        # very same buffers; run ids pinned so the runs are comparable.
        LogCollector(sqlite).collect(
            system.processes, run_id="xb", description="x", drain=False
        )
        LogCollector(backend=segment).collect(
            system.processes, run_id="xb", description="x"
        )
    finally:
        system.shutdown()
    yield sqlite, segment
    sqlite.close()
    segment.close()


class TestCrossBackendIdentity:
    def test_raw_queries_identical(self, backends):
        sqlite, segment = backends
        assert segment.record_count("xb") == sqlite.record_count("xb") > 0
        assert segment.unique_chain_uuids("xb") == sqlite.unique_chain_uuids("xb")
        assert list(segment.chains_for_run("xb")) == list(sqlite.chains_for_run("xb"))
        assert list(segment.all_records("xb")) == list(sqlite.all_records("xb"))
        assert segment.population_stats("xb") == sqlite.population_stats("xb")

    def test_run_metadata_identical(self, backends):
        sqlite, segment = backends
        (meta_a,) = sqlite.runs()
        (meta_b,) = segment.runs()
        assert meta_a == meta_b
        assert meta_a.extra["loss"] == meta_b.extra["loss"]
        assert meta_a.extra["schema_version"] == meta_b.extra["schema_version"]

    def test_reconstruct_identical(self, backends):
        sqlite, segment = backends
        dscg_a = reconstruct(sqlite, "xb", annotate=True)
        dscg_b = reconstruct(segment, "xb", annotate=True)
        assert dscg_a.stats() == dscg_b.stats()
        assert dscg_to_json(dscg_a) == dscg_to_json(dscg_b)
        assert loss_report(dscg_a).to_dict() == loss_report(dscg_b).to_dict()
        xml_a = render_ccsg_xml(build_ccsg(dscg_a, CpuAnalysis(dscg_a)), description="xb")
        xml_b = render_ccsg_xml(build_ccsg(dscg_b, CpuAnalysis(dscg_b)), description="xb")
        assert xml_a == xml_b

    def test_sharded_segment_equals_serial_sqlite(self, backends):
        sqlite, segment = backends
        serial = dscg_to_json(reconstruct(sqlite, "xb", annotate=True))
        for workers in (2, 4):
            sharded = dscg_to_json(
                reconstruct_sharded(
                    segment, "xb", workers=workers, annotate=True,
                    oversubscribe=True,
                )
            )
            assert sharded == serial
        # The shard hook compacted the store: the fast path must agree too.
        assert segment.compaction_state("xb")["compacted"]
        assert dscg_to_json(reconstruct(segment, "xb", annotate=True)) == serial


def _identity_predicates(sqlite):
    """Predicates derived from the capture itself, so every pushdown
    level (dictionary, chain index, time bounds) actually engages."""
    from repro.store import ScanPredicate

    records = list(sqlite.all_records("xb"))
    operations = sorted({r.operation for r in records})
    interfaces = sorted({r.interface for r in records})
    anchors = sorted(
        r.wall_start if r.wall_start is not None else r.wall_end
        for r in records
        if r.wall_start is not None or r.wall_end is not None
    )
    chains = sqlite.unique_chain_uuids("xb")
    predicates = [
        ScanPredicate(operations=frozenset({operations[0]})),
        ScanPredicate(interfaces=frozenset({interfaces[-1]})),
        ScanPredicate(chain_prefix=chains[0][:6]),
        ScanPredicate(operations=frozenset({"no-such-operation"})),
    ]
    if anchors:  # capture mode recorded wall timestamps
        mid = anchors[len(anchors) // 2]
        predicates += [
            ScanPredicate(ts_min=anchors[0], ts_max=mid),
            ScanPredicate(ts_min=mid),
            ScanPredicate(
                operations=frozenset(operations[:2]),
                interfaces=frozenset(interfaces),
                ts_max=mid,
            ),
        ]
    else:
        # Anchor-less records must fall out of any time window — on
        # both backends identically.
        predicates.append(ScanPredicate(ts_min=0))
    return predicates


class TestCrossBackendPredicates:
    """Predicated scans are bit-identical across backends.

    The segment store answers via pushdown (footer pruning + integer-id
    frame filters), SQLite via WHERE clauses over its indexes — the
    results must be indistinguishable, spooled or compacted.
    """

    def test_predicated_scans_identical(self, backends):
        sqlite, segment = backends
        for state in ("as-is", "compacted"):
            for predicate in _identity_predicates(sqlite):
                assert (
                    list(segment.chains_for_run("xb", predicate=predicate))
                    == list(sqlite.chains_for_run("xb", predicate=predicate))
                ), (state, predicate)
                assert (
                    list(segment.all_records("xb", predicate=predicate))
                    == list(sqlite.all_records("xb", predicate=predicate))
                ), (state, predicate)
            segment.compact("xb")

    def test_predicated_reconstruct_identical(self, backends):
        from repro.store import ScanPredicate

        sqlite, segment = backends
        operations = sorted({r.operation for r in sqlite.all_records("xb")})
        predicate = ScanPredicate(operations=frozenset(operations[:-1]))
        dscg_a = reconstruct(sqlite, "xb", predicate=predicate)
        dscg_b = reconstruct(segment, "xb", predicate=predicate)
        assert dscg_to_json(dscg_a) == dscg_to_json(dscg_b)
        # Sharded predicated reconstruction merges to the same DSCG.
        sharded = reconstruct_sharded(
            segment, "xb", workers=3, predicate=predicate, oversubscribe=True
        )
        assert dscg_to_json(sharded) == dscg_to_json(dscg_a)

    def test_run_query_identical(self, backends):
        from repro.store import run_query

        sqlite, segment = backends
        for predicate in _identity_predicates(sqlite):
            result_a = run_query(sqlite, "xb", predicate)
            result_b = run_query(segment, "xb", predicate)
            result_b.pop("scan", None)  # pruning stats are backend-specific
            result_a.pop("scan", None)
            assert result_a == result_b


class TestCrossBackendChaos:
    """Chaos-matrix scenarios: faulted captures store identically."""

    @pytest.mark.parametrize("fault", ["drop", "duplicate", "reorder"])
    def test_faulted_corba_capture_identical(self, tmp_path, fault):
        from repro.core import (
            MonitorConfig,
            MonitoringRuntime,
            MonitorMode,
            SequentialUuidFactory,
        )
        from repro.faults import FaultInjector, FaultKind, FaultPlan
        from repro.idl import compile_idl
        from repro.orb import InterfaceRegistry, Orb, ThreadPerConnection
        from repro.platform import Host, PlatformKind, SimProcess, VirtualClock
        from tests.chaos.test_chaos_matrix import FAULT_DOMAINS, IDL, _quiesce

        plan = FaultPlan(seed=17, record_loss_rate=0.05, **FAULT_DOMAINS[fault])
        injector = FaultInjector(plan)
        clock = VirtualClock()
        host = Host("xb-host", PlatformKind.HPUX_11, clock=clock)
        uuid_factory = SequentialUuidFactory("ee")
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)

        class SvcImpl(compiled.Svc):
            def ping(self, x):
                clock.consume(300)
                return x * 2

            def notify(self, x):
                clock.consume(200)

        server = SimProcess("server", host)
        client = SimProcess("client", host)
        for process in (server, client):
            MonitoringRuntime(
                process,
                MonitorConfig(mode=MonitorMode.LATENCY, uuid_factory=uuid_factory),
            )
        server_orb = Orb(server, injector.network(), policy=ThreadPerConnection(),
                         registry=registry, request_timeout=0.1)
        client_orb = Orb(client, injector.network(), registry=registry,
                         request_timeout=0.1)
        stub = client_orb.resolve(server_orb.activate(SvcImpl()))
        processes = [client, server]
        try:
            for i in range(8):
                try:
                    stub.ping(i)
                except BaseException:
                    pass
                finally:
                    if client.monitor is not None:
                        client.monitor.unbind_ftl()
            _quiesce(processes)
            for process in processes:
                injector.lossy_delivery(process)

            # One collection (record-loss draws advance per delivery, so
            # collecting twice would capture two different record sets);
            # the segment store gets a byte-identical mirror of it.
            sqlite = MonitoringDatabase()
            LogCollector(sqlite, retries=2, backoff_s=0.0).collect(
                processes, run_id="chaos", description=fault
            )
        finally:
            for process in processes:
                process.shutdown()

        segment = SegmentStore(str(tmp_path / fault), auto_compact=0)
        (meta,) = sqlite.runs()
        segment.create_run(meta)
        with segment.bulk_ingest():
            segment.insert_records("chaos", sqlite.all_records("chaos"))

        dscg_a = reconstruct(sqlite, "chaos", annotate=True)
        dscg_b = reconstruct(segment, "chaos", annotate=True)
        assert dscg_to_json(dscg_a) == dscg_to_json(dscg_b)
        assert loss_report(dscg_a).to_dict() == loss_report(dscg_b).to_dict()
        xml_a = render_ccsg_xml(build_ccsg(dscg_a, CpuAnalysis(dscg_a)),
                                description="chaos")
        xml_b = render_ccsg_xml(build_ccsg(dscg_b, CpuAnalysis(dscg_b)),
                                description="chaos")
        assert xml_a == xml_b
        assert list(segment.all_records("chaos")) == list(sqlite.all_records("chaos"))
        assert segment.population_stats("chaos") == sqlite.population_stats("chaos")
        sqlite.close()
        segment.close()


class TestCrossBackendUnderLoss:
    """Chaos-style scenario: deterministically damaged record streams."""

    @pytest.mark.parametrize("seed", [11, 23])
    def test_lossy_capture_identical(self, tmp_path, seed):
        system = _embedded_processes()
        try:
            records = []
            for process in system.processes:
                records.extend(process.log_buffer.drain())
        finally:
            system.shutdown()
        rng = random.Random(seed)
        damaged = [r for r in records if rng.random() > 0.15]
        assert len(damaged) < len(records)

        meta = RunMetadata(run_id="lossy", description="", monitor_mode="cpu")
        sqlite = MonitoringDatabase()
        segment = SegmentStore(str(tmp_path / "store"), auto_compact=0)
        for backend in (sqlite, segment):
            backend.create_run(meta)
            with backend.bulk_ingest():
                backend.insert_records("lossy", damaged)

        dscg_a = reconstruct(sqlite, "lossy", annotate=True)
        dscg_b = reconstruct(segment, "lossy", annotate=True)
        report_a = loss_report(dscg_a).to_dict()
        report_b = loss_report(dscg_b).to_dict()
        assert report_a == report_b
        assert json.loads(dscg_to_json(dscg_a)) == json.loads(dscg_to_json(dscg_b))
        segment.compact("lossy")
        assert dscg_to_json(reconstruct(segment, "lossy", annotate=True)) == dscg_to_json(dscg_b)
        sqlite.close()
        segment.close()
