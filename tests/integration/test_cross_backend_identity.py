"""Cross-backend identity: SQLite and the segment store are interchangeable.

The acceptance contract of the storage seam: for the same captured
records, ``reconstruct()`` — nodes, chains, annotations, serialized
JSON, loss accounting — must be bit-identical whichever backend held the
run, including under record loss and for the sharded parallel analyzer.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    CpuAnalysis,
    build_ccsg,
    dscg_to_json,
    loss_report,
    reconstruct,
    reconstruct_sharded,
    render_ccsg_xml,
)
from repro.collector import LogCollector, MonitoringDatabase
from repro.store import SegmentStore


def _embedded_processes():
    from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem

    system = EmbeddedSystem(EmbeddedConfig())
    system.run(total_calls=600, roots=6)
    system.quiesce()
    return system


@pytest.fixture(scope="module")
def backends(tmp_path_factory):
    """One embedded-system capture collected into both backends."""
    system = _embedded_processes()
    try:
        sqlite = MonitoringDatabase()
        segment = SegmentStore(
            str(tmp_path_factory.mktemp("xbackend") / "store"), auto_compact=0
        )
        # snapshot first (drain=False) so the second collector sees the
        # very same buffers; run ids pinned so the runs are comparable.
        LogCollector(sqlite).collect(
            system.processes, run_id="xb", description="x", drain=False
        )
        LogCollector(backend=segment).collect(
            system.processes, run_id="xb", description="x"
        )
    finally:
        system.shutdown()
    yield sqlite, segment
    sqlite.close()
    segment.close()


class TestCrossBackendIdentity:
    def test_raw_queries_identical(self, backends):
        sqlite, segment = backends
        assert segment.record_count("xb") == sqlite.record_count("xb") > 0
        assert segment.unique_chain_uuids("xb") == sqlite.unique_chain_uuids("xb")
        assert list(segment.chains_for_run("xb")) == list(sqlite.chains_for_run("xb"))
        assert list(segment.all_records("xb")) == list(sqlite.all_records("xb"))
        assert segment.population_stats("xb") == sqlite.population_stats("xb")

    def test_run_metadata_identical(self, backends):
        sqlite, segment = backends
        (meta_a,) = sqlite.runs()
        (meta_b,) = segment.runs()
        assert meta_a == meta_b
        assert meta_a.extra["loss"] == meta_b.extra["loss"]
        assert meta_a.extra["schema_version"] == meta_b.extra["schema_version"]

    def test_reconstruct_identical(self, backends):
        sqlite, segment = backends
        dscg_a = reconstruct(sqlite, "xb", annotate=True)
        dscg_b = reconstruct(segment, "xb", annotate=True)
        assert dscg_a.stats() == dscg_b.stats()
        assert dscg_to_json(dscg_a) == dscg_to_json(dscg_b)
        assert loss_report(dscg_a).to_dict() == loss_report(dscg_b).to_dict()
        xml_a = render_ccsg_xml(build_ccsg(dscg_a, CpuAnalysis(dscg_a)), description="xb")
        xml_b = render_ccsg_xml(build_ccsg(dscg_b, CpuAnalysis(dscg_b)), description="xb")
        assert xml_a == xml_b

    def test_sharded_segment_equals_serial_sqlite(self, backends):
        sqlite, segment = backends
        serial = dscg_to_json(reconstruct(sqlite, "xb", annotate=True))
        for workers in (2, 4):
            sharded = dscg_to_json(
                reconstruct_sharded(
                    segment, "xb", workers=workers, annotate=True,
                    oversubscribe=True,
                )
            )
            assert sharded == serial
        # The shard hook compacted the store: the fast path must agree too.
        assert segment.compaction_state("xb")["compacted"]
        assert dscg_to_json(reconstruct(segment, "xb", annotate=True)) == serial


def _identity_predicates(sqlite):
    """Predicates derived from the capture itself, so every pushdown
    level (dictionary, chain index, time bounds) actually engages."""
    from repro.store import ScanPredicate

    records = list(sqlite.all_records("xb"))
    operations = sorted({r.operation for r in records})
    interfaces = sorted({r.interface for r in records})
    anchors = sorted(
        r.wall_start if r.wall_start is not None else r.wall_end
        for r in records
        if r.wall_start is not None or r.wall_end is not None
    )
    chains = sqlite.unique_chain_uuids("xb")
    predicates = [
        ScanPredicate(operations=frozenset({operations[0]})),
        ScanPredicate(interfaces=frozenset({interfaces[-1]})),
        ScanPredicate(chain_prefix=chains[0][:6]),
        ScanPredicate(operations=frozenset({"no-such-operation"})),
    ]
    if anchors:  # capture mode recorded wall timestamps
        mid = anchors[len(anchors) // 2]
        predicates += [
            ScanPredicate(ts_min=anchors[0], ts_max=mid),
            ScanPredicate(ts_min=mid),
            ScanPredicate(
                operations=frozenset(operations[:2]),
                interfaces=frozenset(interfaces),
                ts_max=mid,
            ),
        ]
    else:
        # Anchor-less records must fall out of any time window — on
        # both backends identically.
        predicates.append(ScanPredicate(ts_min=0))
    return predicates


class TestCrossBackendPredicates:
    """Predicated scans are bit-identical across backends.

    The segment store answers via pushdown (footer pruning + integer-id
    frame filters), SQLite via WHERE clauses over its indexes — the
    results must be indistinguishable, spooled or compacted.
    """

    def test_predicated_scans_identical(self, backends):
        sqlite, segment = backends
        for state in ("as-is", "compacted"):
            for predicate in _identity_predicates(sqlite):
                assert (
                    list(segment.chains_for_run("xb", predicate=predicate))
                    == list(sqlite.chains_for_run("xb", predicate=predicate))
                ), (state, predicate)
                assert (
                    list(segment.all_records("xb", predicate=predicate))
                    == list(sqlite.all_records("xb", predicate=predicate))
                ), (state, predicate)
            segment.compact("xb")

    def test_predicated_reconstruct_identical(self, backends):
        from repro.store import ScanPredicate

        sqlite, segment = backends
        operations = sorted({r.operation for r in sqlite.all_records("xb")})
        predicate = ScanPredicate(operations=frozenset(operations[:-1]))
        dscg_a = reconstruct(sqlite, "xb", predicate=predicate)
        dscg_b = reconstruct(segment, "xb", predicate=predicate)
        assert dscg_to_json(dscg_a) == dscg_to_json(dscg_b)
        # Sharded predicated reconstruction merges to the same DSCG.
        sharded = reconstruct_sharded(
            segment, "xb", workers=3, predicate=predicate, oversubscribe=True
        )
        assert dscg_to_json(sharded) == dscg_to_json(dscg_a)

    def test_run_query_identical(self, backends):
        from repro.store import run_query

        sqlite, segment = backends
        for predicate in _identity_predicates(sqlite):
            result_a = run_query(sqlite, "xb", predicate)
            result_b = run_query(segment, "xb", predicate)
            result_b.pop("scan", None)  # pruning stats are backend-specific
            result_a.pop("scan", None)
            assert result_a == result_b

    def test_predicated_population_stats_identical(self, backends):
        """population_stats honors predicates, identically on both
        backends, spooled and compacted (folded from a filtered scan on
        the segment store, a WHERE clause on SQLite)."""
        sqlite, segment = backends
        for state in ("as-is", "compacted"):
            for predicate in _identity_predicates(sqlite):
                assert segment.population_stats(
                    "xb", predicate=predicate
                ) == sqlite.population_stats("xb", predicate=predicate), (
                    state,
                    predicate,
                )
            segment.compact("xb")

    def test_predicated_population_stats_subset_of_full(self, backends):
        from repro.store import ScanPredicate

        sqlite, segment = backends
        full = sqlite.population_stats("xb")
        operations = sorted({r.operation for r in sqlite.all_records("xb")})
        narrowed = ScanPredicate(operations=frozenset(operations[:1]))
        for backend in (sqlite, segment):
            stats = backend.population_stats("xb", predicate=narrowed)
            assert 0 < stats["calls"] < full["calls"]
            # one operation name, possibly on several interfaces
            assert 0 < stats["unique_methods"] <= full["unique_interfaces"]
            empty = backend.population_stats(
                "xb", predicate=ScanPredicate(operations=frozenset({"nope"}))
            )
            assert all(value == 0 for value in empty.values())
            assert set(empty) == set(full)


# ----------------------------------------------------------------------
# Faulted and lossy captures, via the declarative suite runner
#
# suites/cross_backend.yaml declares the scenario loops that used to be
# hand-rolled here: two-process CORBA under drop/duplicate/reorder and a
# lossy embedded-system capture, each run on BOTH backends with the
# cross_backend_identity invariant mirroring the capture into the other
# backend and asserting the full analyzer surface matches bit-for-bit.

SUITE_PATH = Path(__file__).resolve().parents[2] / "suites" / "cross_backend.yaml"


@pytest.fixture(scope="module")
def xb_suite_report():
    from repro.scenarios import load_suite, run_suite

    return run_suite(load_suite(str(SUITE_PATH)), workers=4)


def _xb_scenario_ids():
    from repro.scenarios import expand_grid, load_suite

    return [s.scenario_id for s in expand_grid(load_suite(str(SUITE_PATH)))]


class TestCrossBackendSuite:
    """The committed cross-backend grid holds on every cell."""

    @pytest.mark.parametrize("scenario_id", _xb_scenario_ids())
    def test_scenario_identical_across_backends(self, xb_suite_report, scenario_id):
        (outcome,) = [
            o for o in xb_suite_report.outcomes if o.scenario_id == scenario_id
        ]
        failed = [r.name for r in outcome.invariants if not r.passed]
        assert outcome.passed, f"{scenario_id}: failed invariants {failed}"

    def test_identity_checks_cover_analyzer_surface(self, xb_suite_report):
        """Every cell's identity invariant compared the whole surface:
        raw scans, predicated scans, stats, DSCG JSON, loss report and
        CCSG XML — not some subset."""
        for outcome in xb_suite_report.outcomes:
            (identity,) = [
                r for r in outcome.invariants if r.name == "cross_backend_identity"
            ]
            checks = identity.details["checks"]
            assert {
                "record_count",
                "chain_uuids",
                "arrival_stream",
                "chain_groups",
                "population_stats",
                "predicated_scans",
                "predicated_population_stats",
                "dscg_json",
                "loss_report",
                "ccsg_xml",
            } <= set(checks)
            assert all(checks.values()), (outcome.scenario_id, checks)

    def test_grid_spans_both_backends_and_faults(self, xb_suite_report):
        backends_seen = {o.axes["backend"] for o in xb_suite_report.outcomes}
        faults_seen = {o.axes["fault"] for o in xb_suite_report.outcomes}
        assert backends_seen == {"sqlite", "segment"}
        assert {"drop", "duplicate", "reorder", "lossy"} <= faults_seen

    def test_lossy_cells_account_for_loss(self, xb_suite_report):
        lossy = [
            o for o in xb_suite_report.outcomes if o.axes["fault"] == "lossy"
        ]
        assert lossy
        for outcome in lossy:
            assert outcome.accounting["faults"]["by_kind"].get("record_loss")
            assert outcome.accounting["collection"]["records_lost_in_delivery"] > 0
