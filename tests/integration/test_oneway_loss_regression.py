"""Regression: oneway skeleton-side frames must not leak in-flight state.

The online monitor once kept skeleton-opened oneway frames open forever
(skel_end did not close them); the fix completes skel-opened frames at
skel_end. Under fault injection this matters doubly: when a oneway
fork's *other* leg is dropped entirely, the surviving leg must still
open and close cleanly, leaving no phantom in-flight invocations.
"""

from repro.analysis import OnlineMonitor, loss_report, reconstruct_from_records
from repro.core import MonitorMode, TracingEvent
from tests.helpers import Call, simulate


def _oneway_records():
    sim = simulate(
        [Call("A::fork", oneway=True, cpu_ns=500)], mode=MonitorMode.LATENCY
    )
    stub_leg = [r for r in sim.records if r.event.name.startswith("STUB")]
    skel_leg = [r for r in sim.records if r.event.name.startswith("SKEL")]
    assert len(stub_leg) == 2 and len(skel_leg) == 2
    return sim.records, stub_leg, skel_leg


def test_skel_leg_alone_completes():
    # The stub-side (parent chain) records were dropped by faults; the
    # forked skeleton leg still opens at skel_start and closes at skel_end.
    _, _stub_leg, skel_leg = _oneway_records()
    monitor = OnlineMonitor()
    monitor.ingest_many(skel_leg)
    assert monitor.open_invocations() == []
    assert monitor.live_chain_count() == 0
    assert monitor.completed_calls() == 1


def test_stub_leg_alone_completes():
    # The forked leg's records were dropped; the stub side still closes.
    _, stub_leg, _skel_leg = _oneway_records()
    monitor = OnlineMonitor()
    monitor.ingest_many(stub_leg)
    assert monitor.open_invocations() == []
    assert monitor.live_chain_count() == 0
    assert monitor.completed_calls() == 1


def test_full_stream_leaves_nothing_open():
    records, _, _ = _oneway_records()
    monitor = OnlineMonitor()
    monitor.ingest_many(records)
    assert monitor.open_invocations() == []
    assert monitor.live_chain_count() == 0
    assert monitor.completed_calls() == 2


def test_skel_end_loss_keeps_frame_open_not_leaked_forever():
    # Only skel_end missing: the frame is genuinely in flight (we cannot
    # know it ended) — but it is exactly one frame, not an accumulation.
    _, _, skel_leg = _oneway_records()
    start_only = [r for r in skel_leg if r.event is TracingEvent.SKEL_START]
    monitor = OnlineMonitor()
    monitor.ingest_many(start_only)
    open_invocations = monitor.open_invocations()
    assert len(open_invocations) == 1
    assert open_invocations[0].opened_by == "skel"


def test_offline_analyzer_flags_the_dropped_leg():
    # The offline DSCG view of the same fault: the surviving skel-side
    # chain reconstructs clean; dropping its skel_end flags it partial.
    _, _, skel_leg = _oneway_records()
    clean = reconstruct_from_records(skel_leg)
    assert loss_report(clean).partial_nodes == 0
    truncated = [r for r in skel_leg if r.event is TracingEvent.SKEL_START]
    dscg = reconstruct_from_records(truncated)
    report = loss_report(dscg)
    assert report.partial_nodes == 1
    assert report.partial_chains == 1
