"""Integration: COM STA thread multiplexing and the channel-hook fix.

Section 2.2: observation O1 fails for COM's single-threaded apartments —
while a call C1 blocks on an outbound call C3, the apartment thread pumps
and serves another incoming call C2. Without runtime instrumentation the
thread-specific FTL mingles the two causal chains; with the channel hooks
("a very limited amount of instrumentation before and after call sending
and dispatching") the chains stay disjoint.
"""

import threading
import time

import pytest

from repro.analysis import reconstruct_from_records
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

IFront = ComInterface("IFront", ("handle",))
IBack = ComInterface("IBack", ("slow",))


def run_sta_scenario(hooks: bool, clients: int = 2):
    clock = VirtualClock()
    host = Host("h", PlatformKind.HPUX_11, clock=clock)
    process = SimProcess(f"com-{'hooks' if hooks else 'naive'}", host)
    MonitoringRuntime(
        process,
        MonitorConfig(
            mode=MonitorMode.CAUSALITY,
            uuid_factory=SequentialUuidFactory("ac" if hooks else "ad"),
        ),
    )
    runtime = ComRuntime(process, causality_hooks=hooks)

    class Back(ComObject):
        implements = (IBack,)

        def slow(self, n):
            time.sleep(0.04)  # keeps the front STA pumping long enough
            return n

    class Front(ComObject):
        implements = (IFront,)

        def __init__(self, back_proxy_factory):
            super().__init__()
            self.back_proxy_factory = back_proxy_factory

        def handle(self, n):
            return self.back_proxy_factory().slow(n)

    sta_front = runtime.create_sta("front")
    sta_back = runtime.create_sta("back")
    back_identity = runtime.create_object(Back, sta_back)
    front_identity = runtime.create_object(
        Front, sta_front, lambda: runtime.proxy_for(back_identity, IBack)
    )
    front = runtime.proxy_for(front_identity, IFront)

    results = []
    threads = []
    for index in range(clients):
        def work(index=index):
            results.append(front.handle(index))

        threads.append(threading.Thread(target=work))
    for offset, thread in enumerate(threads):
        thread.start()
        time.sleep(0.01)  # stagger so later calls land mid-pump
    for thread in threads:
        thread.join(timeout=10)
    records = process.log_buffer.snapshot()
    process.shutdown()
    return sorted(results), reconstruct_from_records(records)


class TestStaMingling:
    def test_results_correct_either_way(self):
        results_on, _ = run_sta_scenario(hooks=True)
        results_off, _ = run_sta_scenario(hooks=False)
        assert results_on == [0, 1]
        assert results_off == [0, 1]

    def test_hooks_keep_chains_clean(self):
        _, dscg = run_sta_scenario(hooks=True)
        assert dscg.abnormal_events() == []
        assert len(dscg.chains) == 2
        for tree in dscg.chains.values():
            root = tree.roots[0]
            assert root.operation == "handle"
            assert [c.operation for c in root.children] == ["slow"]

    def test_without_hooks_chains_mingle(self):
        _, dscg = run_sta_scenario(hooks=False)
        # The nested pump overwrote the pumping chain's FTL: the analyzer
        # reports abnormal transitions (mingled causal chains).
        assert len(dscg.abnormal_events()) > 0


class TestStaBasics:
    def test_same_apartment_call_is_direct(self):
        clock = VirtualClock()
        process = SimProcess("com-direct", Host("h", clock=clock))
        MonitoringRuntime(
            process,
            MonitorConfig(mode=MonitorMode.CAUSALITY,
                          uuid_factory=SequentialUuidFactory("ae")),
        )
        runtime = ComRuntime(process)

        IChain = ComInterface("IChain", ("outer", "inner"))

        class Chain(ComObject):
            implements = (IChain,)

            def __init__(self, proxy_factory):
                super().__init__()
                self.proxy_factory = proxy_factory

            def outer(self):
                # Call back into our own apartment: must not deadlock and
                # must use degenerate (collocated) probes.
                return self.proxy_factory().inner() + 1

            def inner(self):
                return 41

        sta = runtime.create_sta("only")
        identity = runtime.create_object(
            Chain, sta, lambda: runtime.proxy_for(identity, IChain)
        )
        proxy = runtime.proxy_for(identity, IChain)
        assert proxy.outer() == 42
        records = process.log_buffer.snapshot()
        inner_records = [r for r in records if r.operation == "inner"]
        assert all(r.collocated for r in inner_records)
        dscg = reconstruct_from_records(records)
        assert not dscg.abnormal_events()
        process.shutdown()

    def test_mta_outbound_blocks_without_pumping(self):
        clock = VirtualClock()
        process = SimProcess("com-mta", Host("h", clock=clock))
        MonitoringRuntime(
            process,
            MonitorConfig(mode=MonitorMode.CAUSALITY,
                          uuid_factory=SequentialUuidFactory("af")),
        )
        runtime = ComRuntime(process, causality_hooks=False)

        class Back(ComObject):
            implements = (IBack,)

            def slow(self, n):
                time.sleep(0.02)
                return n

        class Front(ComObject):
            implements = (IFront,)

            def __init__(self, factory):
                super().__init__()
                self.factory = factory

            def handle(self, n):
                return self.factory().slow(n)

        mta = runtime.create_mta(size=3)
        sta_back = runtime.create_sta("b")
        back_identity = runtime.create_object(Back, sta_back)
        front_identity = runtime.create_object(
            Front, mta, lambda: runtime.proxy_for(back_identity, IBack)
        )
        front = runtime.proxy_for(front_identity, IFront)

        results = []
        threads = [
            threading.Thread(target=lambda i=i: results.append(front.handle(i)))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(results) == [0, 1]
        # MTA workers block instead of pumping: even without hooks the
        # chains cannot mingle.
        dscg = reconstruct_from_records(process.log_buffer.snapshot())
        assert not dscg.abnormal_events()
        process.shutdown()
