"""Integration: the Printing Pipeline Simulator in its paper configurations."""

import pytest

from repro.analysis import (
    CpuAnalysis,
    build_ccsg,
    reconstruct,
    render_ccsg_xml,
)
from repro.apps.pps import (
    PPS_COMPONENTS,
    PpsSystem,
    four_process_deployment,
    mixed_platform_deployment,
    monolithic_deployment,
)
from repro.core import MonitorMode


def run_pps(deployment, mode=MonitorMode.CPU, jobs=2, pages=2, **kwargs):
    pps = PpsSystem(deployment, mode=mode, **kwargs)
    try:
        pps.run(njobs=jobs, pages=pages, complexity=1)
        database, run_id = pps.collect()
        dscg = reconstruct(database, run_id)
        return pps, dscg
    finally:
        pps.shutdown()


class TestFourProcess:
    def test_eleven_components_exercised(self):
        _, dscg = run_pps(four_process_deployment())
        stats = dscg.stats()
        assert stats["unique_components"] == len(PPS_COMPONENTS)
        assert stats["abnormal_events"] == 0

    def test_pipeline_structure(self):
        _, dscg = run_pps(four_process_deployment())
        (tree,) = dscg.root_chains()
        produce = tree.roots[0]
        assert produce.operation == "produce"
        submits = [c for c in produce.children if c.operation == "submit"]
        assert len(submits) == 2  # two jobs
        stages = [c.operation for c in submits[0].children]
        assert stages[0] == "reserve"
        assert stages[1] == "interpret"
        assert "mark" in stages
        assert stages[-1] == "log_event"  # oneway status log

    def test_cpu_conservation(self):
        pps, dscg = run_pps(four_process_deployment())
        cpu = CpuAnalysis(dscg)
        (tree,) = dscg.root_chains()
        root = tree.roots[0]
        inclusive = cpu.inclusive_cpu(root).total_ns()
        total = cpu.total_by_processor().total_ns()
        assert inclusive == total
        assert total > 0

    def test_ccsg_xml_renders(self):
        pps = PpsSystem(four_process_deployment(), mode=MonitorMode.CPU)
        try:
            pps.run(njobs=1, pages=1, complexity=1)
            database, run_id = pps.collect()
            dscg = reconstruct(database, run_id)
            xml = render_ccsg_xml(build_ccsg(dscg))
            assert "PPS::JobSource" in xml
            assert "SelfCPUConsumption" in xml
        finally:
            pps.shutdown()


class TestMonolithic:
    def test_single_thread_execution(self):
        pps = PpsSystem(monolithic_deployment(), mode=MonitorMode.CPU)
        try:
            pps.run(njobs=1, pages=1, complexity=1)
            database, run_id = pps.collect()
            dscg = reconstruct(database, run_id)
            sync_threads = set()
            for node in dscg.root_chains()[0].walk():
                entity = node.server_thread
                if entity is not None:
                    sync_threads.add(entity)
            assert len(sync_threads) == 1  # collocated: everything inline
        finally:
            pps.shutdown()

    def test_same_total_cpu_as_four_process(self):
        # The accounting experiment's premise: the same workload charges
        # the same CPU regardless of deployment (on the virtual clock the
        # match is exact; the paper measured within 40 %).
        _, dscg_mono = run_pps(monolithic_deployment())
        _, dscg_four = run_pps(four_process_deployment())
        mono = CpuAnalysis(dscg_mono).total_by_processor().total_ns()
        four = CpuAnalysis(dscg_four).total_by_processor().total_ns()
        assert mono == four


class TestMixedPlatform:
    def test_vxworks_cpu_uncovered(self):
        _, dscg = run_pps(mixed_platform_deployment(vxworks_marker=True))
        cpu = CpuAnalysis(dscg)
        total = cpu.total_by_processor()
        # The marking engine lives on VxWorks: its CPU cannot be read.
        assert total.uncovered > 0
        mark_nodes = dscg.nodes_for_function("PPS::MarkingEngine", "mark")
        assert mark_nodes
        assert all(cpu.self_cpu(node) is None for node in mark_nodes)

    def test_clock_skew_does_not_break_analysis(self):
        _, dscg = run_pps(
            mixed_platform_deployment(skew_ns=50_000_000), mode=MonitorMode.LATENCY
        )
        from repro.analysis import latency_report

        report = latency_report(dscg)
        # Latency subtraction never crosses hosts, so even 50ms of skew
        # must not produce negative or absurd values.
        for entry in report.values():
            assert entry.min_ns >= 0

    def test_status_logger_chains_linked(self):
        _, dscg = run_pps(four_process_deployment())
        assert len(dscg.links) >= 2  # one oneway log per job
        for _, node, child_uuid in dscg.links:
            assert node.operation == "log_event"
            assert child_uuid in dscg.chains
