"""Integration: failure injection — the monitor must degrade gracefully.

Monitoring "captures both execution behavior and propagation of semantic
causality"; it must not mask, alter or crash on application and transport
failures, and the analyzer must keep working on whatever records exist.
"""

import pytest

from repro.analysis import reconstruct_from_records
from repro.core import TracingEvent
from repro.errors import ObjectNotFound, RemoteApplicationError, TransportError
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb

IDL = """
module FI {
  interface Flaky {
    long work(in long n);
    long crash(in long n);
  };
};
"""


def build(cluster):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    client = cluster.process("client")
    server = cluster.process("server")
    client_orb = Orb(client, cluster.network, registry=registry)
    server_orb = Orb(server, cluster.network, registry=registry)

    class FlakyImpl(compiled.Flaky):
        def work(self, n):
            cluster.clock.consume(100)
            return n

        def crash(self, n):
            cluster.clock.consume(50)
            raise RuntimeError(f"injected crash {n}")

    ref = server_orb.activate(FlakyImpl())
    stub = client_orb.resolve(ref)
    return compiled, stub, ref, client_orb, server_orb


class TestApplicationFailures:
    def test_crash_storm_leaves_chains_clean(self, cluster):
        _, stub, *_ = build(cluster)
        for index in range(5):
            with pytest.raises(RemoteApplicationError):
                stub.crash(index)
            assert stub.work(index) == index
        dscg = reconstruct_from_records(cluster.all_records())
        assert not dscg.abnormal_events()
        assert dscg.node_count() == 10

    def test_failed_calls_still_measurable(self, cluster):
        from repro.analysis import latency_report

        _, stub, *_ = build(cluster)
        with pytest.raises(RemoteApplicationError):
            stub.crash(1)
        report = latency_report(reconstruct_from_records(cluster.all_records()))
        entry = report["FI::Flaky::crash"]
        assert entry.count == 1
        assert entry.mean_ns >= 50


class TestTransportAndLifecycleFailures:
    def test_unknown_object_raises_cleanly(self, cluster):
        compiled, stub, ref, client_orb, server_orb = build(cluster)
        from repro.orb import ObjectRef

        ghost_ref = ObjectRef(ref.address, "no-such-key", ref.interface, "Ghost")
        ghost = client_orb.resolve(ghost_ref)
        with pytest.raises(RemoteApplicationError):
            ghost.work(1)

    def test_call_after_server_shutdown_raises_transport_error(self, cluster):
        compiled, stub, ref, client_orb, server_orb = build(cluster)
        assert stub.work(1) == 1
        server_orb.shutdown()
        with pytest.raises((TransportError, Exception)):
            stub.work(2)

    def test_records_survive_server_shutdown(self, cluster):
        compiled, stub, ref, client_orb, server_orb = build(cluster)
        stub.work(1)
        server_orb.shutdown()
        try:
            stub.work(2)
        except Exception:
            pass
        records = cluster.all_records()
        dscg = reconstruct_from_records(records)
        complete = [
            node
            for node in dscg.walk()
            if TracingEvent.STUB_END in node.records
            and TracingEvent.SKEL_END in node.records
        ]
        assert complete, "the successful call's records must be intact"


class TestAnalyzerRobustness:
    def test_duplicate_records_flagged_not_fatal(self, cluster):
        _, stub, *_ = build(cluster)
        stub.work(1)
        records = cluster.all_records()
        damaged = records + [records[0]]  # duplicated stub_start
        dscg = reconstruct_from_records(damaged)
        # one clean tree plus a flagged anomaly (unterminated duplicate)
        assert dscg.nodes_for_function("FI::Flaky", "work")
        assert dscg.abnormal_events()

    def test_cross_chain_contamination_detected(self, cluster):
        _, stub, *_ = build(cluster)
        stub.work(1)
        records = cluster.all_records()
        # Rewrite one record onto a foreign chain id: the Figure-4 machine
        # must flag it in the foreign chain.
        foreign = "ff" * 16
        records[1].chain_uuid = foreign
        dscg = reconstruct_from_records(records)
        assert any(a.chain_uuid == foreign for a in dscg.abnormal_events())
