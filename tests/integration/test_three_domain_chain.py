"""Integration: one causal chain across CORBA, COM *and* J2EE.

Section 6: "We strive for the monitoring framework capable of monitoring
the end-to-end application that consists of different subsystems, each of
which is built upon a different remote invocation infrastructure." This
test builds exactly that application:

    CORBA client → CORBA servant → COM object (STA) → J2EE session bean

and asserts a single Function UUID, a clean Figure-4 reconstruction, and
correct CPU propagation across all three domains.
"""

import pytest

from repro.analysis import CpuAnalysis, reconstruct_from_records
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import Domain, MonitorMode
from repro.idl import compile_idl
from repro.j2ee import Container, Jndi, stateless
from repro.orb import InterfaceRegistry, Orb

IDL = """
module TD {
  interface Gateway {
    long handle(in long request);
  };
};
"""

IMiddle = ComInterface("IMiddle", ("relay",))


@pytest.fixture
def three_domains(cpu_cluster):
    cluster = cpu_cluster
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)

    front = cluster.process("front")  # CORBA client + servant
    middle = cluster.process("middle")  # COM runtime
    back = cluster.process("back")  # J2EE container

    front_orb = Orb(front, cluster.network, registry=registry)
    client_orb = Orb(cluster.process("driver"), cluster.network, registry=registry)
    com_runtime = ComRuntime(middle)
    # The CORBA servant process needs its own COM runtime to hold client-
    # side proxies — in real COM every process initializes the runtime.
    front_com = ComRuntime(front)
    container = Container(back, "backend")
    jndi = Jndi()

    @stateless
    class TaxService:
        def compute(self, amount):
            cluster.clock.consume(400)
            return amount * 2

    jndi.bind("tax", container, container.deploy(TaxService))

    class MiddleObj(ComObject):
        implements = (IMiddle,)

        def relay(self, amount):
            cluster.clock.consume(200)
            # COM → J2EE: the bean proxy is bound to the COM process.
            return jndi.lookup("tax", middle).compute(amount) + 1

    sta = com_runtime.create_sta("m")
    middle_identity = com_runtime.create_object(MiddleObj, sta)

    class GatewayImpl(compiled.Gateway):
        def handle(self, request):
            cluster.clock.consume(100)
            # CORBA → COM: the proxy belongs to the *front* process's COM
            # runtime, so its probes read front's thread-specific storage
            # (where the CORBA skeleton just bound the FTL).
            proxy = front_com.proxy_for(middle_identity, IMiddle)
            return proxy.relay(request) + 1

    gateway_ref = front_orb.activate(GatewayImpl())
    stub = client_orb.resolve(gateway_ref)
    return cluster, stub, (front, middle, back)


class TestThreeDomainChain:
    def test_result_and_single_chain(self, three_domains):
        cluster, stub, _ = three_domains
        assert stub.handle(10) == 22  # ((10*2)+1)+1
        records = cluster.all_records()
        dscg = reconstruct_from_records(records)
        assert len(dscg.chains) == 1
        assert not dscg.abnormal_events()
        domains_seen = {record.domain for record in records}
        assert domains_seen == {Domain.CORBA, Domain.COM, Domain.J2EE}

    def test_nesting_order_across_domains(self, three_domains):
        cluster, stub, _ = three_domains
        stub.handle(5)
        dscg = reconstruct_from_records(cluster.all_records())
        (tree,) = dscg.chains.values()
        top = tree.roots[0]
        assert top.domain is Domain.CORBA
        com_node = top.children[0]
        assert com_node.domain is Domain.COM
        ejb_node = com_node.children[0]
        assert ejb_node.domain is Domain.J2EE
        assert ejb_node.function == "TaxService::compute"

    def test_cpu_propagates_through_all_domains(self, three_domains):
        cluster, stub, _ = three_domains
        stub.handle(1)
        dscg = reconstruct_from_records(cluster.all_records())
        cpu = CpuAnalysis(dscg)
        (tree,) = dscg.chains.values()
        root = tree.roots[0]
        assert cpu.self_cpu(root) == 100  # CORBA servant
        assert cpu.inclusive_cpu(root).total_ns() == 700  # +200 COM +400 EJB
