"""Integration: Table 1 — event chaining patterns identify call structure."""

from repro.analysis import reconstruct_from_records
from repro.workloads import (
    callback_scenario,
    parent_child_scenario,
    recursion_scenario,
    sibling_scenario,
)


class TestSiblingPattern:
    def test_event_chain_matches_table1_left_column(self):
        scenario = sibling_scenario()
        try:
            labels = [r.event_label for r in scenario.records]
            assert labels == scenario.expected_labels
            seqs = [r.event_seq for r in scenario.records]
            assert seqs == list(range(8))
        finally:
            scenario.shutdown()

    def test_reconstruction_yields_two_top_level_siblings(self):
        scenario = sibling_scenario()
        try:
            dscg = reconstruct_from_records(scenario.records)
            (tree,) = dscg.chains.values()
            assert [n.operation for n in tree.roots] == ["F", "G"]
            assert all(not n.children for n in tree.roots)
        finally:
            scenario.shutdown()


class TestParentChildPattern:
    def test_event_chain_matches_table1_right_column(self):
        scenario = parent_child_scenario()
        try:
            labels = [r.event_label for r in scenario.records]
            assert labels == scenario.expected_labels
        finally:
            scenario.shutdown()

    def test_reconstruction_yields_nested_chain(self):
        scenario = parent_child_scenario()
        try:
            dscg = reconstruct_from_records(scenario.records)
            (tree,) = dscg.chains.values()
            f = tree.roots[0]
            assert f.operation == "F"
            assert f.children[0].operation == "G"
            assert f.children[0].children[0].operation == "H"
        finally:
            scenario.shutdown()


class TestOtherNestingForms:
    def test_recursion_produces_nesting(self):
        scenario = recursion_scenario(depth=4)
        try:
            dscg = reconstruct_from_records(scenario.records)
            assert dscg.max_depth() == 5
            assert not dscg.abnormal_events()
        finally:
            scenario.shutdown()

    def test_callback_produces_nesting(self):
        scenario = callback_scenario()
        try:
            dscg = reconstruct_from_records(scenario.records)
            (tree,) = dscg.chains.values()
            pull = tree.roots[0]
            assert pull.operation == "pull"
            assert [c.operation for c in pull.children] == ["deliver"]
            # The callback crossed back into the client process.
            assert pull.children[0].server_process != pull.server_process
        finally:
            scenario.shutdown()
