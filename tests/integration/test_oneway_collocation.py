"""Integration: oneway dispatch and collocation optimization (Section 2.2)."""

import time

import pytest

from repro.analysis import reconstruct_from_records
from repro.core import CallKind, TracingEvent
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb

IDL = """
module OC {
  interface Sink {
    oneway void push(in long value);
    long pull();
  };
};
"""


def build(cluster, collocation=True, same_process=False):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    server = cluster.process("server")
    server_orb = Orb(server, cluster.network, registry=registry,
                     collocation_optimization=collocation)
    if same_process:
        client, client_orb = server, server_orb
    else:
        client = cluster.process("client")
        client_orb = Orb(client, cluster.network, registry=registry,
                         collocation_optimization=collocation)

    class SinkImpl(compiled.Sink):
        def __init__(self):
            self.values = []

        def push(self, value):
            cluster.clock.consume(1_000)
            self.values.append(value)

        def pull(self):
            return len(self.values)

    impl = SinkImpl()
    ref = server_orb.activate(impl)
    stub = client_orb.resolve(ref)
    return compiled, impl, stub


def wait_for(predicate, timeout=3.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestOneway:
    def test_oneway_executes_asynchronously(self, cluster):
        _, impl, stub = build(cluster)
        stub.push(41)
        assert wait_for(lambda: impl.values == [41])

    def test_oneway_returns_before_execution_required(self, cluster):
        _, impl, stub = build(cluster)
        for value in range(5):
            stub.push(value)
        assert wait_for(lambda: len(impl.values) == 5)
        assert sorted(impl.values) == list(range(5))

    def test_oneway_forks_child_chain(self, cluster):
        _, impl, stub = build(cluster)
        stub.push(1)
        assert wait_for(lambda: impl.values == [1])
        wait_for(lambda: len(cluster.all_records()) >= 4)
        dscg = reconstruct_from_records(cluster.all_records())
        assert len(dscg.chains) == 2
        assert len(dscg.links) == 1
        stub_side = dscg.links[0][1]
        assert stub_side.call_kind is CallKind.ONEWAY
        # Stub side logs probes 1 and 4 only (R(F) = {1, 4}).
        assert set(stub_side.records) == {TracingEvent.STUB_START, TracingEvent.STUB_END}

    def test_oneway_child_runs_on_different_thread(self, cluster):
        _, impl, stub = build(cluster)
        stub.push(1)
        assert wait_for(lambda: impl.values == [1])
        wait_for(lambda: len(cluster.all_records()) >= 4)
        records = cluster.all_records()
        stub_threads = {r.thread_id for r in records if r.event.is_stub_side}
        skel_threads = {r.thread_id for r in records if not r.event.is_stub_side}
        assert stub_threads.isdisjoint(skel_threads)  # always cross-thread


class TestCollocation:
    def test_collocated_call_bypasses_marshalling(self, cluster):
        _, impl, stub = build(cluster, collocation=True, same_process=True)
        assert stub.pull() == 0
        records = cluster.all_records()
        assert len(records) == 4
        assert all(r.collocated for r in records)
        # all four probes on the same thread, same process
        assert len({r.thread_id for r in records}) == 1

    def test_collocation_disabled_goes_through_loopback(self, cluster):
        _, impl, stub = build(cluster, collocation=False, same_process=True)
        assert stub.pull() == 0
        records = cluster.all_records()
        assert len(records) == 4
        assert not any(r.collocated for r in records)
        # dispatch happened on a server thread
        assert len({r.thread_id for r in records}) == 2

    def test_collocated_chain_reconstructs_identically(self, cluster):
        _, impl, stub = build(cluster, collocation=True, same_process=True)
        stub.pull()
        stub.pull()
        dscg = reconstruct_from_records(cluster.all_records())
        (tree,) = dscg.chains.values()
        assert [n.operation for n in tree.roots] == ["pull", "pull"]
        assert not dscg.abnormal_events()

    def test_remote_ref_ignores_collocation(self, cluster):
        _, impl, stub = build(cluster, collocation=True, same_process=False)
        stub.pull()
        records = cluster.all_records()
        assert not any(r.collocated for r in records)
