"""Integration: full CORBA round trips through the instrumented ORB."""

import pytest

from repro.analysis import reconstruct_from_records
from repro.errors import RemoteApplicationError
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb

IDL = """
module Shop {
  enum Status { OPEN, CLOSED };
  struct Item { long id; string label; double price; };
  exception NotFound { long id; };
  typedef sequence<Item> ItemList;

  interface Catalog {
    Item lookup(in long id) raises (NotFound);
    ItemList list_all();
    long add(in Item item);
    void stats(out long total, out double value);
    Status state();
    long adjust(inout long amount);
  };
};
"""


@pytest.fixture
def shop(cluster):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    client = cluster.process("client")
    server = cluster.process("server")
    client_orb = Orb(client, cluster.network, registry=registry)
    server_orb = Orb(server, cluster.network, registry=registry)

    Item = compiled.Item
    NotFound = compiled.NotFound
    Status = compiled.Status

    class CatalogImpl(compiled.Catalog):
        def __init__(self):
            self.items = {}

        def lookup(self, id):
            if id < 0:
                raise ValueError("negative id")  # undeclared exception
            if id not in self.items:
                raise NotFound(id=id)
            return self.items[id]

        def list_all(self):
            return sorted(self.items.values(), key=lambda item: item.id)

        def add(self, item):
            self.items[item.id] = item
            return len(self.items)

        def stats(self):
            total = len(self.items)
            value = sum(i.price for i in self.items.values())
            return (total, value)

        def state(self):
            return Status.OPEN

        def adjust(self, amount):
            return (amount * 2, amount + 1)  # return, inout out-value

    ref = server_orb.activate(CatalogImpl())
    stub = client_orb.resolve(ref)
    return compiled, stub, cluster


class TestDataTypes:
    def test_struct_roundtrip(self, shop):
        compiled, stub, _ = shop
        item = compiled.Item(id=1, label="toner", price=19.5)
        assert stub.add(item) == 1
        restored = stub.lookup(1)
        assert restored == item

    def test_sequence_of_structs(self, shop):
        compiled, stub, _ = shop
        for index in range(3):
            stub.add(compiled.Item(id=index, label=f"i{index}", price=float(index)))
        all_items = stub.list_all()
        assert [i.id for i in all_items] == [0, 1, 2]

    def test_enum_return(self, shop):
        compiled, stub, _ = shop
        assert stub.state() is compiled.Status.OPEN

    def test_out_parameters(self, shop):
        compiled, stub, _ = shop
        stub.add(compiled.Item(id=1, label="a", price=2.0))
        stub.add(compiled.Item(id=2, label="b", price=3.0))
        total, value = stub.stats()
        assert total == 2
        assert value == 5.0

    def test_inout_parameter(self, shop):
        compiled, stub, _ = shop
        result, new_amount = stub.adjust(10)
        assert result == 20
        assert new_amount == 11


class TestExceptions:
    def test_declared_user_exception_reraised(self, shop):
        compiled, stub, _ = shop
        with pytest.raises(compiled.NotFound) as excinfo:
            stub.lookup(404)
        assert excinfo.value.id == 404

    def test_undeclared_exception_becomes_system(self, shop):
        compiled, stub, _ = shop
        with pytest.raises(RemoteApplicationError) as excinfo:
            stub.lookup(-1)
        assert excinfo.value.exc_type == "ValueError"
        assert "negative id" in excinfo.value.message

    def test_probes_fire_even_on_exception(self, shop):
        compiled, stub, cluster = shop
        with pytest.raises(compiled.NotFound):
            stub.lookup(404)
        records = cluster.all_records()
        # full four-probe sequence despite the exception
        assert len(records) == 4
        dscg = reconstruct_from_records(records)
        assert not dscg.abnormal_events()


class TestCausality:
    def test_every_call_extends_one_chain(self, shop):
        compiled, stub, cluster = shop
        stub.add(compiled.Item(id=1, label="x", price=1.0))
        stub.lookup(1)
        stub.state()
        records = cluster.all_records()
        assert len({r.chain_uuid for r in records}) == 1
        assert [r.event_seq for r in sorted(records, key=lambda r: r.event_seq)] == list(
            range(12)
        )

    def test_component_and_object_identity_recorded(self, shop):
        compiled, stub, cluster = shop
        stub.state()
        records = cluster.all_records()
        assert all(r.component == "CatalogImpl" for r in records)
        assert all(r.object_id.startswith("server.") for r in records)
