"""Integration: mixed instrumentation and marshal-by-value (Section 2.2)."""

import pytest

from repro.analysis import reconstruct_from_records
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb

IDL = """
module PV {
  interface Calc {
    long add(in long a, in long b);
  };
};
"""


class TestPartialInstrumentation:
    def test_instrumented_client_plain_server(self, cluster):
        registry = InterfaceRegistry()
        instrumented = compile_idl(IDL, instrument=True, registry=registry)
        plain_registry = InterfaceRegistry()
        plain = compile_idl(IDL, instrument=False, registry=plain_registry)

        client = cluster.process("client")
        server = cluster.process("server", monitored=False)
        client_orb = Orb(client, cluster.network, registry=registry)
        server_orb = Orb(server, cluster.network, registry=plain_registry)

        class CalcImpl(plain.Calc):
            def add(self, a, b):
                return a + b

        ref = server_orb.activate(CalcImpl())
        stub = client_orb.resolve(ref)
        assert stub.add(2, 3) == 5

        records = cluster.all_records()
        # Only the client side logged: probes 1 and 4.
        assert len(records) == 2
        dscg = reconstruct_from_records(records)
        node = list(dscg.walk())[0]
        assert node.partial
        assert not dscg.abnormal_events()

    def test_plain_client_instrumented_server(self, cluster):
        registry = InterfaceRegistry()
        instrumented = compile_idl(IDL, instrument=True, registry=registry)
        plain_registry = InterfaceRegistry()
        plain = compile_idl(IDL, instrument=False, registry=plain_registry)

        client = cluster.process("client", monitored=False)
        server = cluster.process("server")
        client_orb = Orb(client, cluster.network, registry=plain_registry)
        server_orb = Orb(server, cluster.network, registry=registry)

        class CalcImpl(instrumented.Calc):
            def add(self, a, b):
                return a + b

        ref = server_orb.activate(CalcImpl())
        stub = client_orb.resolve(ref)
        assert stub.add(4, 5) == 9

        records = cluster.all_records()
        assert len(records) == 2  # skeleton probes only
        dscg = reconstruct_from_records(records)
        node = list(dscg.walk())[0]
        assert node.partial
        assert not dscg.abnormal_events()


class TestMarshalByValue:
    def test_by_value_servant_copied_to_client(self, cluster):
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)
        client = cluster.process("client")
        server = cluster.process("server")
        client_orb = Orb(client, cluster.network, registry=registry)
        server_orb = Orb(server, cluster.network, registry=registry)

        class CalcImpl(compiled.Calc):
            def __init__(self):
                self.calls = 0

            def add(self, a, b):
                self.calls += 1
                return a + b

        original = CalcImpl()
        ref = server_orb.activate(original, by_value=True)
        stub = client_orb.resolve(ref)
        assert stub.add(1, 2) == 3
        # Custom marshalling ran the call in the client's context: the
        # original servant never executed.
        assert original.calls == 0

    def test_by_value_call_is_collocated(self, cluster):
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)
        client = cluster.process("client")
        server = cluster.process("server")
        client_orb = Orb(client, cluster.network, registry=registry)
        server_orb = Orb(server, cluster.network, registry=registry)

        class CalcImpl(compiled.Calc):
            def add(self, a, b):
                return a + b

        ref = server_orb.activate(CalcImpl(), by_value=True)
        stub = client_orb.resolve(ref)
        stub.add(1, 1)
        records = cluster.all_records()
        assert records, "instrumentation should still fire"
        assert all(r.collocated for r in records)
        assert all(r.process == "client" for r in records)

    def test_regular_resolve_unaffected(self, cluster):
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)
        client = cluster.process("client")
        server = cluster.process("server")
        client_orb = Orb(client, cluster.network, registry=registry)
        server_orb = Orb(server, cluster.network, registry=registry)

        class CalcImpl(compiled.Calc):
            def __init__(self):
                self.calls = 0

            def add(self, a, b):
                self.calls += 1
                return a + b

        impl = CalcImpl()
        ref = server_orb.activate(impl)  # NOT by value
        stub = client_orb.resolve(ref)
        assert stub.add(1, 2) == 3
        assert impl.calls == 1
