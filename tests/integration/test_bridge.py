"""Integration: causality propagation across the CORBA/COM bridge (Sec. 2.3)."""

import pytest

from repro.analysis import reconstruct_from_records
from repro.bridge import com_facade_for_corba, corba_facade_for_com
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import Domain
from repro.errors import BridgeError
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb

IDL = """
module HB {
  interface Render { long render(in long frame); };
  interface Encode { long encode(in long frame); };
};
"""

IRender = ComInterface("IRender", ("render",))
IEncode = ComInterface("IEncode", ("encode",))


@pytest.fixture
def hybrid(cluster):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    client = cluster.process("corba-client")
    bridge = cluster.process("bridge")
    worker = cluster.process("corba-worker")
    client_orb = Orb(client, cluster.network, registry=registry)
    bridge_orb = Orb(bridge, cluster.network, registry=registry)
    worker_orb = Orb(worker, cluster.network, registry=registry)
    com_runtime = ComRuntime(bridge, causality_hooks=True)
    return compiled, cluster, client_orb, bridge_orb, worker_orb, com_runtime


class TestCorbaToComToCorba:
    def test_single_chain_crosses_both_domains(self, hybrid):
        compiled, cluster, client_orb, bridge_orb, worker_orb, com_runtime = hybrid

        class EncodeImpl(compiled.Encode):
            def encode(self, frame):
                cluster.clock.consume(1_000)
                return frame * 10

        encode_ref = worker_orb.activate(EncodeImpl())
        encode_stub = bridge_orb.resolve(encode_ref)
        com_encode = com_facade_for_corba(IEncode, encode_stub)

        class RenderObj(ComObject):
            implements = (IRender,)

            def render(self, frame):
                return com_encode.encode(frame) + 1

        sta = com_runtime.create_sta("render")
        render_identity = com_runtime.create_object(RenderObj, sta)
        render_proxy = com_runtime.proxy_for(render_identity, IRender)
        bridge_servant = corba_facade_for_com(compiled.Render, render_proxy)
        render_ref = bridge_orb.activate(bridge_servant, interface="HB::Render")

        stub = client_orb.resolve(render_ref)
        assert stub.render(7) == 71

        records = cluster.all_records()
        dscg = reconstruct_from_records(records)
        assert len(dscg.chains) == 1
        assert not dscg.abnormal_events()
        domains = {r.domain for r in records}
        assert domains == {Domain.CORBA, Domain.COM}
        # nesting: Render (corba) -> render (com) -> encode (corba)
        (tree,) = dscg.chains.values()
        top = tree.roots[0]
        assert top.domain is Domain.CORBA
        com_node = top.children[0]
        assert com_node.domain is Domain.COM
        assert com_node.children[0].domain is Domain.CORBA

    def test_bridge_validates_method_coverage(self, hybrid):
        compiled, cluster, client_orb, bridge_orb, worker_orb, com_runtime = hybrid
        incomplete = ComInterface("IIncomplete", ("unrelated",))

        class Dummy(ComObject):
            implements = (incomplete,)

            def unrelated(self):
                return 0

        sta = com_runtime.create_sta("d")
        identity = com_runtime.create_object(Dummy, sta)
        proxy = com_runtime.proxy_for(identity, incomplete)
        with pytest.raises(BridgeError):
            corba_facade_for_com(compiled.Render, proxy)

    def test_com_facade_validates_stub_methods(self, hybrid):
        compiled, cluster, client_orb, bridge_orb, worker_orb, com_runtime = hybrid

        class NotAStub:
            pass

        with pytest.raises(BridgeError):
            com_facade_for_corba(IEncode, NotAStub())


class TestComToCorbaOnly:
    def test_com_client_calls_corba_service(self, hybrid):
        compiled, cluster, client_orb, bridge_orb, worker_orb, com_runtime = hybrid

        class EncodeImpl(compiled.Encode):
            def encode(self, frame):
                return frame + 100

        encode_ref = worker_orb.activate(EncodeImpl())
        encode_stub = bridge_orb.resolve(encode_ref)
        facade = com_facade_for_corba(IEncode, encode_stub)

        sta = com_runtime.create_sta("client-side")
        identity = com_runtime.export(facade, sta)
        proxy = com_runtime.proxy_for(identity, IEncode)
        assert proxy.encode(1) == 101

        dscg = reconstruct_from_records(cluster.all_records())
        assert len(dscg.chains) == 1
        assert not dscg.abnormal_events()
