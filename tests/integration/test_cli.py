"""Integration tests for the CLI (`python -m repro`)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def pps_db(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "pps.db"
    assert main(["demo-pps", str(path), "--mode", "full",
                 "--jobs", "2", "--pages", "2", "--complexity", "1"]) == 0
    return str(path)


class TestCli:
    def test_summary(self, pps_db, capsys):
        assert main(["summary", pps_db]) == 0
        out = capsys.readouterr().out
        assert "DSCG:" in out
        assert "causal chain" in out

    def test_latency_table(self, pps_db, capsys):
        assert main(["latency", pps_db, "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "function" in out
        assert "PPS::" in out

    def test_cpu_table(self, pps_db, capsys):
        assert main(["cpu", pps_db]) == 0
        out = capsys.readouterr().out
        assert "self CPU" in out

    def test_ccsg_to_file(self, pps_db, tmp_path, capsys):
        out_file = tmp_path / "ccsg.xml"
        assert main(["ccsg", pps_db, "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.startswith("<?xml")
        assert "SelfCPUConsumption" in text

    def test_critical_path(self, pps_db, capsys):
        assert main(["critical-path", pps_db, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "chain" in out
        assert "% of chain" in out

    def test_dscg_json(self, pps_db, tmp_path):
        out_file = tmp_path / "dscg.json"
        assert main(["dscg-json", pps_db, "--output", str(out_file)]) == 0
        document = json.loads(out_file.read_text())
        assert document["format"] == "repro-dscg"

    def test_svg(self, pps_db, tmp_path):
        out_file = tmp_path / "dscg.svg"
        assert main(["svg", pps_db, "--output", str(out_file)]) == 0
        assert out_file.read_text().startswith("<svg")

    def test_harness(self, pps_db, tmp_path):
        out_file = tmp_path / "harness.py"
        assert main(["harness", pps_db, "--output", str(out_file)]) == 0
        script = out_file.read_text()
        compile(script, "<harness>", "exec")
        assert "EXPECTED_TOTAL_CALLS" in script

    def test_unknown_run_rejected(self, pps_db):
        with pytest.raises(SystemExit):
            main(["summary", pps_db, "--run", "no-such-run"])

    def test_empty_database_rejected(self, tmp_path):
        empty = tmp_path / "empty.db"
        from repro.collector import MonitoringDatabase

        MonitoringDatabase(str(empty)).close()
        with pytest.raises(SystemExit):
            main(["summary", str(empty)])

    def test_impact_ranking(self, pps_db, capsys):
        assert main(["impact", pps_db]) == 0
        out = capsys.readouterr().out
        assert "top functions by saving" in out
        assert "PPS::" in out

    def test_impact_single_function(self, pps_db, capsys):
        assert main(["impact", pps_db, "--function",
                     "PPS::MarkingEngine::mark", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "what-if: PPS::MarkingEngine::mark self CPU x0.25" in out

    def test_demo_embedded(self, tmp_path, capsys):
        db = tmp_path / "emb.db"
        assert main(["demo-embedded", str(db), "--calls", "300", "--roots", "2"]) == 0
        assert main(["summary", str(db)]) == 0
        out = capsys.readouterr().out
        assert "300" in out  # the driven call count appears in the stats

    def test_export_trace_chrome(self, pps_db, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(["export-trace", pps_db, "--format", "chrome",
                     "--output", str(out_file)]) == 0
        document = json.loads(out_file.read_text())
        assert document["otherData"]["format"] == "repro-chrome-trace"
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert slices
        assert len({e["args"]["trace_id"] for e in slices}) == (
            document["otherData"]["chains"]
        )

    def test_export_trace_otlp_pretty(self, pps_db, tmp_path):
        out_file = tmp_path / "spans.json"
        assert main(["export-trace", pps_db, "--format", "otlp", "--pretty",
                     "--output", str(out_file)]) == 0
        document = json.loads(out_file.read_text())
        assert document["otherData"]["format"] == "repro-otlp-trace"
        assert document["resourceSpans"]
        spans = [
            span
            for resource in document["resourceSpans"]
            for span in resource["scopeSpans"][0]["spans"]
        ]
        assert spans and all(len(span["traceId"]) == 32 for span in spans)

    def test_metrics_emits_prometheus_text(self, capsys):
        from repro import telemetry

        assert main(["metrics", "--jobs", "1", "--pages", "2",
                     "--complexity", "1", "--slo-ms", "0.001"]) == 0
        out = capsys.readouterr().out
        for metric in (
            "repro_orb_dispatch_total",
            "repro_probe_records_total",
            "repro_collector_drains_total",
            "repro_online_completed_calls_total",
        ):
            assert metric in out, metric
        # The command must leave global telemetry switched off again.
        assert not telemetry.is_enabled()


class TestSegmentStoreCli:
    @pytest.fixture(scope="class")
    def segment_store(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-store") / "store"
        assert main(["demo-embedded", str(path), "--store", "segment",
                     "--calls", "300", "--roots", "3"]) == 0
        return str(path)

    def test_analysis_commands_on_segment_store(self, segment_store, capsys):
        # The run-analysis commands autodetect the backend from the path.
        assert main(["summary", segment_store]) == 0
        out = capsys.readouterr().out
        assert "DSCG:" in out
        assert main(["latency", segment_store, "--limit", "3"]) == 0
        assert "function" in capsys.readouterr().out

    def test_workers_flag_on_segment_store(self, segment_store, capsys):
        assert main(["summary", segment_store, "--workers", "2"]) == 0
        assert "DSCG:" in capsys.readouterr().out

    def test_store_info_segment(self, segment_store, tmp_path):
        out_file = tmp_path / "info.json"
        assert main(["store-info", segment_store,
                     "--output", str(out_file)]) == 0
        info = json.loads(out_file.read_text())
        assert info["backend"] == "segment"
        assert info["schema_version"] >= 1
        (run,) = info["runs"]
        assert run["records"] > 0
        assert run["segments"]

    def test_query_predicated(self, segment_store, tmp_path):
        out_file = tmp_path / "q.json"
        assert main(["query", segment_store, "--operation", "m0",
                     "--output", str(out_file)]) == 0
        result = json.loads(out_file.read_text())
        assert result["predicate"]["operations"] == ["m0"]
        assert result["records"] > 0
        assert all(key.endswith("::m0") for key in result["operations"])
        # The pushdown proof: fewer frames decoded than records stored.
        unfiltered = tmp_path / "all.json"
        assert main(["query", segment_store, "--output", str(unfiltered)]) == 0
        full = json.loads(unfiltered.read_text())
        assert result["records"] < full["records"]
        assert result["scan"]["frames_decoded"] <= full["scan"]["frames_decoded"]

    def test_query_cross_run_catalog(self, segment_store, tmp_path):
        out_file = tmp_path / "xq.json"
        assert main(["query", segment_store, "--last", "5",
                     "--workers", "2", "--output", str(out_file)]) == 0
        result = json.loads(out_file.read_text())
        assert len(result["runs"]) == 1  # the fixture collected one run
        assert result["quantile_source"] == "exact"
        assert result["records"] > 0

    def test_query_sqlite_backend(self, pps_db, tmp_path):
        out_file = tmp_path / "sq.json"
        assert main(["query", pps_db, "--output", str(out_file)]) == 0
        result = json.loads(out_file.read_text())
        assert result["records"] > 0
        assert "scan" not in result  # no pruning stats on SQLite

    def test_store_info_catalog(self, segment_store, tmp_path):
        out_file = tmp_path / "cat.json"
        assert main(["store-info", segment_store, "--catalog",
                     "--output", str(out_file)]) == 0
        info = json.loads(out_file.read_text())
        (row,) = info["catalog"]["runs"]
        assert row["records"] > 0
        assert row["downsampled"] is False

    def test_store_info_sqlite(self, pps_db, tmp_path):
        out_file = tmp_path / "info.json"
        assert main(["store-info", pps_db, "--output", str(out_file)]) == 0
        info = json.loads(out_file.read_text())
        assert info["backend"] == "sqlite"
        (run,) = info["runs"]
        assert run["records"] > 0
        assert run["schema_version"] >= 1
