"""Integration: the monitoring database persists across analyzer sessions.

The paper's workflow is inherently two-phase — collect at quiescence,
analyze off-line, possibly much later, possibly elsewhere. A run written
to a database *file* must reconstruct identically when reopened cold.
"""

from repro.analysis import CpuAnalysis, build_ccsg, reconstruct, render_ccsg_xml
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.collector import LogCollector, MonitoringDatabase
from repro.core import MonitorMode


class TestFilePersistence:
    def test_cold_reopen_reconstructs_identically(self, tmp_path):
        path = str(tmp_path / "run.db")
        pps = PpsSystem(four_process_deployment(), mode=MonitorMode.CPU,
                        uuid_prefix="d1")
        try:
            pps.run(njobs=2, pages=2, complexity=1)
            pps.quiesce()
            collector = LogCollector(MonitoringDatabase(path))
            run_id = collector.collect(pps.processes.values(), run_id="persisted")
            live_dscg = reconstruct(collector.database, run_id)
            live_xml = render_ccsg_xml(build_ccsg(live_dscg, CpuAnalysis(live_dscg)))
            collector.database.close()
        finally:
            pps.shutdown()

        # A brand-new analyzer session over the file on disk:
        cold = MonitoringDatabase(path)
        assert [m.run_id for m in cold.runs()] == ["persisted"]
        cold_dscg = reconstruct(cold, "persisted")
        assert cold_dscg.stats() == live_dscg.stats()
        cold_xml = render_ccsg_xml(build_ccsg(cold_dscg, CpuAnalysis(cold_dscg)))
        assert cold_xml == live_xml
        cold.close()

    def test_multiple_runs_in_one_file(self, tmp_path):
        path = str(tmp_path / "runs.db")
        collector = LogCollector(MonitoringDatabase(path))
        for index in range(2):
            pps = PpsSystem(four_process_deployment(), mode=MonitorMode.CAUSALITY,
                            uuid_prefix=f"d{index + 2}")
            try:
                pps.run(njobs=1, pages=1 + index, complexity=1)
                pps.quiesce()
                collector.collect(pps.processes.values(), run_id=f"run{index}")
            finally:
                pps.shutdown()
        collector.database.close()

        cold = MonitoringDatabase(path)
        run_ids = [m.run_id for m in cold.runs()]
        assert run_ids == ["run0", "run1"]
        nodes0 = reconstruct(cold, "run0").node_count()
        nodes1 = reconstruct(cold, "run1").node_count()
        assert nodes1 > nodes0  # the second run had more pages
        cold.close()
