"""Integration: PPS failure paths (resource exhaustion) under monitoring."""

import pytest

from repro.analysis import reconstruct, semantics_report
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.core import MonitorMode
from repro.errors import RemoteApplicationError


class TestResourceExhaustion:
    def test_out_of_resources_propagates_to_caller(self):
        pps = PpsSystem(four_process_deployment(), mode=MonitorMode.SEMANTICS,
                        uuid_prefix="5a")
        try:
            manager = pps.servants["ResourceManager"]
            manager.capacity = 2
            source = pps.stub_for("JobSource")
            OutOfResources = pps.compiled.OutOfResources
            # a 3-page job cannot reserve against a 2-page capacity. The
            # produce/submit hops are collocated (same process), so the
            # declared exception propagates natively; had the caller been
            # remote it would arrive wrapped as a system exception.
            with pytest.raises((RemoteApplicationError, OutOfResources)) as excinfo:
                source.produce(1, 3, 1)
            assert "pages" in str(excinfo.value) or "OutOfResources" in str(
                excinfo.value
            )
        finally:
            pps.shutdown()

    def test_failure_recorded_in_semantics(self):
        pps = PpsSystem(four_process_deployment(), mode=MonitorMode.SEMANTICS,
                        uuid_prefix="5b")
        try:
            pps.servants["ResourceManager"].capacity = 2
            source = pps.stub_for("JobSource")
            with pytest.raises(Exception):
                source.produce(1, 3, 1)
            pps.quiesce()
            records = []
            for process in pps.processes.values():
                records.extend(process.log_buffer.snapshot())
            report = semantics_report(records)
            reserve = report["PPS::ResourceManager::reserve"]
            assert reserve.user_exceptions >= 1
            assert any("pages" in s for s in reserve.exception_samples)
        finally:
            pps.shutdown()

    def test_chain_reconstructs_despite_mid_pipeline_failure(self):
        pps = PpsSystem(four_process_deployment(), mode=MonitorMode.CAUSALITY,
                        uuid_prefix="5c")
        try:
            pps.servants["ResourceManager"].capacity = 2
            source = pps.stub_for("JobSource")
            with pytest.raises(Exception):
                source.produce(1, 3, 1)
            database, run_id = pps.collect()
            dscg = reconstruct(database, run_id)
            # The exception unwound through instrumented skeletons: every
            # started call still closed its probes; no abnormal events.
            assert not dscg.abnormal_events()
            reserve_nodes = dscg.nodes_for_function("PPS::ResourceManager", "reserve")
            assert len(reserve_nodes) == 1  # the failed reservation
        finally:
            pps.shutdown()
