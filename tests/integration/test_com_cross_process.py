"""Integration: COM calls across simulated process boundaries.

The paper's commercial system is COM-based, "partitioned into 32 threads
in a single-processor 4 processes configuration" — causality must follow
ORPC calls between COM runtimes in different processes exactly as it
follows same-process cross-apartment calls.
"""

from repro.analysis import CpuAnalysis, reconstruct_from_records
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

IStage = ComInterface("IStage", ("process_item",))


def build_pipeline(stage_count=3, mode=MonitorMode.CPU):
    clock = VirtualClock()
    host = Host("h", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("cc")
    processes = []
    runtimes = []
    for index in range(stage_count):
        process = SimProcess(f"comproc{index}", host)
        MonitoringRuntime(process, MonitorConfig(mode=mode, uuid_factory=uuid_factory))
        runtimes.append(ComRuntime(process))
        processes.append(process)

    class Stage(ComObject):
        implements = (IStage,)

        def __init__(self, downstream_proxy, cost_ns):
            super().__init__()
            self.downstream_proxy = downstream_proxy
            self.cost_ns = cost_ns

        def process_item(self, item):
            clock.consume(self.cost_ns)
            if self.downstream_proxy is not None:
                return self.downstream_proxy.process_item(item + 1)
            return item

    # Build back to front so each stage holds a proxy to the next.
    downstream = None
    identities = []
    for index in reversed(range(stage_count)):
        runtime = runtimes[index]
        sta = runtime.create_sta(f"s{index}")
        identity = runtime.create_object(Stage, sta, downstream, (index + 1) * 100)
        identities.append(identity)
        # The proxy used by the *upstream* stage must belong to the
        # upstream runtime (a different process).
        upstream_runtime = runtimes[index - 1] if index > 0 else runtimes[0]
        downstream = upstream_runtime.proxy_for(identity, IStage)
    front = runtimes[0].proxy_for(identities[-1], IStage)
    return clock, processes, front


class TestCrossProcessCom:
    def test_chain_crosses_processes(self):
        clock, processes, front = build_pipeline()
        try:
            assert front.process_item(0) == 2
            records = []
            for process in processes:
                records.extend(process.log_buffer.drain())
            dscg = reconstruct_from_records(records)
            assert len(dscg.chains) == 1
            assert not dscg.abnormal_events()
            (tree,) = dscg.chains.values()
            chain_processes = [node.server_process for node in tree.walk()]
            assert chain_processes == ["comproc0", "comproc1", "comproc2"]
        finally:
            for process in processes:
                process.shutdown()

    def test_cpu_propagates_across_processes(self):
        clock, processes, front = build_pipeline(mode=MonitorMode.CPU)
        try:
            front.process_item(0)
            records = []
            for process in processes:
                records.extend(process.log_buffer.drain())
            dscg = reconstruct_from_records(records)
            cpu = CpuAnalysis(dscg)
            (tree,) = dscg.chains.values()
            root = tree.roots[0]
            # stage costs: 100 + 200 + 300
            assert cpu.inclusive_cpu(root).total_ns() == 600
            assert cpu.self_cpu(root) == 100
            assert cpu.descendant_cpu(root).total_ns() == 500
        finally:
            for process in processes:
                process.shutdown()

    def test_records_attributed_to_owning_process(self):
        clock, processes, front = build_pipeline()
        try:
            front.process_item(0)
            for process in processes:
                for record in process.log_buffer.snapshot():
                    assert record.process == process.name
        finally:
            for process in processes:
                process.shutdown()
