"""Integration: causality capture through the J2EE container.

The same guarantees the CORBA/COM paths give must hold for the third
infrastructure: one chain per client flow, clean Figure-4 reconstruction,
correct latency/CPU accounting, pooled instances refreshing FTLs (O2).
"""

import threading

import pytest

from repro.analysis import (
    CpuAnalysis,
    latency_report,
    reconstruct_from_records,
)
from repro.core import (
    Domain,
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.j2ee import Container, Jndi, stateless, stateful
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock


@pytest.fixture
def env():
    clock = VirtualClock()
    host = Host("h", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("b7")
    processes = []

    def proc(name):
        process = SimProcess(name, host)
        MonitoringRuntime(
            process, MonitorConfig(mode=MonitorMode.CPU, uuid_factory=uuid_factory)
        )
        processes.append(process)
        return process

    yield clock, proc, processes
    for process in processes:
        process.shutdown()


class TestJ2eeTracing:
    def test_nested_beans_one_chain(self, env):
        clock, proc, processes = env
        front_process = proc("front")
        back_process = proc("back")
        front = Container(front_process, "front")
        back = Container(back_process, "back")
        jndi = Jndi()

        @stateless
        class Inner:
            def leaf(self, n):
                clock.consume(300)
                return n * 2

        @stateless
        class Outer:
            def entry(self, n):
                clock.consume(100)
                return jndi.lookup("inner", front_process).leaf(n) + 1

        jndi.bind("inner", back, back.deploy(Inner))
        jndi.bind("outer", front, front.deploy(Outer))

        driver = proc("driver")
        outer = jndi.lookup("outer", driver)
        assert outer.entry(5) == 11

        records = []
        for process in processes:
            records.extend(process.log_buffer.snapshot())
        dscg = reconstruct_from_records(records)
        assert len(dscg.chains) == 1
        assert not dscg.abnormal_events()
        (tree,) = dscg.chains.values()
        top = tree.roots[0]
        assert top.domain is Domain.J2EE
        assert top.function == "Outer::entry"
        assert top.children[0].function == "Inner::leaf"
        cpu = CpuAnalysis(dscg)
        assert cpu.self_cpu(top) == 100
        assert cpu.inclusive_cpu(top).total_ns() == 400

    def test_latency_accounting(self, env):
        clock, proc, processes = env
        process = proc("svc")
        container = Container(process, "svc")
        jndi = Jndi()

        @stateless
        class Slow:
            def wait_then_work(self):
                clock.consume(250)
                clock.idle(750)
                return True

        jndi.bind("slow", container, container.deploy(Slow))
        driver = proc("driver")
        # latency mode run
        for p in processes:
            p.monitor.config.mode = MonitorMode.LATENCY
        assert jndi.lookup("slow", driver).wait_then_work()
        records = []
        for p in processes:
            records.extend(p.log_buffer.snapshot())
        report = latency_report(reconstruct_from_records(records))
        assert report["Slow::wait_then_work"].mean_ns == 1_000  # cpu + idle

    def test_pooled_workers_refresh_ftls(self, env):
        clock, proc, processes = env
        process = proc("svc")
        container = Container(process, "svc", worker_threads=1)

        @stateless
        class Echo:
            def ping(self, n):
                return n

        jndi = Jndi()
        jndi.bind("echo", container, container.deploy(Echo))

        # Three independent client threads through ONE container worker:
        # the recycled worker's stale FTL must be refreshed per call (O2).
        results = []
        clients = []
        for index in range(3):
            client = proc(f"client{index}")
            proxy = jndi.lookup("echo", client)
            clients.append(
                threading.Thread(target=lambda p=proxy, i=index: results.append(p.ping(i)))
            )
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        assert sorted(results) == [0, 1, 2]

        records = []
        for p in processes:
            records.extend(p.log_buffer.snapshot())
        dscg = reconstruct_from_records(records)
        assert len(dscg.chains) == 3
        assert not dscg.abnormal_events()
        server_threads = {
            node.server_thread for node in dscg.walk() if node.server_thread
        }
        assert len(server_threads) == 1  # one recycled worker served all
