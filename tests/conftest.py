"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock


class Cluster:
    """A small instrumented deployment helper for tests."""

    def __init__(self, mode: MonitorMode = MonitorMode.LATENCY):
        self.clock = VirtualClock()
        self.network = Network()
        self.uuid_factory = SequentialUuidFactory()
        self.mode = mode
        self.hosts: dict[str, Host] = {}
        self.processes: list[SimProcess] = []

    def host(self, name: str = "host0", platform: PlatformKind = PlatformKind.HPUX_11,
             **kwargs) -> Host:
        if name not in self.hosts:
            self.hosts[name] = Host(name, platform, clock=self.clock, **kwargs)
        return self.hosts[name]

    def process(
        self,
        name: str,
        host: Host | None = None,
        mode: MonitorMode | None = None,
        monitored: bool = True,
    ) -> SimProcess:
        process = SimProcess(name, host or self.host())
        if monitored:
            MonitoringRuntime(
                process,
                MonitorConfig(
                    mode=mode or self.mode, uuid_factory=self.uuid_factory
                ),
            )
        self.processes.append(process)
        return process

    def all_records(self):
        records = []
        for process in self.processes:
            records.extend(process.log_buffer.snapshot())
        records.sort(key=lambda r: (r.chain_uuid, r.event_seq))
        return records

    def shutdown(self):
        for process in self.processes:
            process.shutdown()


@pytest.fixture
def cluster():
    c = Cluster()
    yield c
    c.shutdown()


@pytest.fixture
def cpu_cluster():
    c = Cluster(mode=MonitorMode.CPU)
    yield c
    c.shutdown()
