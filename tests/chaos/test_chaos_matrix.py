"""The seeded chaos matrix, driven by the declarative suite runner.

The matrix itself now lives in ``suites/chaos.yaml``: every fault domain
x every CORBA call style (plus a gentler three-tier/PPS grid), each cell
a real workload under a seeded :class:`FaultPlan`, collected through the
resilient collector and reconstructed offline. The runner evaluates the
``deterministic_accounting`` invariant per cell — the scenario is
re-executed with the same derived seed and the canonical accounting dict
must match exactly, the determinism contract that makes chaotic failures
replayable from their seed — and ``loss_accounting`` balances every
injected loss against what the collection metadata reports.

These tests hold the suite green and keep the matrix honest: every
registered fault kind must actually fire somewhere, and different suite
seeds must produce different fault placements.

Set ``CHAOS_ACCOUNTING_OUT=<path>`` to append each scenario's accounting
as JSON lines (CI diffs the files of two consecutive full runs).
"""

import json
import os
from pathlib import Path

import pytest

from repro.scenarios import expand_grid, load_suite, run_scenario, run_suite

SUITE_PATH = Path(__file__).resolve().parents[2] / "suites" / "chaos.yaml"

#: Every fault kind the matrix must exercise at least once.
EXPECTED_FAULT_KINDS = {
    "drop",
    "duplicate",
    "reorder",
    "reset",
    "crash",
    "record_loss",
    "collect_fail",
}


@pytest.fixture(scope="module")
def suite_config():
    return load_suite(str(SUITE_PATH))


@pytest.fixture(scope="module")
def suite_report(suite_config):
    report = run_suite(suite_config, workers=4)
    _dump_report(report)
    return report


def _scenario_ids():
    return [spec.scenario_id for spec in expand_grid(load_suite(str(SUITE_PATH)))]


def test_grid_is_a_real_matrix(suite_config):
    """The committed grid covers the full style x fault-domain product."""
    scenarios = expand_grid(suite_config)
    assert len(scenarios) >= 12
    corba = [s for s in scenarios if s.grid == "corba-matrix"]
    styles = {s.workload.params["style"] for s in corba}
    faults = {s.fault.name for s in corba}
    assert styles == {"sync", "oneway", "collocated"}
    assert {"drop", "duplicate", "reorder", "reset", "crash"} <= faults


@pytest.mark.parametrize("scenario_id", _scenario_ids())
def test_matrix_cell_passes_invariants(suite_report, scenario_id):
    (outcome,) = [o for o in suite_report.outcomes if o.scenario_id == scenario_id]
    failed = [r.name for r in outcome.invariants if not r.passed]
    assert outcome.passed, f"{scenario_id}: failed invariants {failed}"
    names = {r.name for r in outcome.invariants}
    # The determinism gate (run twice, identical accounting) is an
    # invariant on every chaos cell, not a separate test loop.
    assert {"deterministic_accounting", "loss_accounting"} <= names


def test_matrix_actually_injects_faults(suite_report):
    """Sanity: across the matrix, every fault kind fired at least once."""
    seen = set()
    for outcome in suite_report.outcomes:
        seen.update(outcome.accounting["faults"]["by_kind"])
    assert EXPECTED_FAULT_KINDS <= seen


def test_crash_domain_salvages_partial_chains(suite_report):
    """Crash cells still reconstruct: the analyzer reports partial chains
    rather than losing the capture."""
    crashed = [
        o
        for o in suite_report.outcomes
        if o.axes["fault"] == "crash" and o.accounting["faults"]["by_kind"].get("crash")
    ]
    assert crashed
    assert any(o.accounting["capture"]["partial_chains"] >= 1 for o in crashed)


def test_different_seeds_differ(suite_config):
    """Re-deriving the suite under another seed moves the fault sites."""
    spec_a = expand_grid(suite_config)[0]
    spec_b = expand_grid(suite_config, seed=9999)[0]
    assert spec_a.scenario_id == spec_b.scenario_id
    assert spec_a.seed != spec_b.seed
    outcome_a = run_scenario(spec_a)
    outcome_b = run_scenario(spec_b)
    assert (
        outcome_a.accounting["faults"]["by_site"]
        != outcome_b.accounting["faults"]["by_site"]
    )


def test_report_is_seed_reproducible(suite_config):
    """One scenario, re-run from the suite file alone, matches the full
    suite run byte for byte — cells are independent of pool context."""
    spec = expand_grid(suite_config)[5]
    solo = run_scenario(spec)
    full = run_suite(suite_config, workers=4, only=spec.scenario_id)
    (pooled,) = full.outcomes
    assert json.dumps(solo.to_dict(), sort_keys=True) == json.dumps(
        pooled.to_dict(), sort_keys=True
    )


# ----------------------------------------------------------------------


def _dump_report(report) -> None:
    """Append per-scenario accounting for the CI determinism diff."""
    out = os.environ.get("CHAOS_ACCOUNTING_OUT")
    if not out:
        return
    with open(out, "a") as handle:
        for outcome in report.outcomes:
            handle.write(
                json.dumps(
                    {
                        "scenario": outcome.scenario_id,
                        "accounting": outcome.accounting,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
