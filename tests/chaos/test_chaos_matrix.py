"""The seeded chaos matrix: every fault domain x every call style, twice.

Each scenario runs a real workload (two-process CORBA, a three-domain
chain, the PPS pipeline) under a seeded :class:`FaultPlan`, collects
through the resilient collector, reconstructs offline, and produces one
canonical accounting dict (per-call outcomes, injected faults, capture
completeness, collection loss). Every scenario is executed twice with
the same seed and the accounting must match exactly — the determinism
contract that makes chaotic failures replayable from their seed.

Set ``CHAOS_ACCOUNTING_OUT=<path>`` to append each scenario's accounting
as JSON lines (CI diffs the files of two consecutive full runs).
"""

import json
import os
import time

import pytest

from repro.analysis import loss_report, reconstruct
from repro.collector import LogCollector, MonitoringDatabase
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb, ThreadPerConnection
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

IDL = """
module CH {
  interface Svc {
    long ping(in long x);
    oneway void notify(in long x);
  };
};
"""

#: fault domain -> FaultPlan keyword arguments (rates tuned so every
#: scenario injects something without drowning the workload).
FAULT_DOMAINS = {
    "drop": {"rates": {FaultKind.DROP: 0.25}},
    "duplicate": {"rates": {FaultKind.DUPLICATE: 0.3}},
    "reorder": {"rates": {FaultKind.REORDER: 0.3}},
    "reset": {"rates": {FaultKind.RESET: 0.15}},
    "crash": {},  # crash_calls filled per call style
}

CALL_STYLES = ("sync", "oneway", "collocated")

_SEEDS = {"sync": 101, "oneway": 202, "collocated": 303}


def _quiesce(processes, settle=3, interval=0.002, timeout=2.0):
    deadline = time.monotonic() + timeout
    last, stable = -1, 0
    while time.monotonic() < deadline:
        size = sum(len(p.log_buffer) for p in processes)
        if size == last:
            stable += 1
            if stable >= settle:
                return
        else:
            stable, last = 0, size
        time.sleep(interval)


def _accounting(injector, processes, errors, results):
    """One canonical dict: what happened, what was injected, what was lost."""
    collector = LogCollector(MonitoringDatabase(), retries=2, backoff_s=0.0)
    collector.collect(processes, run_id="chaos", description="chaos")
    dscg = reconstruct(collector.database, "chaos")
    (meta,) = collector.database.runs()
    # summary() comes after collect(): record-loss and drain-failure
    # faults are injected during the drain itself.
    return {
        "client_errors": errors,
        "results": results,
        "faults": injector.summary(),
        "capture": loss_report(dscg).to_dict(),
        "stats": dscg.stats(),
        "collection": meta.extra["loss"],
    }


def run_corba_scenario(style: str, fault: str, seed: int) -> dict:
    """Two-process CORBA workload under one fault domain; returns accounting."""
    plan_kwargs = dict(FAULT_DOMAINS[fault])
    if fault == "crash":
        plan_kwargs["crash_calls"] = (
            {"CH::Svc::notify": 2} if style == "oneway" else {"CH::Svc::ping": 3}
        )
    plan = FaultPlan(
        seed=seed, record_loss_rate=0.05, collect_fail_attempts=1, **plan_kwargs
    )
    injector = FaultInjector(plan)
    network = injector.network()
    clock = VirtualClock()
    host = Host("chaos-host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("fa")
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)

    def make_process(name):
        process = SimProcess(name, host)
        MonitoringRuntime(
            process,
            MonitorConfig(mode=MonitorMode.LATENCY, uuid_factory=uuid_factory),
        )
        return process

    class SvcImpl(compiled.Svc):
        def ping(self, x):
            clock.consume(300)
            return x * 2

        def notify(self, x):
            clock.consume(200)

    server = make_process("server")
    server_orb = Orb(
        server,
        network,
        policy=ThreadPerConnection(),
        registry=registry,
        request_timeout=0.1,
    )
    ref = server_orb.activate(SvcImpl())
    if style == "collocated":
        client = server
        stub = server_orb.resolve(ref)
        processes = [server]
    else:
        client = make_process("client")
        client_orb = Orb(
            client, network, registry=registry, request_timeout=0.1
        )
        stub = client_orb.resolve(ref)
        processes = [client, server]
    injector.arm_crashes(server)

    errors = 0
    results = []
    try:
        for i in range(8):
            try:
                if style == "oneway":
                    stub.notify(i)
                    results.append("sent")
                    # Oneway dispatch is asynchronous: settle before the
                    # next send so crash-triggered connection teardown
                    # cannot race it (determinism, not correctness).
                    _quiesce(processes)
                else:
                    results.append(stub.ping(i))
            except BaseException as exc:  # ComponentCrash included
                errors += 1
                results.append(type(exc).__name__)
            finally:
                if client.monitor is not None:
                    client.monitor.unbind_ftl()
        _quiesce(processes)
        for process in processes:
            injector.lossy_delivery(process)
        return _accounting(injector, processes, errors, results)
    finally:
        for process in processes:
            process.shutdown()


@pytest.mark.parametrize("fault", sorted(FAULT_DOMAINS))
@pytest.mark.parametrize("style", CALL_STYLES)
def test_matrix_cell_is_deterministic(style, fault):
    seed = _SEEDS[style]
    first = run_corba_scenario(style, fault, seed)
    second = run_corba_scenario(style, fault, seed)
    assert first == second, f"{style} x {fault}: accounting diverged between runs"
    _dump(f"corba:{style}:{fault}", first)


def test_matrix_actually_injects_faults():
    """Sanity: across the matrix, every fault domain fired at least once."""
    seen = set()
    for style in CALL_STYLES:
        for fault in sorted(FAULT_DOMAINS):
            accounting = run_corba_scenario(style, fault, _SEEDS[style])
            seen.update(accounting["faults"]["by_kind"])
    assert {"drop", "duplicate", "reorder", "reset", "crash", "record_loss",
            "collect_fail"} <= seen


def test_different_seeds_differ():
    a = run_corba_scenario("sync", "drop", 101)
    b = run_corba_scenario("sync", "drop", 9999)
    assert a["faults"]["by_site"] != b["faults"]["by_site"]


# ----------------------------------------------------------------------
# Three-domain chain under faults


def run_three_domain_scenario(seed: int) -> dict:
    from repro.com import ComInterface, ComObject, ComRuntime
    from repro.j2ee import Container, Jndi, stateless

    plan = FaultPlan(
        seed=seed,
        rates={FaultKind.DROP: 0.12},
        record_loss_rate=0.05,
        crash_calls={"IMiddle::relay": 3},
    )
    injector = FaultInjector(plan)
    network = injector.network()
    clock = VirtualClock()
    host = Host("chaos-host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("3d")
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL_GATEWAY, instrument=True, registry=registry)
    IMiddle = ComInterface("IMiddle", ("relay",))

    def make_process(name):
        process = SimProcess(name, host)
        MonitoringRuntime(
            process,
            MonitorConfig(mode=MonitorMode.LATENCY, uuid_factory=uuid_factory),
        )
        return process

    front = make_process("front")
    middle = make_process("middle")
    back = make_process("back")
    driver = make_process("driver")
    processes = [front, middle, back, driver]

    front_orb = Orb(
        front,
        network,
        policy=ThreadPerConnection(),
        registry=registry,
        request_timeout=0.1,
    )
    client_orb = Orb(driver, network, registry=registry, request_timeout=0.1)
    com_runtime = ComRuntime(middle)
    front_com = ComRuntime(front)
    container = Container(back, "backend")
    jndi = Jndi()

    @stateless
    class TaxService:
        def compute(self, amount):
            clock.consume(400)
            return amount * 2

    jndi.bind("tax", container, container.deploy(TaxService))

    class MiddleObj(ComObject):
        implements = (IMiddle,)

        def relay(self, amount):
            clock.consume(200)
            return jndi.lookup("tax", middle).compute(amount) + 1

    sta = com_runtime.create_sta("m")
    middle_identity = com_runtime.create_object(MiddleObj, sta)
    injector.arm_crashes(middle)

    class GatewayImpl(compiled.Gateway):
        def handle(self, request):
            clock.consume(100)
            proxy = front_com.proxy_for(middle_identity, IMiddle)
            return proxy.relay(request) + 1

    gateway_ref = front_orb.activate(GatewayImpl())
    stub = client_orb.resolve(gateway_ref)

    errors = 0
    results = []
    try:
        for i in range(6):
            try:
                results.append(stub.handle(i))
            except BaseException as exc:
                errors += 1
                results.append(type(exc).__name__)
            finally:
                if driver.monitor is not None:
                    driver.monitor.unbind_ftl()
        _quiesce(processes)
        for process in processes:
            injector.lossy_delivery(process)
        return _accounting(injector, processes, errors, results)
    finally:
        for process in processes:
            process.shutdown()


IDL_GATEWAY = """
module TD {
  interface Gateway {
    long handle(in long request);
  };
};
"""


def test_three_domain_chain_is_deterministic():
    first = run_three_domain_scenario(seed=77)
    second = run_three_domain_scenario(seed=77)
    assert first == second
    # The crash fired inside the COM domain and the analyzer salvaged.
    assert first["faults"]["by_kind"].get("crash") == 1
    assert first["capture"]["partial_chains"] >= 1
    _dump("three-domain", first)


# ----------------------------------------------------------------------
# PPS pipeline under faults


def run_pps_scenario(seed: int) -> dict:
    from repro.apps.pps import PpsSystem, four_process_deployment

    plan = FaultPlan(
        seed=seed,
        rates={FaultKind.DROP: 0.04},
        record_loss_rate=0.04,
        collect_fail_attempts=1,
        crash_calls={"PPS::Halftone::halftone": 3},
    )
    injector = FaultInjector(plan)
    pps = PpsSystem(
        four_process_deployment(),
        mode=MonitorMode.LATENCY,
        network=injector.network(),
        request_timeout=0.1,
        policy_factory=ThreadPerConnection,
    )
    for process in pps.processes.values():
        injector.arm_crashes(process)
    errors = 0
    results = []
    try:
        for job in range(3):
            try:
                pps.run(njobs=1, pages=2, complexity=1)
                results.append("ok")
            except BaseException as exc:
                errors += 1
                results.append(type(exc).__name__)
        pps.quiesce()
        processes = list(pps.processes.values())
        for process in processes:
            injector.lossy_delivery(process)
        return _accounting(injector, processes, errors, results)
    finally:
        pps.shutdown()


def test_pps_pipeline_is_deterministic():
    first = run_pps_scenario(seed=55)
    second = run_pps_scenario(seed=55)
    assert first == second
    assert first["faults"]["total"] > 0
    _dump("pps", first)


# ----------------------------------------------------------------------


def _dump(name: str, accounting: dict) -> None:
    """Append one scenario's accounting for the CI determinism diff."""
    out = os.environ.get("CHAOS_ACCOUNTING_OUT")
    if not out:
        return
    with open(out, "a") as handle:
        handle.write(
            json.dumps({"scenario": name, "accounting": accounting}, sort_keys=True)
            + "\n"
        )
