"""Test helpers: a single-thread chain simulator driving the real probes.

Analysis tests need precise, hand-crafted call trees. Rather than faking
ProbeRecord objects (and risking divergence from what the runtime really
emits), this simulator drives the actual :class:`MonitoringRuntime` probe
entry points on a virtual clock, producing exactly the records an
instrumented deployment would.

All calls run on the invoking thread (the collocated/monolithic shape);
CPU self-accounting is still exercised fully because the SC formula
subtracts child call windows taken on the caller's thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    OperationInfo,
    SequentialUuidFactory,
)
from repro.platform import Host, PlatformKind, ProcessorType, SimProcess, VirtualClock


@dataclass
class Call:
    """One scripted invocation."""

    name: str  # "Iface::op"
    cpu_ns: int = 0
    idle_ns: int = 0
    children: tuple = ()
    oneway: bool = False
    collocated: bool = False
    object_id: str = "obj-1"
    component: str = "Comp"

    @property
    def interface(self) -> str:
        return self.name.rsplit("::", 1)[0] if "::" in self.name else "I"

    @property
    def operation(self) -> str:
        return self.name.rsplit("::", 1)[-1]


@dataclass
class Simulation:
    """The simulator plus everything tests usually need afterwards."""

    runtime: MonitoringRuntime
    process: SimProcess
    clock: VirtualClock
    records: list = field(default_factory=list)

    def finish(self):
        self.records = self.process.log_buffer.snapshot()
        return self.records


def simulate(
    top_calls: list[Call],
    mode: MonitorMode = MonitorMode.FULL,
    platform: PlatformKind = PlatformKind.HPUX_11,
    fresh_chain_per_top_call: bool = False,
    uuid_prefix: str = "51",
) -> Simulation:
    """Run scripted calls through the real probes; return the simulation."""
    clock = VirtualClock()
    host = Host("sim-host", platform, ProcessorType.PA_RISC, clock=clock)
    process = SimProcess("sim", host)
    runtime = MonitoringRuntime(
        process,
        MonitorConfig(mode=mode, uuid_factory=SequentialUuidFactory(uuid_prefix)),
    )
    sim = Simulation(runtime=runtime, process=process, clock=clock)
    for call in top_calls:
        _run_call(sim, call)
        if fresh_chain_per_top_call:
            runtime.unbind_ftl()
    sim.finish()
    return sim


def _op(call: Call) -> OperationInfo:
    return OperationInfo(call.interface, call.operation, call.object_id, call.component)


def _run_call(sim: Simulation, call: Call) -> None:
    runtime, clock = sim.runtime, sim.clock
    op = _op(call)
    if call.oneway:
        ctx = runtime.stub_start(op, oneway=True)
        runtime.stub_end(ctx, None)
        # Oneway calls are always cross-thread (Section 2.2): dispatch the
        # forked chain on its own thread so per-thread CPU accounting
        # behaves as in a real deployment. Joining keeps records ordered.
        import threading

        def callee_side():
            skel_ctx = runtime.skel_start(op, ctx.request_ftl_payload, oneway=True)
            _run_body(sim, call)
            runtime.skel_end(skel_ctx)

        worker = threading.Thread(target=callee_side)
        worker.start()
        worker.join()
        return
    if call.collocated:
        stub_ctx, skel_ctx = runtime.collocated_call_start(op)
        _run_body(sim, call)
        runtime.collocated_call_end(stub_ctx, skel_ctx)
        return
    ctx = runtime.stub_start(op)
    skel_ctx = runtime.skel_start(op, ctx.request_ftl_payload)
    _run_body(sim, call)
    reply = runtime.skel_end(skel_ctx)
    runtime.stub_end(ctx, reply)


def _run_body(sim: Simulation, call: Call) -> None:
    if call.cpu_ns:
        sim.clock.consume(call.cpu_ns)
    if call.idle_ns:
        sim.clock.idle(call.idle_ns)
    for child in call.children:
        _run_call(sim, child)
