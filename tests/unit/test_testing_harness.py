"""Unit tests for replay-harness generation (future-work extension)."""

from repro.analysis import reconstruct_from_records
from repro.core import MonitorMode, TracingEvent
from repro.testing_harness import (
    ReplayRunner,
    compare_structures,
    derive_plan,
    render_harness_script,
)
from tests.helpers import Call, simulate


def recorded_dscg(mode=MonitorMode.SEMANTICS):
    sim = simulate(
        [
            Call("Shop::Catalog::add", cpu_ns=10, children=(
                Call("Shop::Audit::log", cpu_ns=5),
            )),
            Call("Shop::Catalog::lookup", cpu_ns=10),
        ],
        mode=mode,
        fresh_chain_per_top_call=True,
    )
    return reconstruct_from_records(sim.records), sim.records


class TestDerivePlan:
    def test_roots_and_structure(self):
        dscg, _ = recorded_dscg()
        plan = derive_plan(dscg)
        assert [r.operation for r in plan.roots] == ["add", "lookup"]
        assert plan.total_calls == 3
        assert plan.roots[0].children[0].operation == "log"

    def test_signatures_capture_nesting(self):
        dscg, _ = recorded_dscg()
        signatures = derive_plan(dscg).signatures()
        add_signature = signatures[0]
        assert add_signature[0] == "Shop::Catalog::add"
        assert add_signature[2][0][0] == "Shop::Audit::log"

    def test_args_from_semantics(self):
        dscg, records = recorded_dscg()
        # inject recorded args on the root's stub_start
        for record in records:
            if record.event is TracingEvent.STUB_START and record.operation == "add":
                record.semantics = {"args": ["42", "'toner'"]}
        dscg = reconstruct_from_records(records)
        plan = derive_plan(dscg)
        assert plan.roots[0].args_repr == ["42", "'toner'"]


class TestRenderScript:
    def test_script_shape(self):
        dscg, _ = recorded_dscg()
        script = render_harness_script(derive_plan(dscg))
        assert "EXPECTED_TOTAL_CALLS = 3" in script
        assert "def drive(resolve_stub):" in script
        assert ".add(" in script and ".lookup(" in script
        assert "TODO" in script  # args were not recorded
        compile(script, "<harness>", "exec")  # must be valid Python

    def test_script_with_args_has_no_todo(self):
        dscg, records = recorded_dscg()
        for record in records:
            if record.event is TracingEvent.STUB_START:
                record.semantics = {"args": ["1"]}
        dscg = reconstruct_from_records(records)
        script = render_harness_script(derive_plan(dscg))
        assert "TODO" not in script


class TestReplay:
    def test_replay_and_compare_identical(self):
        dscg, _ = recorded_dscg()
        plan = derive_plan(dscg)

        calls = []

        class FakeStub:
            def __init__(self, object_id):
                self.object_id = object_id

            def __getattr__(self, name):
                def call(*args):
                    calls.append((self.object_id, name, args))

                return call

        runner = ReplayRunner(resolve_stub=FakeStub)
        assert runner.run(plan) == 2
        assert [c[1] for c in calls] == ["add", "lookup"]

    def test_compare_structures_equal(self):
        dscg, _ = recorded_dscg()
        assert compare_structures(dscg, dscg) == []

    def test_compare_structures_detects_drift(self):
        dscg1, _ = recorded_dscg()
        sim = simulate([Call("Shop::Catalog::add", cpu_ns=1)], mode=MonitorMode.CAUSALITY)
        dscg2 = reconstruct_from_records(sim.records)
        differences = compare_structures(dscg1, dscg2)
        assert differences
        assert any("missing in replay" in d for d in differences)
