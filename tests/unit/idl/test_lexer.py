"""Unit tests for the IDL lexer."""

import pytest

from repro.errors import IdlSyntaxError
from repro.idl.lexer import TokenKind, tokenize


def kinds_and_values(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_vs_identifiers(self):
        result = kinds_and_values("interface Foo")
        assert result == [(TokenKind.KEYWORD, "interface"), (TokenKind.IDENT, "Foo")]

    def test_punctuation(self):
        result = kinds_and_values("{ } ( ) < > , ; = [ ]")
        assert all(kind is TokenKind.PUNCT for kind, _ in result)

    def test_scope_operator_is_one_token(self):
        result = kinds_and_values("A::B")
        assert result == [
            (TokenKind.IDENT, "A"),
            (TokenKind.PUNCT, "::"),
            (TokenKind.IDENT, "B"),
        ]

    def test_single_colon_distinct_from_double(self):
        result = kinds_and_values("A : B")
        assert (TokenKind.PUNCT, ":") in result

    def test_line_and_column_tracking(self):
        tokens = tokenize("module\n  Foo")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestNumbers:
    def test_integer(self):
        assert kinds_and_values("42") == [(TokenKind.NUMBER, "42")]

    def test_float(self):
        assert kinds_and_values("3.14") == [(TokenKind.NUMBER, "3.14")]

    def test_scientific(self):
        assert kinds_and_values("1e5")[0][1] == "1e5"
        assert kinds_and_values("2.5E-3")[0][1] == "2.5E-3"

    def test_hex(self):
        assert kinds_and_values("0xFF") == [(TokenKind.NUMBER, "0xFF")]


class TestStrings:
    def test_simple_string(self):
        assert kinds_and_values('"hello"') == [(TokenKind.STRING, "hello")]

    def test_escapes(self):
        assert kinds_and_values(r'"a\nb\"c"') == [(TokenKind.STRING, 'a\nb"c')]

    def test_unterminated_string_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize('"open')


class TestTrivia:
    def test_line_comment_skipped(self):
        assert kinds_and_values("// a comment\nmodule") == [(TokenKind.KEYWORD, "module")]

    def test_block_comment_skipped(self):
        assert kinds_and_values("/* multi\nline */ module") == [
            (TokenKind.KEYWORD, "module")
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("/* never closed")

    def test_preprocessor_line_skipped(self):
        assert kinds_and_values('#include "foo.idl"\nmodule') == [
            (TokenKind.KEYWORD, "module")
        ]

    def test_unexpected_character(self):
        with pytest.raises(IdlSyntaxError):
            tokenize("interface $bad")
