"""Unit tests for the runtime type model and its CDR marshalling."""

import enum

import pytest

from repro.errors import MarshalError
from repro.idl.types import (
    BOOLEAN,
    CHAR,
    DOUBLE,
    FLOAT,
    LONG,
    LONGLONG,
    OCTET,
    SHORT,
    STRING,
    ULONG,
    EnumType,
    ObjectRefType,
    SequenceType,
    StructType,
    marshal_value,
    unmarshal_value,
)
from repro.orb.refs import ObjectRef


def roundtrip(idl_type, value):
    return unmarshal_value(idl_type, marshal_value(idl_type, value))


class TestPrimitives:
    @pytest.mark.parametrize(
        "idl_type,value",
        [
            (LONG, 0),
            (LONG, -(2**31)),
            (LONG, 2**31 - 1),
            (ULONG, 2**32 - 1),
            (LONGLONG, -(2**63)),
            (SHORT, -32768),
            (OCTET, 255),
            (BOOLEAN, True),
            (BOOLEAN, False),
            (CHAR, "A"),
            (DOUBLE, 3.141592653589793),
        ],
    )
    def test_roundtrip(self, idl_type, value):
        assert roundtrip(idl_type, value) == value

    def test_float_precision(self):
        assert roundtrip(FLOAT, 0.5) == 0.5  # representable in binary32

    def test_long_overflow_raises(self):
        with pytest.raises(MarshalError):
            marshal_value(LONG, 2**31)

    def test_type_mismatch_raises(self):
        with pytest.raises(MarshalError):
            marshal_value(LONG, "nope")
        with pytest.raises(MarshalError):
            marshal_value(DOUBLE, "nope")
        with pytest.raises(MarshalError):
            marshal_value(CHAR, "too long")

    def test_bool_not_accepted_as_long(self):
        with pytest.raises(MarshalError):
            marshal_value(LONG, True)

    def test_defaults(self):
        assert LONG.default() == 0
        assert BOOLEAN.default() is False
        assert STRING.default() == ""


class TestStrings:
    def test_roundtrip(self):
        assert roundtrip(STRING, "hello world") == "hello world"

    def test_empty(self):
        assert roundtrip(STRING, "") == ""

    def test_unicode(self):
        assert roundtrip(STRING, "héllo ∑") == "héllo ∑"

    def test_non_string_raises(self):
        with pytest.raises(MarshalError):
            marshal_value(STRING, 42)


class TestSequences:
    def test_roundtrip(self):
        seq = SequenceType(LONG)
        assert roundtrip(seq, [1, 2, 3]) == [1, 2, 3]

    def test_empty(self):
        assert roundtrip(SequenceType(STRING), []) == []

    def test_nested(self):
        seq = SequenceType(SequenceType(LONG))
        assert roundtrip(seq, [[1], [2, 3]]) == [[1], [2, 3]]

    def test_non_list_raises(self):
        with pytest.raises(MarshalError):
            marshal_value(SequenceType(LONG), "abc")

    def test_element_type_checked(self):
        with pytest.raises(MarshalError):
            marshal_value(SequenceType(LONG), [1, "two"])


class _Color(enum.Enum):
    RED = 0
    GREEN = 1


class TestEnums:
    def make(self):
        return EnumType("Color", ["RED", "GREEN"], _Color)

    def test_roundtrip(self):
        assert roundtrip(self.make(), _Color.GREEN) is _Color.GREEN

    def test_accepts_label_string(self):
        enum_type = self.make()
        assert unmarshal_value(enum_type, marshal_value(enum_type, "RED")) is _Color.RED

    def test_accepts_index(self):
        enum_type = self.make()
        assert unmarshal_value(enum_type, marshal_value(enum_type, 1)) is _Color.GREEN

    def test_bad_value_raises(self):
        with pytest.raises(MarshalError):
            marshal_value(self.make(), "PURPLE")

    def test_default_is_first_label(self):
        assert self.make().default() is _Color.RED


class _Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def __eq__(self, other):
        return (self.x, self.y) == (other.x, other.y)


class TestStructs:
    def make(self):
        return StructType("Point", [("x", LONG), ("y", LONG)], _Point)

    def test_roundtrip(self):
        assert roundtrip(self.make(), _Point(3, -4)) == _Point(3, -4)

    def test_missing_field_raises(self):
        class Partial:
            x = 1

        with pytest.raises(MarshalError):
            marshal_value(self.make(), Partial())

    def test_default_builds_instance(self):
        assert self.make().default() == _Point(0, 0)


class TestObjectRefs:
    def test_roundtrip_as_ref(self):
        ref_type = ObjectRefType("Mod::Iface")
        ref = ObjectRef("proc1", "obj-1", "Mod::Iface", "Comp")
        restored = roundtrip(ref_type, ref)
        assert restored == ref

    def test_nil_reference(self):
        ref_type = ObjectRefType("Mod::Iface")
        assert roundtrip(ref_type, None) is None

    def test_unmarshallable_value_raises(self):
        with pytest.raises(MarshalError):
            marshal_value(ObjectRefType("I"), object())
