"""Unit tests for the IDL code generator (both back-ends)."""

from repro.idl import compile_idl, parse_idl
from repro.idl.codegen import generate_python, py_name, render_internal_idl
from repro.idl.semantics import analyze
from repro.orb import InterfaceRegistry

IDL = """
module Example {
  enum Mode { FAST, SLOW };
  struct Pixel { long x; long y; };
  exception Oops { string why; };
  interface Foo {
    void funcA(in long x);
    string funcB(in float y) raises (Oops);
    oneway void notify(in long n);
  };
};
"""


def generate(instrument):
    spec_ast = parse_idl(IDL)
    resolved = analyze(spec_ast)
    return generate_python(spec_ast, resolved, instrument), resolved


class TestGeneratedSource:
    def test_instrumented_source_contains_probe_calls(self):
        source, _ = generate(True)
        assert "Probe 1: stub start" in source
        assert "Probe 2: skeleton start" in source
        assert "Probe 3: skeleton end" in source
        assert "Probe 4: stub end" in source
        assert "stub_start" in source
        assert "skel_end" in source

    def test_plain_source_has_no_probe_calls(self):
        source, _ = generate(False)
        assert "stub_start" not in source
        assert "skel_start" not in source
        assert "_monitor" not in source

    def test_back_end_flag_recorded(self):
        source, _ = generate(True)
        assert "instrument=True" in source
        source, _ = generate(False)
        assert "instrument=False" in source

    def test_oneway_stub_forks_child_chain(self):
        source, _ = generate(True)
        assert "oneway=True" in source

    def test_classes_and_aliases_present(self):
        source, _ = generate(True)
        for expected in (
            "class Example_Foo(object):",
            "class Example_FooStub(StubBase):",
            "class Example_FooSkeleton(SkeletonBase):",
            "class Example_Pixel:",
            "class Example_Mode(enum.Enum):",
            "class Example_Oops(Exception):",
            "Foo = Example_Foo",
        ):
            assert expected in source, expected

    def test_docstrings_carry_idl_signatures(self):
        source, _ = generate(True)
        assert "string funcB(in float y) raises (Example::Oops)" in source

    def test_py_name(self):
        assert py_name("A::B::C") == "A_B_C"
        assert py_name("Plain") == "Plain"


class TestInternalIdl:
    def test_instrumented_adds_ftl_parameter(self):
        _, resolved = generate(True)
        text = render_internal_idl(resolved, instrument=True)
        assert "inout Probe::FunctionTxLogType log" in text
        assert "struct FunctionTxLogType" in text
        # every operation gains the parameter
        assert text.count("inout Probe::FunctionTxLogType log") == 3

    def test_plain_rendering_matches_original_shape(self):
        _, resolved = generate(False)
        text = render_internal_idl(resolved, instrument=False)
        assert "Probe" not in text
        assert "void funcA(in long x);" in text


class TestCompiledModule:
    def test_compiled_namespace_exposes_types(self):
        compiled = compile_idl(IDL, instrument=True, registry=InterfaceRegistry())
        pixel = compiled.Pixel(x=1, y=2)
        assert pixel.x == 1
        assert compiled.Mode.FAST.value == 0
        exc = compiled.Oops(why="bad")
        assert isinstance(exc, Exception)
        assert exc == compiled.Oops(why="bad")
        assert exc != compiled.Oops(why="other")

    def test_type_table_rebinding(self):
        compiled = compile_idl(IDL, instrument=True, registry=InterfaceRegistry())
        struct_type = compiled.spec.structs["Example::Pixel"]
        assert struct_type.py_class is compiled.Pixel

    def test_registry_holds_generated_classes(self):
        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry)
        assert registry.stub_class("Example::Foo") is compiled.FooStub
        assert registry.skeleton_class("Example::Foo") is compiled.FooSkeleton

    def test_servant_base_defaults_raise(self):
        compiled = compile_idl(IDL, instrument=False, registry=InterfaceRegistry())
        import pytest

        with pytest.raises(NotImplementedError):
            compiled.Foo().funcA(1)

    def test_interface_inheritance_codegen(self):
        source = """
        interface Base { void base_op(); };
        interface Derived : Base { void derived_op(); };
        """
        compiled = compile_idl(source, instrument=True, registry=InterfaceRegistry())
        assert issubclass(compiled.DerivedStub, compiled.BaseStub)
        assert issubclass(compiled.Derived, compiled.Base)
        # inherited operation callable through the derived stub class
        assert hasattr(compiled.DerivedStub, "base_op")

    def test_both_variants_coexist(self):
        instrumented = compile_idl(IDL, instrument=True, registry=InterfaceRegistry())
        plain = compile_idl(IDL, instrument=False, registry=InterfaceRegistry())
        assert instrumented.FooStub._instrumented
        assert not plain.FooStub._instrumented


class TestAsyncBackEnd:
    """The ``async_mode`` flag: coroutine stubs/skeletons, same probes."""

    def _generate(self, instrument=True):
        spec_ast = parse_idl(IDL)
        resolved = analyze(spec_ast)
        return generate_python(spec_ast, resolved, instrument, async_mode=True)

    def test_header_records_async_flag(self):
        assert "async=True" in self._generate()
        sync_source, _ = generate(True)
        assert "async=False" in sync_source

    def test_stub_and_skeleton_methods_are_coroutines(self):
        source = self._generate()
        assert "async def funcB" in source
        assert "await self._remote_call_async(" in source
        assert "async def _dispatch_funcB" in source
        assert "await self._execute_async(" in source
        # Oneway rides the fire-and-forget async path.
        assert "await self._oneway_call_async(" in source

    def test_async_probes_preserved_around_awaits(self):
        source = self._generate()
        for label in (
            "Probe 1: stub start",
            "Probe 2: skeleton start",
            "Probe 3: skeleton end",
            "Probe 4: stub end",
        ):
            assert label in source

    def test_async_servant_methods_are_coroutine_functions(self):
        import asyncio

        registry = InterfaceRegistry()
        compiled = compile_idl(IDL, instrument=True, registry=registry, async_mode=True)
        assert compiled.async_mode
        assert asyncio.iscoroutinefunction(compiled.Foo.funcB)
        assert asyncio.iscoroutinefunction(compiled.FooStub.funcB)
        stub_cls = registry.stub_class("Example::Foo")
        assert asyncio.iscoroutinefunction(stub_cls.funcA)

    def test_sync_compile_is_unchanged(self):
        compiled = compile_idl(IDL, instrument=True, registry=InterfaceRegistry())
        import asyncio

        assert not compiled.async_mode
        assert not asyncio.iscoroutinefunction(compiled.Foo.funcB)
