"""Unit tests for IDL semantic analysis."""

import pytest

from repro.errors import IdlSemanticError
from repro.idl.parser import parse_idl
from repro.idl.semantics import analyze
from repro.idl.types import (
    EnumType,
    ObjectRefType,
    PrimitiveType,
    SequenceType,
    StringType,
    StructType,
)


def resolve(source):
    return analyze(parse_idl(source))


class TestResolution:
    def test_primitive_parameters(self):
        spec = resolve("interface F { void op(in long a, in string b); };")
        op = spec.interfaces["F"].operation("op")
        assert isinstance(op.parameters[0].idl_type, PrimitiveType)
        assert isinstance(op.parameters[1].idl_type, StringType)

    def test_struct_resolution_and_field_types(self):
        spec = resolve("struct P { long x; string label; }; interface F { P get(); };")
        p = spec.structs["P"]
        assert isinstance(p, StructType)
        assert p.fields[0][0] == "x"
        op = spec.interfaces["F"].operation("get")
        assert op.return_type is p

    def test_enum_resolution(self):
        spec = resolve("enum C { A, B }; interface F { void op(in C c); };")
        assert isinstance(spec.enums["C"], EnumType)

    def test_typedef_aliases_type(self):
        spec = resolve("typedef sequence<long> Seq; interface F { void op(in Seq s); };")
        op = spec.interfaces["F"].operation("op")
        assert isinstance(op.parameters[0].idl_type, SequenceType)

    def test_interface_reference_parameter(self):
        spec = resolve("interface Sink {}; interface F { void op(in Sink s); };")
        op = spec.interfaces["F"].operation("op")
        assert isinstance(op.parameters[0].idl_type, ObjectRefType)
        assert op.parameters[0].idl_type.interface_name == "Sink"

    def test_enclosing_scope_lookup(self):
        spec = resolve(
            "module M { struct S { long v; }; module N {"
            " interface F { void op(in S s); }; }; };"
        )
        op = spec.interfaces["M::N::F"].operation("op")
        assert op.parameters[0].idl_type is spec.structs["M::S"]

    def test_struct_forward_reference_rejected(self):
        # Type bodies resolve in declaration order, so a struct cannot use
        # a later struct (CORBA IDL rule we keep).
        with pytest.raises(IdlSemanticError):
            resolve("struct A { B inner; }; struct B { long v; };")

    def test_interface_may_reference_later_type(self):
        # Deliberate relaxation: interfaces resolve after all type bodies,
        # so operation signatures may reference types declared later.
        spec = resolve("interface F { void op(in Later x); }; struct Later { long v; };")
        op = spec.interfaces["F"].operation("op")
        assert op.parameters[0].idl_type is spec.structs["Later"]


class TestInheritance:
    def test_operations_flattened(self):
        spec = resolve(
            "interface A { void base_op(); };"
            " interface B : A { void derived_op(); };"
        )
        ops = [op.name for op in spec.interfaces["B"].operations]
        assert ops == ["base_op", "derived_op"]
        assert spec.interfaces["B"].operation("base_op").declared_in == "A"

    def test_diamond_inheritance_dedupes(self):
        spec = resolve(
            "interface A { void op(); };"
            " interface B : A {}; interface C : A {};"
            " interface D : B, C {};"
        )
        assert len(spec.interfaces["D"].operations) == 1

    def test_redeclaring_inherited_op_rejected(self):
        with pytest.raises(IdlSemanticError):
            resolve("interface A { void op(); }; interface B : A { void op(); };")

    def test_inheriting_from_non_interface_rejected(self):
        with pytest.raises(IdlSemanticError):
            resolve("struct S { long v; }; interface B : S {};")


class TestAttributes:
    def test_attribute_becomes_get_set(self):
        spec = resolve("interface F { attribute long count; };")
        names = [op.name for op in spec.interfaces["F"].operations]
        assert names == ["_get_count", "_set_count"]

    def test_readonly_attribute_only_get(self):
        spec = resolve("interface F { readonly attribute long count; };")
        names = [op.name for op in spec.interfaces["F"].operations]
        assert names == ["_get_count"]


class TestLegality:
    def test_duplicate_declaration_rejected(self):
        with pytest.raises(IdlSemanticError):
            resolve("interface F {}; interface F {};")

    def test_duplicate_field_rejected(self):
        with pytest.raises(IdlSemanticError):
            resolve("struct S { long a; long a; };")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(IdlSemanticError):
            resolve("interface F { void op(in long a, in long a); };")

    def test_duplicate_enum_label_rejected(self):
        with pytest.raises(IdlSemanticError):
            resolve("enum E { A, A };")

    def test_unknown_type_rejected(self):
        with pytest.raises(IdlSemanticError):
            resolve("interface F { void op(in Missing x); };")

    def test_oneway_must_return_void(self):
        with pytest.raises(IdlSemanticError):
            resolve("interface F { oneway long op(); };")

    def test_oneway_rejects_out_params(self):
        with pytest.raises(IdlSemanticError):
            resolve("interface F { oneway void op(out long x); };")

    def test_oneway_rejects_raises(self):
        with pytest.raises(IdlSemanticError):
            resolve(
                "exception E { long c; }; interface F { oneway void op() raises (E); };"
            )

    def test_raises_must_name_exception(self):
        with pytest.raises(IdlSemanticError):
            resolve("struct S { long v; }; interface F { void op() raises (S); };")

    def test_const_type_checked(self):
        with pytest.raises(IdlSemanticError):
            resolve('const long N = "not a number";')

    def test_const_value_recorded(self):
        spec = resolve("const long MAX = 17;")
        assert spec.constants["MAX"] == 17


class TestOperationViews:
    def test_in_and_out_params(self):
        spec = resolve(
            "interface F { long op(in long a, out long b, inout long c); };"
        )
        op = spec.interfaces["F"].operation("op")
        assert [p.name for p in op.in_params] == ["a", "c"]
        assert [p.name for p in op.out_params] == ["b", "c"]


class TestPythonBindingRestrictions:
    @pytest.mark.parametrize(
        "source",
        [
            "interface F { void op(in long class); };",
            "interface F { void import(); };",
            "struct S { long lambda; };",
            "enum E { if, else };",
            "interface def {};",
            "module yield { interface F {}; };",
        ],
    )
    def test_python_keywords_rejected_with_clear_error(self, source):
        with pytest.raises(IdlSemanticError, match="Python keyword"):
            resolve(source)

    def test_near_keywords_allowed(self):
        spec = resolve("interface F { void op(in long klass, in long class_); };")
        op = spec.interfaces["F"].operation("op")
        assert [p.name for p in op.parameters] == ["klass", "class_"]
