"""Unit tests for the IDL parser."""

import pytest

from repro.errors import IdlSyntaxError
from repro.idl import ast
from repro.idl.parser import parse_idl


class TestModulesAndInterfaces:
    def test_empty_interface(self):
        spec = parse_idl("interface Foo {};")
        (decl,) = spec.declarations
        assert isinstance(decl, ast.Interface)
        assert decl.name == "Foo"

    def test_nested_modules(self):
        spec = parse_idl("module A { module B { interface C {}; }; };")
        names = [scoped for scoped, _ in spec.iter_interfaces()]
        assert names == ["A::B::C"]

    def test_interface_inheritance(self):
        spec = parse_idl("interface A {}; interface B : A {}; interface C : A, B {};")
        c = spec.declarations[2]
        assert [b.name for b in c.bases] == ["A", "B"]

    def test_missing_semicolon_raises(self):
        with pytest.raises(IdlSyntaxError):
            parse_idl("interface Foo {}")


class TestOperations:
    def test_operation_with_all_directions(self):
        spec = parse_idl(
            "interface F { long op(in long a, out string b, inout double c); };"
        )
        op = spec.declarations[0].operations[0]
        assert [p.direction for p in op.parameters] == ["in", "out", "inout"]
        assert str(op.return_type) == "long"

    def test_void_return(self):
        spec = parse_idl("interface F { void op(); };")
        assert str(spec.declarations[0].operations[0].return_type) == "void"

    def test_void_parameter_rejected(self):
        with pytest.raises(IdlSyntaxError):
            parse_idl("interface F { void op(in void x); };")

    def test_oneway_flag(self):
        spec = parse_idl("interface F { oneway void notify(in long x); };")
        assert spec.declarations[0].operations[0].oneway

    def test_raises_clause(self):
        spec = parse_idl(
            "exception E1 { string m; }; exception E2 { long c; };"
            " interface F { void op() raises (E1, E2); };"
        )
        op = spec.declarations[2].operations[0]
        assert [r.name for r in op.raises] == ["E1", "E2"]

    def test_missing_direction_rejected(self):
        with pytest.raises(IdlSyntaxError):
            parse_idl("interface F { void op(long a); };")

    def test_compound_primitive_names(self):
        spec = parse_idl(
            "interface F { unsigned long long op(in long long a,"
            " in unsigned short b); };"
        )
        op = spec.declarations[0].operations[0]
        assert str(op.return_type) == "unsigned long long"
        assert str(op.parameters[0].type_ref) == "long long"
        assert str(op.parameters[1].type_ref) == "unsigned short"


class TestAttributes:
    def test_attribute_expansion_parsed(self):
        spec = parse_idl("interface F { attribute long count; readonly attribute string name; };")
        attrs = spec.declarations[0].attributes
        assert len(attrs) == 2
        assert not attrs[0].readonly
        assert attrs[1].readonly

    def test_attribute_list(self):
        spec = parse_idl("interface F { attribute long a, b; };")
        assert [a.name for a in spec.declarations[0].attributes] == ["a", "b"]


class TestTypes:
    def test_struct(self):
        spec = parse_idl("struct P { long x; long y; };")
        struct = spec.declarations[0]
        assert [f.name for f in struct.fields] == ["x", "y"]

    def test_struct_field_group(self):
        spec = parse_idl("struct P { long x, y, z; };")
        assert [f.name for f in spec.declarations[0].fields] == ["x", "y", "z"]

    def test_enum(self):
        spec = parse_idl("enum Color { RED, GREEN, BLUE };")
        assert spec.declarations[0].labels == ["RED", "GREEN", "BLUE"]

    def test_typedef_sequence(self):
        spec = parse_idl("typedef sequence<long> LongSeq;")
        typedef = spec.declarations[0]
        assert isinstance(typedef.type_ref, ast.SequenceRef)

    def test_nested_sequence(self):
        spec = parse_idl("typedef sequence<sequence<string>> Matrix;")
        inner = spec.declarations[0].type_ref.element
        assert isinstance(inner, ast.SequenceRef)

    def test_exception(self):
        spec = parse_idl("exception Bad { string reason; };")
        assert spec.declarations[0].name == "Bad"

    def test_const_values(self):
        spec = parse_idl(
            'const long N = 5; const double X = 2.5; const string S = "hi";'
            " const boolean B = TRUE; const long H = 0x10;"
        )
        values = [d.value for d in spec.declarations]
        assert values == [5, 2.5, "hi", True, 16]

    def test_scoped_type_reference(self):
        spec = parse_idl(
            "module M { struct S { long v; }; };"
            " interface F { void op(in M::S s); };"
        )
        param = spec.declarations[1].operations[0].parameters[0]
        assert param.type_ref.name == "M::S"

    def test_enum_trailing_comma(self):
        spec = parse_idl("enum E { A, B, };")
        assert spec.declarations[0].labels == ["A", "B"]


class TestErrors:
    def test_garbage_at_top_level(self):
        with pytest.raises(IdlSyntaxError):
            parse_idl("banana;")

    def test_error_reports_position(self):
        with pytest.raises(IdlSyntaxError) as excinfo:
            parse_idl("interface F {\n  void op(;\n};")
        assert excinfo.value.line >= 2
