"""Unit tests for workload generators and burn helpers."""

import pytest

from repro.apps.embedded.generator import EmbeddedConfig, EmbeddedSplitter
from repro.platform import Host, PlatformKind, VirtualClock
from repro.workloads import BudgetSplitter, burn_cpu, idle_wall


class TestBudgetSplitter:
    def make(self, **kwargs):
        defaults = dict(target_count=8, methods_per_target=3, seed=42, max_fanout=4)
        defaults.update(kwargs)
        return BudgetSplitter(**defaults)

    def test_budget_conservation(self):
        splitter = self.make()
        plan = splitter.plan(100, path_seed=1)
        assert sum(b for _, _, b in plan.children) == 99

    def test_exhausted_budget_no_children(self):
        assert self.make().plan(1, path_seed=1).children == ()
        assert self.make().plan(0, path_seed=1).children == ()

    def test_targets_within_range(self):
        splitter = self.make()
        for seed in range(20):
            for target, method, budget in splitter.plan(50, path_seed=seed).children:
                assert 0 <= target < 8
                assert 0 <= method < 3
                assert budget > 0

    def test_deterministic(self):
        a = self.make().plan(64, path_seed=5)
        b = self.make().plan(64, path_seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        plans = {self.make(seed=s).plan(64, path_seed=5).children for s in range(10)}
        assert len(plans) > 1

    def test_derive_path_seed_stable(self):
        splitter = self.make()
        assert splitter.derive_path_seed(7, 0) == splitter.derive_path_seed(7, 0)
        assert splitter.derive_path_seed(7, 0) != splitter.derive_path_seed(7, 1)

    def test_invalid_target_count(self):
        with pytest.raises(ValueError):
            BudgetSplitter(target_count=0, methods_per_target=1, seed=1)


class TestEmbeddedSplitter:
    def make(self, **kwargs):
        config = EmbeddedConfig(
            components=12, interfaces=8, methods=16, processes=3, **kwargs
        )
        return config, EmbeddedSplitter(config, config.methods_per_interface())

    def test_round_robin_process_targeting(self):
        config, splitter = self.make()
        for current in range(3):
            children = splitter.plan(100, path_seed=1, current_process=current)
            expected = (current + 1) % 3
            for component, _, _ in children:
                assert component % 3 == expected

    def test_budget_conservation(self):
        _, splitter = self.make()
        children = splitter.plan(500, path_seed=9, current_process=0)
        assert sum(b for _, _, b in children) == 499

    def test_bounded_part_sizes(self):
        """Near-equal splits: no part may hog the budget (depth bound)."""
        _, splitter = self.make()
        for seed in range(50):
            children = splitter.plan(1_000, path_seed=seed, current_process=0)
            if len(children) < 2:
                continue
            largest = max(b for _, _, b in children)
            assert largest <= 999 * 0.75, f"seed {seed}: part {largest} too large"

    def test_depth_bound_holds_empirically(self):
        """Simulated descent depth stays logarithmic in the budget."""
        _, splitter = self.make()

        def max_depth(budget, path_seed, process, depth=1):
            children = splitter.plan(budget, path_seed, process)
            if not children:
                return depth
            return max(
                max_depth(b, splitter.derive_path_seed(path_seed, i),
                          (process + 1) % 3, depth + 1)
                for i, (_, _, b) in enumerate(children)
            )

        depth = max_depth(5_000, 1, 0)
        assert depth <= 30  # log_1.6(5000) ~ 18 plus slack


class TestBurnHelpers:
    def test_burn_on_virtual_clock_is_exact(self):
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        burn_cpu(host, 12_345)
        assert clock.thread_cpu_ns() == 12_345
        assert clock.wall_ns() == 12_345

    def test_idle_on_virtual_clock(self):
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        idle_wall(host, 500)
        assert clock.wall_ns() == 500
        assert clock.thread_cpu_ns() == 0

    def test_zero_and_negative_noop(self):
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        burn_cpu(host, 0)
        burn_cpu(host, -5)
        assert clock.wall_ns() == 0

    def test_burn_on_real_clock_consumes_cpu(self):
        import time

        host = Host("h", PlatformKind.HPUX_11)  # RealClock
        before = time.thread_time_ns()
        burn_cpu(host, 2_000_000)  # 2 ms
        consumed = time.thread_time_ns() - before
        assert consumed >= 2_000_000
