"""Unit tests for the monitoring database and collector."""

from repro.collector import LogCollector, MonitoringDatabase, collect_run
from repro.core import (
    CallKind,
    Domain,
    ProbeRecord,
    RunMetadata,
    TracingEvent,
)
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock


def make_record(chain="aa" * 16, seq=0, event=TracingEvent.STUB_START, **overrides):
    fields = dict(
        chain_uuid=chain,
        event_seq=seq,
        event=event,
        interface="M::I",
        operation="op",
        object_id="p.obj-1",
        component="Comp",
        process="p",
        pid=1,
        host="h",
        thread_id=111,
        processor_type="PA-RISC",
        platform="HPUX 11",
        call_kind=CallKind.SYNC,
        collocated=False,
        domain=Domain.CORBA,
        wall_start=10,
        wall_end=12,
        cpu_start=None,
        cpu_end=None,
        child_chain_uuid=None,
        semantics={"args": ["1"]},
    )
    fields.update(overrides)
    return ProbeRecord(**fields)


class TestDatabase:
    def test_insert_and_roundtrip(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1", description="test", monitor_mode="latency"))
        record = make_record()
        assert db.insert_records("r1", [record]) == 1
        (restored,) = db.events_for_chain("r1", record.chain_uuid)
        assert restored == record

    def test_unique_chain_uuids_sorted(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        db.insert_records(
            "r1",
            [make_record(chain="bb" * 16), make_record(chain="aa" * 16)],
        )
        assert db.unique_chain_uuids("r1") == ["aa" * 16, "bb" * 16]

    def test_events_sorted_by_seq(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        records = [make_record(seq=s) for s in (2, 0, 1)]
        db.insert_records("r1", records)
        seqs = [r.event_seq for r in db.events_for_chain("r1", "aa" * 16)]
        assert seqs == [0, 1, 2]

    def test_runs_isolated(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        db.create_run(RunMetadata(run_id="r2"))
        db.insert_records("r1", [make_record()])
        assert db.record_count("r1") == 1
        assert db.record_count("r2") == 0
        assert db.unique_chain_uuids("r2") == []

    def test_population_stats(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        db.insert_records(
            "r1",
            [
                make_record(seq=0, event=TracingEvent.STUB_START),
                make_record(seq=1, event=TracingEvent.SKEL_START, process="q", pid=2),
                make_record(
                    chain="cc" * 16, seq=0, event=TracingEvent.STUB_START,
                    operation="other",
                ),
            ],
        )
        stats = db.population_stats("r1")
        assert stats["calls"] == 2  # two stub_start events
        assert stats["unique_methods"] == 2
        assert stats["chains"] == 2
        assert stats["processes"] == 2

    def test_run_metadata_roundtrip(self):
        db = MonitoringDatabase()
        meta = RunMetadata(run_id="r9", description="d", monitor_mode="cpu",
                           extra={"k": 1})
        db.create_run(meta)
        (restored,) = db.runs()
        assert restored == meta

    def test_semantics_json_roundtrip(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        db.insert_records("r1", [make_record(semantics={"status": "ok"})])
        (restored,) = db.events_for_chain("r1", "aa" * 16)
        assert restored.semantics == {"status": "ok"}

    def test_all_records_in_insert_order(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        db.insert_records("r1", [make_record(seq=5), make_record(seq=1)])
        seqs = [r.event_seq for r in db.all_records("r1")]
        assert seqs == [5, 1]

    def test_all_records_streams_across_fetch_batches(self):
        from repro.collector import database as database_module

        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        count = database_module._FETCH_BATCH + 7
        db.insert_records("r1", [make_record(seq=s) for s in range(count)])
        seqs = [r.event_seq for r in db.all_records("r1")]
        assert seqs == list(range(count))

    def test_fetch_batch_size_does_not_change_iteration_order(self):
        # The streaming batch size is a pure throughput knob: every
        # size must produce the identical record sequence, including
        # sizes that split chains mid-group.
        records = [
            make_record(chain=f"{i % 5:032x}", seq=i, semantics={"i": i})
            for i in range(83)
        ]
        reference = MonitoringDatabase(fetch_batch=1024)
        reference.create_run(RunMetadata(run_id="r1"))
        reference.insert_records("r1", records)
        expected_all = list(reference.all_records("r1"))
        expected_chains = list(reference.chains_for_run("r1"))
        for batch in (1, 2, 7, 83, 10_000):
            db = MonitoringDatabase(fetch_batch=batch)
            db.create_run(RunMetadata(run_id="r1"))
            db.insert_records("r1", records)
            assert list(db.all_records("r1")) == expected_all, batch
            assert list(db.chains_for_run("r1")) == expected_chains, batch

    def test_fetch_batch_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            MonitoringDatabase(fetch_batch=0)

    def test_chains_for_run_groups_sorted(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        db.insert_records(
            "r1",
            [
                make_record(chain="bb" * 16, seq=1),
                make_record(chain="aa" * 16, seq=0),
                make_record(chain="bb" * 16, seq=0),
                make_record(chain="cc" * 16, seq=0),
            ],
        )
        groups = list(db.chains_for_run("r1"))
        assert [uuid for uuid, _ in groups] == ["aa" * 16, "bb" * 16, "cc" * 16]
        assert [r.event_seq for r in dict(groups)["bb" * 16]] == [0, 1]

    def test_chains_for_run_shard_bounds_inclusive(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        for chain in ("aa" * 16, "bb" * 16, "cc" * 16, "dd" * 16):
            db.insert_records("r1", [make_record(chain=chain)])
        shard = list(db.chains_for_run("r1", first_chain="bb" * 16,
                                       last_chain="cc" * 16))
        assert [uuid for uuid, _ in shard] == ["bb" * 16, "cc" * 16]

    def test_chains_for_run_matches_per_chain_queries(self, tmp_path):
        db = MonitoringDatabase(str(tmp_path / "chains.db"))
        db.create_run(RunMetadata(run_id="r1"))
        db.insert_records(
            "r1",
            [make_record(chain=f"{i:032x}", seq=s)
             for i in range(5) for s in (1, 0)],
        )
        fused = {uuid: records for uuid, records in db.chains_for_run("r1")}
        assert set(fused) == set(db.unique_chain_uuids("r1"))
        for uuid, records in fused.items():
            assert records == db.events_for_chain("r1", uuid)

    def test_file_backed_reads_from_other_threads(self, tmp_path):
        import threading

        db = MonitoringDatabase(str(tmp_path / "wal.db"))
        db.create_run(RunMetadata(run_id="r1"))
        db.insert_records("r1", [make_record(seq=s) for s in range(10)])
        results = []

        def read():
            results.append(len(list(db.all_records("r1"))))

        threads = [threading.Thread(target=read) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [10, 10, 10, 10]
        db.close()

    def test_insert_records_chunks(self):
        db = MonitoringDatabase()
        db.create_run(RunMetadata(run_id="r1"))
        inserted = db.insert_records(
            "r1", (make_record(seq=s) for s in range(25)), chunk_size=10
        )
        assert inserted == 25
        assert db.record_count("r1") == 25

    def test_bulk_ingest_commits_once_at_exit(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "bulk.db")
        db = MonitoringDatabase(path)
        observer = sqlite3.connect(path)
        with db.bulk_ingest():
            db.create_run(RunMetadata(run_id="r1"))
            db.insert_records("r1", [make_record(seq=s) for s in range(3)])
            # Not yet committed: invisible to an independent connection.
            visible = observer.execute("SELECT COUNT(*) FROM records").fetchone()[0]
            assert visible == 0
        visible = observer.execute("SELECT COUNT(*) FROM records").fetchone()[0]
        assert visible == 3
        observer.close()
        db.close()


class TestCollector:
    def make_process(self, name):
        return SimProcess(name, Host("h", PlatformKind.HPUX_11, clock=VirtualClock()))

    def test_collect_drains_buffers(self):
        p1 = self.make_process("p1")
        p2 = self.make_process("p2")
        p1.log_buffer.append(make_record(process="p1"))
        p2.log_buffer.append(make_record(process="p2", seq=1))
        db, run = collect_run([p1, p2])
        assert db.record_count(run) == 2
        assert len(p1.log_buffer) == 0

    def test_collect_without_drain_keeps_buffers(self):
        p1 = self.make_process("p1")
        p1.log_buffer.append(make_record())
        collector = LogCollector()
        collector.collect([p1], run_id="keep", drain=False)
        assert len(p1.log_buffer) == 1

    def test_consecutive_runs_partition(self):
        p1 = self.make_process("p1")
        collector = LogCollector()
        p1.log_buffer.append(make_record(seq=0))
        run1 = collector.collect([p1])
        p1.log_buffer.append(make_record(seq=1))
        run2 = collector.collect([p1])
        assert collector.database.record_count(run1) == 1
        assert collector.database.record_count(run2) == 1
        assert run1 != run2
