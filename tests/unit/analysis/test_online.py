"""Unit tests for the on-line monitor (future-work extension)."""

from repro.analysis import Alert, OnlineMonitor
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def records_for(calls, **kwargs):
    return simulate(calls, mode=MonitorMode.LATENCY, **kwargs).records


class TestLiveState:
    def test_completed_calls_counted(self):
        monitor = OnlineMonitor()
        monitor.ingest_many(records_for([Call("I::F", cpu_ns=10), Call("I::G")]))
        assert monitor.completed_calls() == 2
        assert monitor.live_chain_count() == 0
        assert monitor.open_invocations() == []

    def test_open_invocations_visible_mid_chain(self):
        records = records_for([Call("I::F", cpu_ns=10, children=(Call("I::G"),))])
        monitor = OnlineMonitor()
        # feed only up to G's stub_start: F and G are both in flight
        for record in records[:3]:
            monitor.ingest(record)
        open_calls = monitor.open_invocations()
        assert [c.function for c in open_calls] == ["I::F", "I::G"]
        assert open_calls[1].depth == 2
        assert monitor.live_chain_count() == 1

    def test_latency_stats_accumulate(self):
        monitor = OnlineMonitor()
        monitor.ingest_many(
            records_for([Call("I::F", cpu_ns=100), Call("I::F", cpu_ns=300)])
        )
        stats = monitor.latency_stats()["I::F"]
        assert stats.count == 2
        assert stats.mean_ns == 200
        assert stats.max_ns == 300

    def test_latency_stats_streaming_percentiles(self):
        monitor = OnlineMonitor()
        # 100 calls: 1ns, 2ns, ... 100ns of consumed CPU -> latencies
        # spread over two orders of magnitude.
        monitor.ingest_many(
            records_for([Call("I::F", cpu_ns=i) for i in range(1, 101)])
        )
        stats = monitor.latency_stats()["I::F"]
        assert stats.count == 100
        # P² estimates: within a few ranks of the exact percentiles.
        assert stats.p50_ns <= stats.p95_ns <= stats.p99_ns <= stats.max_ns
        assert abs(stats.p50_ns - 50) <= 10
        assert stats.p95_ns >= 85
        assert stats.p99_ns >= 90

    def test_poll_is_incremental(self):
        sim = simulate([Call("I::F", cpu_ns=5)], mode=MonitorMode.LATENCY)
        monitor = OnlineMonitor()
        assert monitor.poll([sim.process]) == 4
        assert monitor.poll([sim.process]) == 0  # nothing new
        assert monitor.completed_calls() == 1


class TestAlerts:
    def test_latency_slo_alert(self):
        fired = []
        monitor = OnlineMonitor(latency_slo_ns=50, on_alert=fired.append)
        monitor.ingest_many(records_for([Call("I::slow", cpu_ns=100)]))
        assert len(fired) == 1
        alert = fired[0]
        assert alert.kind == "latency"
        assert alert.function == "I::slow"
        assert alert.latency_ns == 100

    def test_no_alert_under_slo(self):
        monitor = OnlineMonitor(latency_slo_ns=1_000)
        monitor.ingest_many(records_for([Call("I::fast", cpu_ns=100)]))
        assert monitor.alerts() == []

    def test_duplicate_event_number_alerts(self):
        # Two records with the same event number on one chain (the data
        # race a mingled COM STA produces) is genuinely abnormal.
        records = records_for([Call("I::F", cpu_ns=5)])
        monitor = OnlineMonitor()
        monitor.ingest_many(records)
        monitor.ingest(records[0])  # replayed seq 0: collision
        alerts = monitor.alerts()
        assert len(alerts) == 1
        assert alerts[0].kind == "abnormal"

    def test_out_of_order_arrival_reordered_not_alerted(self):
        import random

        records = records_for(
            [Call("I::F", cpu_ns=5, children=(Call("I::G", cpu_ns=2),))]
        )
        shuffled = list(records)
        random.Random(3).shuffle(shuffled)
        monitor = OnlineMonitor()
        monitor.ingest_many(shuffled)
        assert monitor.alerts() == []
        assert monitor.completed_calls() == 2


class TestBoundedPending:
    def test_overflow_drops_counts_and_alerts_once(self):
        records = records_for(
            [Call("I::F", cpu_ns=5, children=(Call("I::G", cpu_ns=2),))]
        )
        monitor = OnlineMonitor(max_pending=2)
        # Withhold seq 0: everything else is out-of-order and must buffer.
        for record in records[1:]:
            monitor.ingest(record)
        assert monitor.pending_records() == 2
        assert monitor.pending_dropped == len(records) - 3
        overflow = [a for a in monitor.alerts() if a.kind == "overflow"]
        assert len(overflow) == 1  # one alert per saturation episode
        # Delivering the gap record drains the survivors.
        monitor.ingest(records[0])
        assert monitor.pending_records() == 0

    def test_duplicate_pending_record_not_double_counted(self):
        records = records_for([Call("I::F", cpu_ns=5)])
        monitor = OnlineMonitor(max_pending=4)
        monitor.ingest(records[2])
        monitor.ingest(records[2])  # same seq again: overwrites, no growth
        assert monitor.pending_records() == 1

    def test_unbounded_when_disabled(self):
        records = records_for(
            [Call("I::F", cpu_ns=5, children=(Call("I::G", cpu_ns=2),))]
        )
        monitor = OnlineMonitor(max_pending=None)
        for record in records[1:]:
            monitor.ingest(record)
        assert monitor.pending_records() == len(records) - 1
        assert monitor.pending_dropped == 0
