"""Unit tests for critical-path characterization."""

from repro.analysis import critical_path, critical_paths, render_critical_path
from repro.analysis import reconstruct_from_records
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def dscg_for(calls, **kwargs):
    sim = simulate(calls, mode=MonitorMode.LATENCY, **kwargs)
    return reconstruct_from_records(sim.records)


class TestCriticalPath:
    def test_follows_slowest_child(self):
        dscg = dscg_for(
            [Call("I::root", cpu_ns=10, children=(
                Call("I::fast", cpu_ns=20),
                Call("I::slow", cpu_ns=500, children=(Call("I::leaf", cpu_ns=400),)),
            ))]
        )
        (tree,) = dscg.chains.values()
        path = critical_path(tree)
        assert [s.function for s in path.steps] == ["I::root", "I::slow", "I::leaf"]
        assert path.total_latency_ns == 930

    def test_self_share_excludes_children(self):
        dscg = dscg_for(
            [Call("I::root", cpu_ns=100, children=(Call("I::child", cpu_ns=400),))]
        )
        (tree,) = dscg.chains.values()
        path = critical_path(tree)
        root_step = path.steps[0]
        assert root_step.latency_ns == 500
        assert root_step.self_share_ns == 100

    def test_dominant_step(self):
        dscg = dscg_for(
            [Call("I::root", cpu_ns=10, children=(Call("I::hot", cpu_ns=900),))]
        )
        (tree,) = dscg.chains.values()
        path = critical_path(tree)
        assert path.dominant_step().function == "I::hot"

    def test_top_paths_sorted(self):
        dscg = dscg_for(
            [Call("I::a", cpu_ns=100), Call("I::b", cpu_ns=900), Call("I::c", cpu_ns=10)],
            fresh_chain_per_top_call=True,
        )
        paths = critical_paths(dscg, top=2)
        assert len(paths) == 2
        assert paths[0].steps[0].function == "I::b"
        assert paths[0].total_latency_ns >= paths[1].total_latency_ns

    def test_render(self):
        dscg = dscg_for([Call("I::root", cpu_ns=1_000_000)])
        (tree,) = dscg.chains.values()
        text = render_critical_path(critical_path(tree))
        assert "I::root" in text
        assert "ms" in text

    def test_empty_chain(self):
        from repro.analysis.dscg import ChainTree

        assert critical_path(ChainTree(chain_uuid="x" * 32)) is None
