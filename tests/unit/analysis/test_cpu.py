"""Unit tests for CPU consumption characterization (Section 3.2)."""

from repro.analysis import CpuAnalysis, reconstruct_from_records, self_cpu
from repro.core import MonitorMode
from repro.platform import PlatformKind
from tests.helpers import Call, simulate


def dscg_for(calls, **kwargs):
    sim = simulate(calls, mode=MonitorMode.CPU, **kwargs)
    return reconstruct_from_records(sim.records)


def only_node(dscg, function):
    (node,) = [n for n in dscg.walk() if n.function == function]
    return node


class TestSelfCpu:
    def test_leaf_self_cpu(self):
        dscg = dscg_for([Call("I::F", cpu_ns=700)])
        assert self_cpu(only_node(dscg, "I::F")) == 700

    def test_child_cpu_excluded_from_parent_self(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=100, children=(Call("I::G", cpu_ns=400),))]
        )
        assert self_cpu(only_node(dscg, "I::F")) == 100
        assert self_cpu(only_node(dscg, "I::G")) == 400

    def test_idle_time_not_charged(self):
        dscg = dscg_for([Call("I::F", cpu_ns=100, idle_ns=1_000_000)])
        assert self_cpu(only_node(dscg, "I::F")) == 100

    def test_unreadable_counter_yields_none(self):
        dscg = dscg_for([Call("I::F", cpu_ns=100)], platform=PlatformKind.VXWORKS)
        assert self_cpu(only_node(dscg, "I::F")) is None

    def test_oneway_stub_side_has_no_self_cpu(self):
        dscg = dscg_for([Call("I::cast", oneway=True, cpu_ns=300)])
        stub_node = [n for n in dscg.walk() if n.oneway_side == "stub"][0]
        assert self_cpu(stub_node) is None


class TestDescendantCpu:
    def test_vector_sums_children(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=10, children=(
                Call("I::G", cpu_ns=200, children=(Call("I::H", cpu_ns=50),)),
                Call("I::K", cpu_ns=40),
            ))]
        )
        analysis = CpuAnalysis(dscg)
        f = only_node(dscg, "I::F")
        dc = analysis.descendant_cpu(f)
        assert dc.by_processor == {"PA-RISC": 290}
        inclusive = analysis.inclusive_cpu(f)
        assert inclusive.by_processor == {"PA-RISC": 300}

    def test_leaf_descendants_empty(self):
        dscg = dscg_for([Call("I::F", cpu_ns=10)])
        analysis = CpuAnalysis(dscg)
        assert analysis.descendant_cpu(only_node(dscg, "I::F")).by_processor == {}

    def test_oneway_fork_charged_to_forking_node(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=10, children=(
                Call("I::cast", oneway=True, cpu_ns=500),
            ))]
        )
        analysis = CpuAnalysis(dscg, include_oneway_forks=True)
        f = only_node(dscg, "I::F")
        assert analysis.descendant_cpu(f).by_processor == {"PA-RISC": 500}

    def test_oneway_fork_excluded_when_disabled(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=10, children=(
                Call("I::cast", oneway=True, cpu_ns=500),
            ))]
        )
        analysis = CpuAnalysis(dscg, include_oneway_forks=False)
        f = only_node(dscg, "I::F")
        assert analysis.descendant_cpu(f).by_processor == {}

    def test_conservation_total_self_equals_root_inclusive(self):
        tree = Call(
            "I::root",
            cpu_ns=100,
            children=(
                Call("I::a", cpu_ns=20, children=(Call("I::b", cpu_ns=30),)),
                Call("I::c", cpu_ns=50),
            ),
        )
        dscg = dscg_for([tree])
        analysis = CpuAnalysis(dscg)
        root = only_node(dscg, "I::root")
        assert analysis.inclusive_cpu(root).total_ns() == 200
        assert analysis.total_by_processor().total_ns() == 200


class TestUncoveredAccounting:
    def test_vxworks_children_counted_as_uncovered(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=10, children=(Call("I::G", cpu_ns=5),))],
            platform=PlatformKind.VXWORKS,
        )
        analysis = CpuAnalysis(dscg)
        f = only_node(dscg, "I::F")
        dc = analysis.descendant_cpu(f)
        assert dc.uncovered == 1
        assert dc.by_processor == {}


class TestAnnotateAndAggregates:
    def test_annotate(self):
        dscg = dscg_for([Call("I::F", cpu_ns=10)])
        CpuAnalysis(dscg).annotate()
        node = only_node(dscg, "I::F")
        assert node.self_cpu_ns == 10
        assert node.descendant_cpu.total_ns() == 0

    def test_per_function_self_cpu(self):
        dscg = dscg_for([Call("I::F", cpu_ns=10), Call("I::F", cpu_ns=30)])
        per_function = CpuAnalysis(dscg).per_function_self_cpu()
        assert per_function["I::F"].by_processor == {"PA-RISC": 40}
