"""Unit tests for DSCG JSON serialization."""

import json

import pytest

from repro.analysis import dscg_from_json, dscg_to_json, reconstruct_from_records
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def dscg_for(calls, **kwargs):
    sim = simulate(calls, mode=MonitorMode.FULL, **kwargs)
    return reconstruct_from_records(sim.records)


class TestRoundtrip:
    def make(self):
        return dscg_for(
            [Call("I::root", cpu_ns=100, children=(
                Call("I::a", cpu_ns=20, collocated=True),
                Call("I::cast", oneway=True, cpu_ns=30),
            ))]
        )

    def test_structure_preserved(self):
        original = self.make()
        restored = dscg_from_json(dscg_to_json(original))
        assert restored.stats()["nodes"] == original.stats()["nodes"]
        assert set(restored.chains) == set(original.chains)
        (tree,) = restored.root_chains()
        root = tree.roots[0]
        assert root.function == "I::root"
        assert [c.function for c in root.children] == ["I::a", "I::cast"]
        assert root.children[0].collocated

    def test_oneway_links_relinked(self):
        restored = dscg_from_json(dscg_to_json(self.make()))
        assert len(restored.links) == 1

    def test_annotations_present(self):
        document = json.loads(dscg_to_json(self.make()))
        root = document["chains"][0]["roots"][0] if document["chains"][0]["roots"] else None
        # find the chain holding root (order not guaranteed)
        roots = [r for chain in document["chains"] for r in chain["roots"]]
        root = [r for r in roots if r["operation"] == "root"][0]
        assert "latency_ns" in root
        assert "self_cpu_ns" in root
        assert root["descendant_cpu_ns"]

    def test_without_cpu_annotations(self):
        document = json.loads(dscg_to_json(self.make(), include_cpu=False))
        roots = [r for chain in document["chains"] for r in chain["roots"]]
        root = [r for r in roots if r["operation"] == "root"][0]
        assert "self_cpu_ns" not in root

    def test_bad_document_rejected(self):
        with pytest.raises(ValueError):
            dscg_from_json('{"format": "something-else"}')

    def test_stats_recorded(self):
        document = json.loads(dscg_to_json(self.make()))
        assert document["stats"]["nodes"] == 4  # root, a, cast stub, cast skel
