"""Unit tests for call paths, hyperbolic layout, sequence chart, semantics."""

import json
import math

from repro.analysis import (
    HyperbolicLayout,
    call_path_profiles,
    depth1_profile,
    layout_to_json,
    layout_to_svg,
    path_of,
    reconstruct_from_records,
    render_sequence_chart,
    semantics_report,
    spans_from_records,
)
from repro.analysis.report import dscg_summary, format_ns, format_sec_usec, table
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def dscg_for(calls, mode=MonitorMode.FULL, **kwargs):
    sim = simulate(calls, mode=mode, **kwargs)
    return reconstruct_from_records(sim.records), sim


class TestCallPaths:
    def test_path_of(self):
        dscg, _ = dscg_for([Call("I::A", children=(Call("I::B"),))])
        b = [n for n in dscg.walk() if n.function == "I::B"][0]
        assert path_of(b) == ("I::A", "I::B")

    def test_distinct_paths_distinct_profiles(self):
        dscg, _ = dscg_for(
            [Call("I::A", children=(Call("I::C", cpu_ns=5),)),
             Call("I::B", children=(Call("I::C", cpu_ns=10),))]
        )
        profiles = call_path_profiles(dscg)
        assert ("I::A", "I::C") in profiles
        assert ("I::B", "I::C") in profiles
        assert profiles[("I::A", "I::C")].count == 1

    def test_profile_aggregates_latency_and_cpu(self):
        dscg, _ = dscg_for(
            [Call("I::A", children=(Call("I::C", cpu_ns=5),)),
             Call("I::A", children=(Call("I::C", cpu_ns=15),))]
        )
        profile = call_path_profiles(dscg)[("I::A", "I::C")]
        assert profile.count == 2
        assert profile.total_self_cpu_ns == 20
        assert profile.mean_self_cpu_ns == 10

    def test_depth1_collapses_paths(self):
        dscg, _ = dscg_for(
            [Call("I::A", children=(Call("I::C"),)),
             Call("I::B", children=(Call("I::C"),))]
        )
        edges = depth1_profile(dscg)
        assert edges[("I::A", "I::C")] == 1
        assert edges[("I::B", "I::C")] == 1
        assert edges[("<root>", "I::A")] == 1


class TestHyperbolicLayout:
    def layout(self):
        dscg, _ = dscg_for(
            [Call("I::root", children=(Call("I::a"), Call("I::b", children=(Call("I::c"),))))]
        )
        return HyperbolicLayout().layout_dscg(dscg)

    def test_all_nodes_inside_unit_disk(self):
        root = self.layout()
        for node in root.walk():
            assert math.hypot(node.x, node.y) < 1.0

    def test_node_count_preserved(self):
        root = self.layout()
        # virtual root + 4 call nodes
        assert sum(1 for _ in root.walk()) == 5

    def test_children_near_parents(self):
        root = self.layout()
        for node in root.walk():
            for child in node.children:
                assert math.hypot(child.x - node.x, child.y - node.y) < 1.0

    def test_json_export_roundtrips(self):
        payload = json.loads(layout_to_json(self.layout()))
        assert payload["label"] == "<system>"
        assert len(payload["children"]) == 1

    def test_svg_export_well_formed(self):
        svg = layout_to_svg(self.layout())
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<circle" in svg and "<line" in svg

    def test_bad_step_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            HyperbolicLayout(step=1.5)

    def test_annotation_callback(self):
        dscg, _ = dscg_for([Call("I::f", cpu_ns=5)])
        root = HyperbolicLayout().layout_dscg(dscg, annotate=lambda n: n.function)
        leaf = root.children[0]
        assert leaf.annotation == "I::f"


class TestSequenceChart:
    def test_spans_pair_skeleton_events(self):
        _, sim = dscg_for([Call("I::F", cpu_ns=100, children=(Call("I::G", cpu_ns=50),))],
                          mode=MonitorMode.LATENCY)
        spans = spans_from_records(sim.records)
        functions = sorted(s.function for s in spans)
        assert functions == ["I::F", "I::G"]
        f = [s for s in spans if s.function == "I::F"][0]
        assert f.duration_ns == 150

    def test_render_chart_rows(self):
        _, sim = dscg_for([Call("I::F", cpu_ns=10)], mode=MonitorMode.LATENCY)
        chart = render_sequence_chart(spans_from_records(sim.records))
        assert "I::F" in chart
        assert "#" in chart

    def test_empty_chart(self):
        assert render_sequence_chart([]) == "(no spans)"


class TestSemanticsReport:
    def test_exception_and_args_capture(self):
        _, sim = dscg_for([Call("I::F", cpu_ns=1)], mode=MonitorMode.SEMANTICS)
        # inject outcome semantics manually on the skel_end record
        from repro.core import TracingEvent

        for record in sim.records:
            if record.event is TracingEvent.STUB_START:
                record.semantics = {"args": ["7"]}
            if record.event is TracingEvent.SKEL_END:
                record.semantics = {"status": "user_exception", "exception": "Boom()"}
        report = semantics_report(sim.records)
        entry = report["I::F"]
        assert entry.invocations == 1
        assert entry.user_exceptions == 1
        assert entry.sample_args == [["7"]]
        assert entry.failure_rate == 1.0


class TestReportHelpers:
    def test_format_ns(self):
        assert format_ns(5) == "5ns"
        assert format_ns(5_000) == "5.0us"
        assert format_ns(5_000_000) == "5.000ms"
        assert format_ns(5_000_000_000) == "5.000s"

    def test_format_sec_usec(self):
        assert format_sec_usec(1_500_000_000) == "[1, 500000]"

    def test_table_alignment(self):
        text = table([["a", "bb"]], ["col1", "column2"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("col1")

    def test_dscg_summary_mentions_counts(self):
        dscg, _ = dscg_for([Call("I::F")])
        summary = dscg_summary(dscg)
        assert "1 invocation nodes" in summary
        assert "1 causal chain(s)" in summary
