"""Unit tests for the Figure-4 reconstruction state machine."""

from repro.analysis import reconstruct_from_records
from repro.core import CallKind, TracingEvent
from tests.helpers import Call, simulate


def build(calls, **kwargs):
    sim = simulate(calls, **kwargs)
    return reconstruct_from_records(sim.records), sim


class TestBasicStructures:
    def test_single_call(self):
        dscg, _ = build([Call("I::F")])
        assert dscg.node_count() == 1
        (tree,) = dscg.chains.values()
        assert tree.roots[0].function == "I::F"
        assert tree.is_clean

    def test_sibling_calls_one_chain_two_roots(self):
        dscg, _ = build([Call("I::F"), Call("I::G")])
        (tree,) = dscg.chains.values()
        assert [n.function for n in tree.roots] == ["I::F", "I::G"]
        assert all(not n.children for n in tree.roots)

    def test_nesting_parent_child(self):
        dscg, _ = build([Call("I::F", children=(Call("I::G", children=(Call("I::H"),)),))])
        (tree,) = dscg.chains.values()
        f = tree.roots[0]
        assert f.function == "I::F"
        assert f.children[0].function == "I::G"
        assert f.children[0].children[0].function == "I::H"
        assert dscg.max_depth() == 3

    def test_cascading_children(self):
        dscg, _ = build([Call("I::F", children=(Call("I::G1"), Call("I::G2")))])
        f = list(dscg.chains.values())[0].roots[0]
        assert [c.function for c in f.children] == ["I::G1", "I::G2"]

    def test_recursion_nests(self):
        call = Call("I::rec", children=(Call("I::rec", children=(Call("I::rec"),)),))
        dscg, _ = build([call])
        assert dscg.max_depth() == 3
        assert not dscg.abnormal_events()

    def test_fresh_chain_per_top_call(self):
        dscg, _ = build([Call("I::F"), Call("I::G")], fresh_chain_per_top_call=True)
        assert len(dscg.chains) == 2

    def test_collocated_flagged(self):
        dscg, _ = build([Call("I::F", collocated=True)])
        node = list(dscg.walk())[0]
        assert node.collocated
        assert len(node.records) == 4


class TestOneway:
    def test_oneway_forks_linked_chain(self):
        dscg, _ = build([Call("I::F", children=(Call("I::cast", oneway=True),))])
        assert len(dscg.chains) == 2
        assert len(dscg.links) == 1
        parent_uuid, forking_node, child_uuid = dscg.links[0]
        assert forking_node.function == "I::cast"
        assert forking_node.oneway_side == "stub"
        child_tree = dscg.chains[child_uuid]
        assert child_tree.parent_chain_uuid == parent_uuid
        assert child_tree.roots[0].oneway_side == "skel"
        assert child_tree.roots[0].call_kind is CallKind.ONEWAY

    def test_oneway_child_work_in_forked_chain(self):
        dscg, _ = build(
            [Call("I::F", children=(
                Call("I::cast", oneway=True, children=(Call("I::inner"),)),
            ))]
        )
        child_uuid = dscg.links[0][2]
        child_root = dscg.chains[child_uuid].roots[0]
        assert [c.function for c in child_root.children] == ["I::inner"]

    def test_root_chains_excludes_forked(self):
        dscg, _ = build([Call("I::F", children=(Call("I::cast", oneway=True),))])
        roots = dscg.root_chains()
        assert len(roots) == 1
        assert roots[0].roots[0].function == "I::F"


class TestAbnormal:
    def _records(self, calls):
        return simulate(calls).records

    def test_clean_run_has_no_abnormal(self):
        records = self._records([Call("I::F", children=(Call("I::G"),))])
        dscg = reconstruct_from_records(records)
        assert dscg.abnormal_events() == []

    def test_missing_stub_end_reported(self):
        records = self._records([Call("I::F")])
        truncated = [r for r in records if r.event is not TracingEvent.STUB_END]
        dscg = reconstruct_from_records(truncated)
        abnormal = dscg.abnormal_events()
        assert abnormal
        assert "never completed" in abnormal[0].reason

    def test_orphan_skel_end_reported_and_restarts(self):
        records = self._records([Call("I::F"), Call("I::G")])
        # Drop F's skel_start: its skel_end becomes an orphan.
        damaged = [
            r
            for r in records
            if not (r.operation == "F" and r.event is TracingEvent.SKEL_START)
        ]
        dscg = reconstruct_from_records(damaged)
        abnormal = dscg.abnormal_events()
        assert any("skel_end" in a.reason for a in abnormal)
        # The analyzer restarted: G is still reconstructed cleanly.
        assert dscg.nodes_for_function("I", "G")

    def test_mismatched_stub_end_reported(self):
        records = self._records([Call("I::F")])
        # Rename the stub_end so it cannot close the open F frame.
        for record in records:
            if record.event is TracingEvent.STUB_END:
                record.operation = "WRONG"
        dscg = reconstruct_from_records(records)
        assert any("stub_end" in a.reason for a in dscg.abnormal_events())

    def test_partial_when_server_unmonitored(self):
        records = self._records([Call("I::F")])
        stub_only = [r for r in records if r.event.is_stub_side]
        dscg = reconstruct_from_records(stub_only)
        node = list(dscg.walk())[0]
        assert node.partial
        assert not dscg.abnormal_events()

    def test_partial_when_client_unmonitored(self):
        records = self._records([Call("I::F")])
        skel_only = [r for r in records if not r.event.is_stub_side]
        dscg = reconstruct_from_records(skel_only)
        node = list(dscg.walk())[0]
        assert node.partial
        assert not dscg.abnormal_events()


class TestNodeMetadata:
    def test_locality_properties(self):
        dscg, sim = build([Call("I::F")])
        node = list(dscg.walk())[0]
        assert node.client_process == "sim"
        assert node.server_process == "sim"
        assert node.server_processor_type == "PA-RISC"
        assert node.server_thread is not None

    def test_stats(self):
        dscg, _ = build(
            [Call("A::f", children=(Call("B::g"),)), Call("A::f")],
            fresh_chain_per_top_call=True,
        )
        stats = dscg.stats()
        assert stats["chains"] == 2
        assert stats["nodes"] == 3
        assert stats["unique_methods"] == 2
        assert stats["unique_interfaces"] == 2
        assert stats["abnormal_events"] == 0
