"""Unit tests for the sharded parallel analyzer.

The contract: ``reconstruct_sharded`` is a drop-in for the serial
single-scan ``reconstruct`` — identical DSCG, identical chain order,
identical serialized JSON — and worker failures surface as exceptions
rather than silently dropped chains.
"""

import pytest

from repro.analysis import (
    dscg_to_json,
    reconstruct,
    reconstruct_sharded,
)
from repro.analysis.parallel import shard_bounds
import repro.analysis.parallel as parallel_mod
from repro.collector import MonitoringDatabase, collect_run
from repro.core import CallKind, Domain, MonitorMode, ProbeRecord, TracingEvent
from tests.helpers import Call, simulate


def _mingled_record(chain, seq):
    """A stray skel_end that violates the Figure-4 machine (STA mingling)."""
    return ProbeRecord(
        chain_uuid=chain,
        event_seq=seq,
        event=TracingEvent.SKEL_END,
        interface="Rogue",
        operation="mingled",
        object_id="rogue.obj",
        component="Rogue",
        process="sim",
        pid=1,
        host="sim-host",
        thread_id=9,
        processor_type="PA-RISC",
        platform="HPUX 11",
        call_kind=CallKind.SYNC,
        collocated=False,
        domain=Domain.CORBA,
        wall_start=1,
        wall_end=2,
    )


def _collected_workload(tmp_path, filename="run.db"):
    """A multi-chain workload with sync, oneway, collocated and abnormal."""
    calls = [
        Call("A::f", cpu_ns=100, children=(
            Call("B::g", cpu_ns=50),
            Call("C::h", cpu_ns=25, collocated=True),
        )),
        Call("A::f", cpu_ns=10, children=(Call("D::k", oneway=True, cpu_ns=5),)),
        Call("B::g", cpu_ns=70),
        Call("E::m", cpu_ns=30, children=(Call("E::n", cpu_ns=10),)),
    ]
    sim = simulate(calls, mode=MonitorMode.FULL, fresh_chain_per_top_call=True)
    # Two mingled chains: a fresh chain that starts with a stray skel_end,
    # and a corrupted tail on an otherwise clean chain.
    sim.process.log_buffer.append(_mingled_record("ff" * 16, 0))
    first_chain = sim.records[0].chain_uuid
    last_seq = max(r.event_seq for r in sim.records if r.chain_uuid == first_chain)
    sim.process.log_buffer.append(_mingled_record(first_chain, last_seq + 1))
    database, run_id = collect_run(
        [sim.process], database=MonitoringDatabase(str(tmp_path / filename))
    )
    return database, run_id


class TestEquivalence:
    def test_parallel_equals_serial_file_backed(self, tmp_path):
        database, run_id = _collected_workload(tmp_path)
        serial = reconstruct(database, run_id)
        parallel = reconstruct_sharded(
            database, run_id, workers=3, oversubscribe=True
        )
        assert list(parallel.chains) == list(serial.chains)
        assert dscg_to_json(parallel) == dscg_to_json(serial)
        assert len(serial.abnormal_events()) >= 2  # the mingled chains

    def test_parallel_equals_serial_memory_fallback(self):
        calls = [Call("A::f", children=(Call("B::g"),)), Call("C::h")]
        sim = simulate(calls, fresh_chain_per_top_call=True)
        database, run_id = collect_run([sim.process])
        assert database.path == ":memory:"
        serial = reconstruct(database, run_id)
        parallel = reconstruct(database, run_id, workers=4)
        assert dscg_to_json(parallel) == dscg_to_json(serial)

    def test_workers_via_reconstruct_entry_point(self, tmp_path):
        database, run_id = _collected_workload(tmp_path)
        assert dscg_to_json(reconstruct(database, run_id, workers=2)) == \
            dscg_to_json(reconstruct(database, run_id))

    def test_annotation_matches_serial(self, tmp_path):
        database, run_id = _collected_workload(tmp_path)
        serial = reconstruct(database, run_id, annotate=True)
        parallel = reconstruct(
            database, run_id, workers=3, annotate=True
        )
        for uuid, tree in serial.chains.items():
            other = parallel.chains[uuid].walk()
            for node, twin in zip(tree.walk(), other):
                assert node.latency_ns == twin.latency_ns
                assert node.self_cpu_ns == twin.self_cpu_ns

    def test_more_workers_than_chains(self, tmp_path):
        database, run_id = _collected_workload(tmp_path)
        parallel = reconstruct_sharded(
            database, run_id, workers=64, oversubscribe=True
        )
        assert dscg_to_json(parallel) == dscg_to_json(reconstruct(database, run_id))

    def test_empty_run(self, tmp_path):
        database = MonitoringDatabase(str(tmp_path / "empty.db"))
        from repro.core import RunMetadata

        database.create_run(RunMetadata(run_id="r0"))
        dscg = reconstruct_sharded(database, "r0", workers=4)
        assert dscg.chains == {}


class TestShardBounds:
    def test_partition_covers_all_uuids(self):
        uuids = [f"{i:04x}" for i in range(17)]
        bounds = shard_bounds(uuids, 4)
        assert len(bounds) == 4
        covered = []
        for lo, hi in bounds:
            covered.extend(u for u in uuids if lo <= u <= hi)
        assert covered == uuids  # disjoint, ordered, complete

    def test_clamps_to_chain_count(self):
        assert len(shard_bounds(["a", "b"], 8)) == 2
        assert shard_bounds([], 4) == []

    def test_single_shard(self):
        assert shard_bounds(["a", "b", "c"], 1) == [("a", "c")]


class TestFailureSurfacing:
    def test_worker_exception_propagates(self, tmp_path, monkeypatch):
        database, run_id = _collected_workload(tmp_path)

        def explode(chain_uuid, records):
            raise RuntimeError(f"worker died on {chain_uuid}")

        monkeypatch.setattr(
            parallel_mod.statemachine, "reconstruct_chain", explode
        )
        with pytest.raises(RuntimeError, match="worker died"):
            reconstruct_sharded(database, run_id, workers=3, oversubscribe=True)

    def test_partial_failure_does_not_drop_chains(self, tmp_path, monkeypatch):
        """A failure in one shard must not yield a silently truncated DSCG."""
        database, run_id = _collected_workload(tmp_path)
        real = parallel_mod.statemachine.reconstruct_chain
        calls = {"n": 0}

        def flaky(chain_uuid, records):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ValueError("flaky shard")
            return real(chain_uuid, records)

        monkeypatch.setattr(parallel_mod.statemachine, "reconstruct_chain", flaky)
        with pytest.raises(ValueError, match="flaky shard"):
            reconstruct_sharded(database, run_id, workers=2, oversubscribe=True)
