"""Unit tests for CCSG aggregation and the Figure-6 XML rendering."""

from repro.analysis import (
    CpuAnalysis,
    build_ccsg,
    reconstruct_from_records,
    render_ccsg_xml,
    split_sec_usec,
)
from repro.analysis.xmlview import parse_ccsg_xml
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def dscg_for(calls, **kwargs):
    sim = simulate(calls, mode=MonitorMode.CPU, **kwargs)
    return reconstruct_from_records(sim.records)


class TestCcsgAggregation:
    def test_repeated_invocations_aggregate(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=100, children=(
                Call("I::G", cpu_ns=10),
                Call("I::G", cpu_ns=20),
            ))]
        )
        ccsg = build_ccsg(dscg)
        (f_node,) = ccsg.find("I", "F")
        (g_node,) = ccsg.find("I", "G")
        assert f_node.invocation_times == 1
        assert g_node.invocation_times == 2
        assert g_node.self_cpu.by_processor == {"PA-RISC": 30}

    def test_distinct_objects_stay_separate(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=1, object_id="obj-A"),
             Call("I::F", cpu_ns=2, object_id="obj-B")]
        )
        ccsg = build_ccsg(dscg)
        assert len(ccsg.find("I", "F")) == 2

    def test_hierarchy_follows_call_structure(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=1, children=(Call("I::G", cpu_ns=2),))]
        )
        ccsg = build_ccsg(dscg)
        (f_node,) = ccsg.find("I", "F")
        assert [c.function for c in f_node.child_list()] == ["I::G"]

    def test_same_function_on_different_paths_not_merged(self):
        dscg = dscg_for(
            [Call("I::A", children=(Call("I::C", cpu_ns=1),)),
             Call("I::B", children=(Call("I::C", cpu_ns=2),))]
        )
        ccsg = build_ccsg(dscg)
        c_nodes = ccsg.find("I", "C")
        assert len(c_nodes) == 2  # one per call path, as in a CCSG

    def test_descendant_vector_aggregated(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=5, children=(Call("I::G", cpu_ns=95),))]
        )
        ccsg = build_ccsg(dscg)
        (f_node,) = ccsg.find("I", "F")
        assert f_node.descendant_cpu.by_processor == {"PA-RISC": 95}

    def test_total_self_cpu_matches_analysis(self):
        dscg = dscg_for([Call("I::F", cpu_ns=40, children=(Call("I::G", cpu_ns=60),))])
        cpu = CpuAnalysis(dscg)
        ccsg = build_ccsg(dscg, cpu)
        assert ccsg.total_self_cpu().total_ns() == cpu.total_by_processor().total_ns()


class TestSecUsecFormat:
    def test_split(self):
        assert split_sec_usec(0) == (0, 0)
        assert split_sec_usec(1_500) == (0, 1)
        assert split_sec_usec(2_000_001_000) == (2, 1)
        assert split_sec_usec(999_999_999) == (0, 999_999)


class TestXmlRendering:
    def make_xml(self):
        dscg = dscg_for(
            [Call("PPS::Interp::interpret", cpu_ns=1_500_000, children=(
                Call("PPS::Fonts::load", cpu_ns=2_000_000),
            ))]
        )
        ccsg = build_ccsg(dscg)
        return render_ccsg_xml(ccsg, description="unit test")

    def test_document_structure(self):
        document = self.make_xml()
        root = parse_ccsg_xml(document)
        assert root.tag == "CCSG"
        assert root.get("description") == "unit test"
        function = root.find("Function")
        assert function.get("interface") == "PPS::Interp"
        assert function.get("name") == "interpret"
        assert function.get("InvocationTimes") == "1"
        assert function.get("ObjectID")

    def test_sec_usec_attributes(self):
        root = parse_ccsg_xml(self.make_xml())
        function = root.find("Function")
        self_cpu = function.find("SelfCPUConsumption")
        assert self_cpu.get("seconds") == "0"
        assert self_cpu.get("microseconds") == "1500"
        descendant = function.find("DescendentCPUConsumption")
        assert descendant.get("microseconds") == "2000"

    def test_nested_function_elements(self):
        root = parse_ccsg_xml(self.make_xml())
        child = root.find("Function").find("Function")
        assert child is not None
        assert child.get("name") == "load"

    def test_included_instances_count(self):
        root = parse_ccsg_xml(self.make_xml())
        instances = root.find("Function").find("IncludedFunctionInstances")
        assert instances.get("count") == "1"
