"""Unit tests for streaming reconstruction, detection and ranking."""

import random
from collections import defaultdict

import pytest

from repro.analysis.dscg import Dscg
from repro.analysis.quantiles import P2Quantile
from repro.analysis.serialize import dscg_to_json
from repro.analysis.statemachine import reconstruct_chain
from repro.analysis.streaming import (
    CausalRanker,
    DetectionConfig,
    RollingBaseline,
    StreamingDetector,
    StreamingReconstructor,
    WindowCompletion,
    incident_from_dict,
    incidents_from_json,
    incidents_to_json,
)
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def records_for(calls):
    return simulate(
        calls, mode=MonitorMode.LATENCY, fresh_chain_per_top_call=True
    ).records


MIXED_WORKLOAD = [
    Call(
        "I::F",
        cpu_ns=100,
        children=(
            Call("I::G", cpu_ns=50, children=(Call("I::H", cpu_ns=10),)),
            Call("I::G", cpu_ns=70),
        ),
    ),
    Call("I::W", cpu_ns=30, oneway=True),
    Call("I::C", cpu_ns=20, collocated=True),
    Call("I::F", cpu_ns=200),
]


class TestStreamingReconstructor:
    def _batch(self, records):
        groups = defaultdict(list)
        for record in records:
            groups[record.chain_uuid].append(record)
        dscg = Dscg()
        for chain_uuid in sorted(groups):
            dscg.add_chain(
                reconstruct_chain(
                    chain_uuid,
                    sorted(groups[chain_uuid], key=lambda r: r.event_seq),
                )
            )
        dscg.link_chains()
        return dscg

    def test_in_order_stream_matches_batch(self):
        records = records_for(MIXED_WORKLOAD)
        streaming = StreamingReconstructor()
        streaming.ingest_many(records)
        assert dscg_to_json(streaming.finalize()) == dscg_to_json(
            self._batch(records)
        )

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_shuffled_stream_matches_batch(self, seed):
        records = records_for(MIXED_WORKLOAD)
        shuffled = list(records)
        random.Random(seed).shuffle(shuffled)
        streaming = StreamingReconstructor()
        streaming.ingest_many(shuffled)
        assert dscg_to_json(streaming.finalize()) == dscg_to_json(
            self._batch(records)
        )

    def test_completion_hook_fires_in_record_order(self):
        completions = []
        streaming = StreamingReconstructor(
            on_complete=lambda node, record, index: completions.append(
                (node.function, index)
            )
        )
        streaming.ingest_many(records_for(MIXED_WORKLOAD))
        dscg = streaming.finalize()
        assert len(completions) == dscg.node_count()
        indices = [index for _, index in completions]
        assert indices == sorted(indices)
        # Children complete before their parents.
        assert completions[0][0] == "I::H"

    def test_live_views_mid_stream(self):
        records = records_for([Call("I::F", cpu_ns=10)])
        streaming = StreamingReconstructor()
        streaming.ingest_many(records[:2])  # stub_start + skel_start
        assert streaming.live_chain_count() == 1
        assert [n.function for n in streaming.open_frames()] == ["I::F"]
        streaming.ingest_many(records[2:])
        assert streaming.live_chain_count() == 0
        assert streaming.completed_nodes() == 1

    def test_pending_bounded_with_drop_accounting(self):
        records = records_for([Call("I::F", cpu_ns=10, children=(Call("I::G"),))])
        streaming = StreamingReconstructor(max_pending=2)
        for record in records[1:]:  # withhold seq 0: everything buffers
            streaming.ingest(record)
        stats = streaming.stats()
        assert stats["pending_records"] == 2
        assert stats["pending_dropped"] == len(records) - 3

    def test_finalize_idempotent_and_seals_ingest(self):
        records = records_for([Call("I::F", cpu_ns=10)])
        streaming = StreamingReconstructor()
        streaming.ingest_many(records)
        first = streaming.finalize()
        assert streaming.finalize() is first
        with pytest.raises(RuntimeError):
            streaming.ingest(records[0])

    def test_finalize_flushes_stalled_pending(self):
        records = records_for([Call("I::F", cpu_ns=10)])
        streaming = StreamingReconstructor()
        streaming.ingest_many(records[1:])  # gap record never arrives
        dscg = streaming.finalize()
        # The survivors went through the machine; the chain is salvaged.
        assert dscg.node_count() >= 1
        assert streaming.pending_records() == 0


class TestRollingBaseline:
    def test_score_is_robust_z_before_observe(self):
        baseline = RollingBaseline(window=8)
        for value in (100, 102, 98, 101, 99, 100, 100, 101):
            baseline.observe(value)
        assert abs(baseline.score(100)) < 1.0
        assert baseline.score(10_000) > 100.0

    def test_flat_window_mad_floor(self):
        baseline = RollingBaseline(window=8)
        for _ in range(8):
            baseline.observe(100)
        assert baseline.mad() == 0.0
        # Floor = max(1% of median, 1.0): a genuine spike still scores.
        assert baseline.score(1_000) > 4.0

    def test_window_eviction(self):
        baseline = RollingBaseline(window=4)
        for value in (1, 2, 3, 4, 5, 6):
            baseline.observe(value)
        assert baseline.count == 4
        assert baseline.median() == 4.5

    def test_median_resists_outlier_poisoning(self):
        baseline = RollingBaseline(window=16)
        for _ in range(12):
            baseline.observe(100)
        for _ in range(4):  # an incident in progress
            baseline.observe(1_000_000)
        assert baseline.median() == 100
        assert baseline.score(1_000_000) > 4.0  # still detected

    def test_tiny_window_rejected(self):
        with pytest.raises(ValueError):
            RollingBaseline(window=3)


class TestP2Quantile:
    def test_exact_for_small_counts(self):
        quantile = P2Quantile(0.5)
        for value in (5, 1, 3):
            quantile.observe(value)
        assert quantile.value() == 3

    def test_empty_is_zero(self):
        assert P2Quantile(0.5).value() == 0.0

    @pytest.mark.parametrize("p,expected", [(0.5, 500), (0.95, 950), (0.99, 990)])
    def test_accuracy_on_uniform_stream(self, p, expected):
        values = list(range(1, 1001))
        random.Random(1).shuffle(values)
        quantile = P2Quantile(p)
        for value in values:
            quantile.observe(value)
        assert abs(quantile.value() - expected) <= 30

    def test_deterministic_given_sequence(self):
        values = list(range(1, 501))
        random.Random(9).shuffle(values)
        first, second = P2Quantile(0.95), P2Quantile(0.95)
        for value in values:
            first.observe(value)
            second.observe(value)
        assert first.value() == second.value()

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(1.0)


def _completion(index, function, component, chain, latency, self_ns, z):
    return WindowCompletion(
        completion_index=index,
        record_index=index * 4,
        function=function,
        component=component,
        chain_uuid=chain,
        latency_ns=latency,
        self_ns=self_ns,
        z=z,
    )


class TestCausalRanker:
    def test_self_time_culprit_outranks_inheriting_ancestor(self):
        completions = []
        for i in range(10):
            spiking = i >= 5
            latency = 1_000_000 if spiking else 2_000
            z = 50.0 if spiking else 0.0
            chain = f"chain-{i:02d}"
            # The culprit holds nearly all the self time...
            completions.append(
                _completion(3 * i, "I::Back", "BackComp", chain, latency, latency - 500, z)
            )
            # ...its caller inherits the latency but spends nothing itself.
            completions.append(
                _completion(3 * i + 1, "I::Front", "FrontComp", chain, latency + 500, 500, z)
            )
        implicated = {f"chain-{i:02d}" for i in range(5, 10)}
        causes = CausalRanker().rank(completions, "I::Front", implicated)
        assert causes[0].component == "BackComp"
        assert causes[0].score > causes[1].score
        assert causes[0].resource_share > 0.9

    def test_only_implicated_chains_are_candidates(self):
        completions = [
            _completion(0, "I::A", "CompA", "chain-in", 100, 100, 5.0),
            _completion(1, "I::B", "CompB", "chain-out", 100, 100, 5.0),
        ]
        causes = CausalRanker().rank(completions, "I::A", {"chain-in"})
        assert [c.component for c in causes] == ["CompA"]

    def test_empty_window_ranks_nothing(self):
        assert CausalRanker().rank([], "I::A", {"c"}) == []

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            CausalRanker(weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            CausalRanker(weights=(-0.1, 0.6, 0.5))


CFG = DetectionConfig(window=16, min_samples=4, z_threshold=4.0, persistence=2,
                      cooldown=3)


class TestStreamingDetector:
    def _run(self, calls, config=CFG, registry=None):
        detector = StreamingDetector(config, registry=registry)
        detector.ingest_many(records_for(calls))
        detector.finalize()
        return detector

    def test_sustained_spike_opens_and_cooldown_closes(self):
        calls = (
            [Call("I::F", cpu_ns=100) for _ in range(8)]
            + [Call("I::F", cpu_ns=50_000) for _ in range(3)]
            + [Call("I::F", cpu_ns=100) for _ in range(6)]
        )
        detector = self._run(calls)
        assert len(detector.incidents) == 1
        incident = detector.incidents[0]
        assert incident.function == "I::F"
        assert incident.closed_by == "cooldown"
        assert incident.trigger_latency_ns == 50_000
        assert incident.peak_z >= CFG.z_threshold
        assert incident.root_cause is not None
        assert incident.root_cause.component == "Comp"
        assert incident.implicated_chains  # the spiking chains

    def test_single_spike_filtered_by_persistence(self):
        calls = (
            [Call("I::F", cpu_ns=100) for _ in range(8)]
            + [Call("I::F", cpu_ns=50_000)]
            + [Call("I::F", cpu_ns=100) for _ in range(8)]
        )
        assert self._run(calls).incidents == []

    def test_warmup_never_alarms(self):
        config = DetectionConfig(window=16, min_samples=8, z_threshold=4.0,
                                 persistence=1, cooldown=3)
        calls = [Call("I::F", cpu_ns=100 if i % 2 else 90_000) for i in range(6)]
        assert self._run(calls, config).incidents == []

    def test_finalize_closes_open_incident(self):
        calls = [Call("I::F", cpu_ns=100) for _ in range(8)] + [
            Call("I::F", cpu_ns=50_000) for _ in range(4)
        ]
        detector = self._run(calls)
        assert len(detector.incidents) == 1
        assert detector.incidents[0].closed_by == "finalize"
        assert detector.open_incident_count() == 0

    def test_reports_deterministic_across_replays(self):
        calls = (
            [Call("I::F", cpu_ns=100) for _ in range(8)]
            + [Call("I::F", cpu_ns=50_000) for _ in range(3)]
            + [Call("I::F", cpu_ns=100) for _ in range(6)]
        )
        first = incidents_to_json(self._run(calls).incidents, run_id="r")
        second = incidents_to_json(self._run(calls).incidents, run_id="r")
        assert first == second

    def test_report_json_roundtrip(self):
        calls = [Call("I::F", cpu_ns=100) for _ in range(8)] + [
            Call("I::F", cpu_ns=50_000) for _ in range(3)
        ]
        incidents = self._run(calls).incidents
        document = incidents_to_json(incidents, run_id="r")
        restored = incidents_from_json(document)
        assert [r.to_dict() for r in restored] == [r.to_dict() for r in incidents]
        assert restored[0].incident_id == incidents[0].incident_id
        assert incident_from_dict(incidents[0].to_dict()).to_dict() == (
            incidents[0].to_dict()
        )

    def test_metrics_registry_wiring(self):
        from repro.telemetry import render_prometheus
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        calls = [Call("I::F", cpu_ns=100) for _ in range(8)] + [
            Call("I::F", cpu_ns=50_000) for _ in range(3)
        ]
        self._run(calls, registry=registry)
        body = render_prometheus(registry)
        assert "repro_streaming_incidents_total 1" in body
        assert "repro_streaming_records_total" in body
        assert "repro_streaming_anomalous_completions_total" in body
