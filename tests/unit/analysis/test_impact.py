"""Unit tests for CPU impact estimation."""

import pytest

from repro.analysis import reconstruct_from_records
from repro.analysis.impact import ImpactEstimator, render_impact
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def dscg_for(calls, **kwargs):
    sim = simulate(calls, mode=MonitorMode.CPU, **kwargs)
    return reconstruct_from_records(sim.records)


@pytest.fixture
def estimator():
    dscg = dscg_for(
        [
            Call("I::root", cpu_ns=100, children=(
                Call("I::hot", cpu_ns=600),
                Call("I::warm", cpu_ns=200, children=(Call("I::hot", cpu_ns=400),)),
            )),
            Call("I::other", cpu_ns=300),
        ],
        fresh_chain_per_top_call=True,
    )
    return ImpactEstimator(dscg)


class TestEstimate:
    def test_halving_a_function(self, estimator):
        report = estimator.estimate("I::hot", scale=0.5)
        assert report.system.invocation_count == 2
        assert report.system.total_self_cpu_ns == 1_000
        assert report.system.saving_ns == 500
        assert report.system.system_total_ns == 1_600
        assert report.system.projected_system_total_ns == 1_100

    def test_removal_entirely(self, estimator):
        report = estimator.estimate("I::hot", scale=0.0)
        assert report.system.saving_ns == 1_000

    def test_regression_scale(self, estimator):
        report = estimator.estimate("I::hot", scale=2.0)
        assert report.system.saving_ns == -1_000
        assert report.system.projected_system_total_ns == 2_600

    def test_unknown_function_is_zero(self, estimator):
        report = estimator.estimate("I::ghost", scale=0.5)
        assert report.system.invocation_count == 0
        assert report.system.saving_ns == 0

    def test_negative_scale_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate("I::hot", scale=-0.1)

    def test_per_chain_projection(self, estimator):
        report = estimator.estimate("I::hot", scale=0.5)
        savings = sorted(chain.saving_ns for chain in report.chains)
        # hot appears only in chain 1 (total self 1000 -> saving 500);
        # chain 2 ("other") is untouched.
        assert savings == [0, 500]
        best = report.most_improved_chain()
        assert best.saving_ns == 500
        assert best.original_total_ns == 1_300

    def test_system_share(self, estimator):
        report = estimator.estimate("I::other", scale=0.5)
        assert report.system.system_share == pytest.approx(300 / 1_600)


class TestRanking:
    def test_rank_by_saving(self, estimator):
        ranked = estimator.rank_by_saving(scale=0.5, top=3)
        assert ranked[0].function == "I::hot"
        assert ranked[0].saving_ns == 500
        assert len(ranked) == 3

    def test_top_limit(self, estimator):
        assert len(estimator.rank_by_saving(top=1)) == 1


class TestRendering:
    def test_render(self, estimator):
        text = render_impact(estimator.estimate("I::hot", scale=0.5))
        assert "what-if: I::hot self CPU x0.5" in text
        assert "projected saving" in text
        assert "most improved chain" in text
