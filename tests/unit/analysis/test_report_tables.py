"""Unit tests for the text report tables."""

from repro.analysis import reconstruct_from_records
from repro.analysis.report import cpu_table, latency_table
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def dscg_for(calls, mode):
    sim = simulate(calls, mode=mode)
    return reconstruct_from_records(sim.records)


class TestLatencyTable:
    def test_rows_sorted_by_total(self):
        dscg = dscg_for(
            [Call("I::cheap", cpu_ns=10), Call("I::hot", cpu_ns=10_000),
             Call("I::hot", cpu_ns=10_000)],
            MonitorMode.LATENCY,
        )
        text = latency_table(dscg)
        lines = text.splitlines()
        assert lines[0].startswith("function")
        # I::hot (20us total) must come before I::cheap
        assert lines[2].startswith("I::hot")
        assert "2" in lines[2]  # call count

    def test_limit_respected(self):
        dscg = dscg_for(
            [Call(f"I::op{i}", cpu_ns=10 + i) for i in range(10)],
            MonitorMode.LATENCY,
        )
        text = latency_table(dscg, limit=3)
        assert len(text.splitlines()) == 2 + 3

    def test_empty_dscg(self):
        from repro.analysis.dscg import Dscg

        text = latency_table(Dscg())
        assert "function" in text


class TestCpuTable:
    def test_breakdown_per_processor(self):
        dscg = dscg_for([Call("I::work", cpu_ns=3_000_000)], MonitorMode.CPU)
        text = cpu_table(dscg)
        assert "I::work" in text
        assert "PA-RISC" in text
        assert "[0, 3000]" in text  # [sec, usec] rendering

    def test_functions_without_cpu_shown_as_no_data(self):
        from repro.platform import PlatformKind

        sim = simulate([Call("I::dark", cpu_ns=100)], mode=MonitorMode.CPU,
                       platform=PlatformKind.VXWORKS)
        dscg = reconstruct_from_records(sim.records)
        text = cpu_table(dscg)
        assert "I::dark" in text
        assert "(no data)" in text
