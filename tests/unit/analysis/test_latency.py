"""Unit tests for end-to-end latency computation (Section 3.2)."""

from repro.analysis import (
    annotate_latency,
    causality_overhead,
    end_to_end_latency,
    latency_report,
    reconstruct_from_records,
)
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def dscg_for(calls, **kwargs):
    sim = simulate(calls, mode=MonitorMode.LATENCY, **kwargs)
    return reconstruct_from_records(sim.records)


def only_node(dscg, function):
    (node,) = [n for n in dscg.walk() if n.function == function]
    return node


class TestSyncLatency:
    def test_leaf_latency_equals_work(self):
        dscg = dscg_for([Call("I::F", cpu_ns=500)])
        assert end_to_end_latency(only_node(dscg, "I::F")) == 500

    def test_latency_includes_idle_wall_time(self):
        dscg = dscg_for([Call("I::F", cpu_ns=100, idle_ns=400)])
        assert end_to_end_latency(only_node(dscg, "I::F")) == 500

    def test_parent_latency_compensates_child_probe_overhead(self):
        # On the virtual clock probes are zero-duration, so O_F == 0 and
        # the parent's latency is exactly its own plus its child's work.
        dscg = dscg_for([Call("I::F", cpu_ns=100, children=(Call("I::G", cpu_ns=50),))])
        f = only_node(dscg, "I::F")
        assert causality_overhead(f) == 0
        assert end_to_end_latency(f) == 150

    def test_overhead_term_subtracts_child_probe_costs(self):
        dscg = dscg_for([Call("I::F", cpu_ns=100, children=(Call("I::G", cpu_ns=50),))])
        f = only_node(dscg, "I::F")
        g = only_node(dscg, "I::G")
        # Inflate each of G's probe intervals artificially by 10ns.
        for record in g.records.values():
            record.wall_end += 10
        assert causality_overhead(f) == 40
        assert end_to_end_latency(f) == 150 - 40

    def test_missing_wall_readings_yield_none(self):
        sim = simulate([Call("I::F")], mode=MonitorMode.CAUSALITY)
        dscg = reconstruct_from_records(sim.records)
        assert end_to_end_latency(only_node(dscg, "I::F")) is None


class TestCollocatedLatency:
    def test_collocated_uses_skeleton_window(self):
        dscg = dscg_for([Call("I::F", cpu_ns=300, collocated=True)])
        assert end_to_end_latency(only_node(dscg, "I::F")) == 300


class TestOnewayLatency:
    def test_stub_side_measures_send_window(self):
        dscg = dscg_for([Call("I::cast", oneway=True, cpu_ns=900)])
        # Simulator fires stub_end immediately after stub_start: the
        # stub-side latency is the send cost, not the execution.
        stub_nodes = [n for n in dscg.walk() if n.oneway_side == "stub"]
        assert end_to_end_latency(stub_nodes[0]) == 0

    def test_skel_side_measures_execution(self):
        dscg = dscg_for([Call("I::cast", oneway=True, cpu_ns=900)])
        skel_nodes = [n for n in dscg.walk() if n.oneway_side == "skel"]
        assert end_to_end_latency(skel_nodes[0]) == 900


class TestReports:
    def test_annotate_sets_attribute(self):
        dscg = dscg_for([Call("I::F", cpu_ns=10)])
        annotate_latency(dscg)
        assert only_node(dscg, "I::F").latency_ns == 10

    def test_report_aggregates_per_function(self):
        dscg = dscg_for(
            [Call("I::F", cpu_ns=100), Call("I::F", cpu_ns=300), Call("I::G", cpu_ns=50)]
        )
        report = latency_report(dscg)
        f = report["I::F"]
        assert f.count == 2
        assert f.total_ns == 400
        assert f.mean_ns == 200
        assert f.min_ns == 100
        assert f.max_ns == 300
        assert report["I::G"].count == 1

    def test_report_skips_unmeasurable(self):
        sim = simulate([Call("I::F")], mode=MonitorMode.CAUSALITY)
        dscg = reconstruct_from_records(sim.records)
        assert latency_report(dscg) == {}
