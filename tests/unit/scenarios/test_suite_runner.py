"""Unit tests for the declarative suite runner's moving parts.

Covers the pieces the committed suites rely on but don't isolate:
registry agreement between the config constants and the actual
implementations, grid expansion and validation, seed derivation, hook
behavior against live backends, and report assembly.
"""

import json

import pytest

from repro.scenarios import (
    BACKEND_NAMES,
    CHECKERS,
    HOOK_KINDS,
    INVARIANT_NAMES,
    UNSUPPORTED_POLICIES,
    WORKLOAD_NAMES,
    WORKLOADS,
    FaultSpec,
    GridConfig,
    HookSpec,
    InvariantSpec,
    PolicySpec,
    SuiteConfig,
    SuiteError,
    WorkloadSpec,
    derive_seed,
    dump_yaml,
    expand_grid,
    load_suite,
    loads,
    run_scenario,
    run_suite,
)
from repro.scenarios.hooks import make_hook


def _suite(**overrides):
    base = dict(
        name="unit",
        seed=7,
        grids=(
            GridConfig(
                name="g",
                workloads=(WorkloadSpec("corba", {"style": "sync", "calls": 4}),),
                backends=("sqlite",),
                invariants=(InvariantSpec("loss_accounting"),),
            ),
        ),
    )
    base.update(overrides)
    return SuiteConfig(**base)


class TestRegistries:
    """The declarative names and the implementations cannot drift."""

    def test_every_workload_name_has_an_implementation(self):
        assert set(WORKLOAD_NAMES) == set(WORKLOADS)

    def test_every_hook_kind_constructs(self):
        for kind in HOOK_KINDS:
            params = {"scope": "a->b"} if kind == "windowed_delay" else {}
            hook = make_hook(HookSpec(kind, params=params))
            assert hook.spec.kind == kind

    def test_every_checker_is_a_registered_invariant(self):
        # deterministic_accounting is implemented by the executor (it
        # re-runs the scenario), so it is a name without a checker.
        assert set(CHECKERS) == set(INVARIANT_NAMES) - {"deterministic_accounting"}

    def test_unsupported_policies_reference_real_axes(self):
        for workload, cells in UNSUPPORTED_POLICIES.items():
            assert workload in WORKLOAD_NAMES
            for channel, threading in cells:
                PolicySpec(channel=channel, threading=threading)  # validates


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(SuiteError, match="unknown workload"):
            WorkloadSpec("nosuch")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SuiteError, match="unknown backend"):
            GridConfig(name="g", workloads=(WorkloadSpec("corba"),),
                       backends=("oracle",))

    def test_fault_rates_validated(self):
        with pytest.raises(SuiteError, match="unknown kind"):
            FaultSpec("f", rates={"melt": 0.5})
        with pytest.raises(SuiteError, match="out of"):
            FaultSpec("f", rates={"drop": 1.5})

    def test_collector_failover_needs_drain_failures(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba"),),
            hooks=(HookSpec("collector_failover"),),
        ),))
        with pytest.raises(SuiteError, match="collect_fail_attempts"):
            expand_grid(config)

    def test_windowed_delay_needs_scope(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba"),),
            hooks=(HookSpec("windowed_delay"),),
        ),))
        with pytest.raises(SuiteError, match="scope"):
            expand_grid(config)

    def test_embedded_mux_per_connection_rejected(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("embedded"),),
            policies=(PolicySpec(channel="mux", threading="per-connection"),),
        ),))
        with pytest.raises(SuiteError, match="does not support"):
            expand_grid(config)

    def test_duplicate_grid_names_rejected(self):
        grid = GridConfig(name="g", workloads=(WorkloadSpec("corba"),))
        with pytest.raises(SuiteError, match="duplicate grid names"):
            SuiteConfig(name="s", grids=(grid, grid))


class TestExpansion:
    def test_nested_axis_order(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba", {"style": "sync"}),
                       WorkloadSpec("corba", {"style": "oneway"}),),
            backends=("sqlite", "segment"),
            faults=(FaultSpec("a"), FaultSpec("b")),
        ),))
        ids = [s.scenario_id for s in expand_grid(config)]
        # workload slowest, fault fastest
        assert ids[0].endswith("|a") and ids[1].endswith("|b")
        assert ids[0].split("|")[1] == "sqlite" and ids[2].split("|")[1] == "segment"
        assert len(ids) == 8
        assert [s.index for s in expand_grid(config)] == list(range(8))

    def test_seed_derivation_is_stable_and_spread(self):
        assert derive_seed(2003, 0) == derive_seed(2003, 0)
        seeds = {derive_seed(2003, i) for i in range(100)}
        assert len(seeds) == 100
        assert derive_seed(2003, 0) != derive_seed(2004, 0)

    def test_seed_override_rederives_every_cell(self):
        config = _suite()
        a = expand_grid(config)
        b = expand_grid(config, seed=999)
        assert [s.scenario_id for s in a] == [s.scenario_id for s in b]
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_hooks_scoped_by_fault_name(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba"),),
            faults=(FaultSpec("quiet"),
                    FaultSpec("outage", collect_fail_attempts=2)),
            hooks=(HookSpec("collector_failover", when_faults=("outage",)),),
        ),))
        by_fault = {s.fault.name: s.hooks for s in expand_grid(config)}
        assert by_fault["quiet"] == ()
        assert [h.kind for h in by_fault["outage"]] == ["collector_failover"]


class TestYaml:
    def test_round_trip(self):
        config = _suite()
        assert loads(dump_yaml(config)) == config

    def test_malformed_yaml_raises_suite_error(self):
        with pytest.raises(SuiteError, match="invalid suite YAML"):
            loads("{ name: [unclosed ")
        with pytest.raises(SuiteError, match="mapping with a 'name'"):
            loads("- just\n- a\n- list\n")

    def test_load_suite_reads_files(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text(dump_yaml(_suite()))
        assert load_suite(str(path)) == _suite()


class TestExecutor:
    def test_single_scenario_runs_and_reports(self):
        (spec,) = expand_grid(_suite())
        outcome = run_scenario(spec)
        assert outcome.passed
        assert outcome.scenario_id == spec.scenario_id
        assert outcome.accounting["results"] == [0, 2, 4, 6]
        assert [r.name for r in outcome.invariants] == ["loss_accounting"]

    def test_only_filter_and_no_match(self):
        config = _suite()
        report = run_suite(config, only="corba")
        assert len(report.outcomes) == 1
        with pytest.raises(SuiteError, match="no scenarios"):
            run_suite(config, only="nope")

    def test_report_json_is_stable_across_workers(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba", {"style": "sync", "calls": 4}),
                       WorkloadSpec("corba", {"style": "oneway", "calls": 4}),),
            backends=("sqlite", "segment"),
            invariants=(InvariantSpec("loss_accounting"),
                        InvariantSpec("streaming_batch_equivalence"),),
        ),))
        serial = run_suite(config, workers=1).to_json()
        pooled = run_suite(config, workers=3).to_json()
        assert serial == pooled
        parsed = json.loads(serial)
        assert parsed["passed"] is True
        assert parsed["scenarios"] == 4

    def test_failing_invariant_fails_the_scenario(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba", {"style": "sync", "calls": 4}),),
            invariants=(InvariantSpec("latency_slo",
                                      {"max_p95_ms": 0.000001}),),
        ),))
        report = run_suite(config)
        assert not report.passed
        assert [o.scenario_id for o in report.failures()] == [
            "g/corba(calls=4,style=sync)|sqlite|mux/per-connection|none"
        ]


class TestHooks:
    def _outcome(self, workload, fault, hook, backend="sqlite"):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(workload,),
            backends=(backend,),
            faults=(fault,) if fault is not None else (),
            hooks=(hook,),
        ),))
        report = run_suite(config)
        (outcome,) = report.outcomes
        return outcome

    def test_compaction_hook_verifies_scan_identity(self):
        outcome = self._outcome(
            WorkloadSpec("corba", {"style": "sync", "calls": 4}),
            None, HookSpec("compaction"), backend="segment",
        )
        (event,) = outcome.hook_events
        assert event["hook"] == "compaction"
        assert event["compacted"] and event["identical_scan"]
        assert outcome.passed

    def test_compaction_hook_skips_sqlite(self):
        outcome = self._outcome(
            WorkloadSpec("corba", {"style": "sync", "calls": 4}),
            None, HookSpec("compaction"), backend="sqlite",
        )
        (event,) = outcome.hook_events
        assert event["skipped"]

    def test_collector_failover_records_primary_failure(self):
        outcome = self._outcome(
            WorkloadSpec("corba", {"style": "sync", "calls": 4}),
            FaultSpec("outage", collect_fail_attempts=2),
            HookSpec("collector_failover"),
        )
        (event,) = outcome.hook_events
        assert event["hook"] == "collector_failover"
        assert event["primary_failed_drains"]
        assert event["primary_uncollected"] > 0
        assert outcome.passed  # standby drained everything

    def test_windowed_delay_emits_window(self):
        outcome = self._outcome(
            WorkloadSpec("corba", {"style": "sync", "calls": 8}),
            FaultSpec("windowed"),
            HookSpec("windowed_delay",
                     params={"scope": "client->server", "width": 3}),
        )
        (event,) = outcome.hook_events
        assert event["hook"] == "windowed_delay"
        assert event["width"] == 3
        assert event["window_start"] >= 4  # after warmup
        assert outcome.passed


class TestAsyncioPolicyAxis:
    """The asyncio channel/threading axes: accepted, gated, runnable."""

    def test_asyncio_policy_spec_validates(self):
        spec = PolicySpec(channel="asyncio", threading="asyncio")
        assert spec.label == "asyncio/asyncio"

    def test_asyncio_corba_grid_expands(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba", {"style": "sync", "calls": 4}),),
            policies=(
                PolicySpec(channel="asyncio", threading="asyncio"),
                PolicySpec(channel="asyncio", threading="pool", pool_threads=2),
            ),
            invariants=(InvariantSpec("loss_accounting"),),
        ),))
        scenarios = expand_grid(config)
        assert {s.policy.label for s in scenarios} == {
            "asyncio/asyncio", "asyncio/pool"
        }

    def test_embedded_asyncio_rejected(self):
        for channel, threading in (
            ("asyncio", "asyncio"),
            ("asyncio", "pool"),
            ("mux", "asyncio"),
        ):
            config = _suite(grids=(GridConfig(
                name="g",
                workloads=(WorkloadSpec("embedded"),),
                policies=(PolicySpec(channel=channel, threading=threading),),
            ),))
            with pytest.raises(SuiteError, match="does not support"):
                expand_grid(config)

    def test_asyncio_corba_cell_runs_and_holds_invariants(self):
        config = _suite(grids=(GridConfig(
            name="g",
            workloads=(WorkloadSpec("corba", {"style": "sync", "calls": 6}),),
            policies=(PolicySpec(channel="asyncio", threading="asyncio"),),
            invariants=(InvariantSpec("loss_accounting"),),
        ),))
        (scenario,) = expand_grid(config)
        outcome = run_scenario(scenario)
        assert outcome.passed, [r.name for r in outcome.invariants if not r.passed]
        assert not outcome.accounting["collection"]["failed_drains"]
        assert outcome.accounting["stats"]["chains"] > 0
