"""The real-socket transport preserves message boundaries over TCP.

The channels above the network seam assume message semantics — one
``send`` is one ``recv``. TCP coalesces and fragments arbitrarily, so
the property that matters is: *however* the framed byte stream is cut
into segments, the accept side re-slices it into exactly the sent
messages (checked against the blocking reference decoder, like the
asyncio plane's own fragmentation suite — the same parser runs both
layers). The rest pins the connection lifecycle the channels rely on:
timeouts, half-close, send-after-close, endpoint resolution.
"""

from __future__ import annotations

import queue
import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.transport import SocketTransport
from repro.errors import TransportError
from repro.orb.aio.framing import (
    MAX_FRAME_BYTES,
    frame_message,
    parse_frames_blocking,
)

_HELLO = frame_message(b'{"client_label": "raw-client"}')


def _fragment(stream: bytes, cuts: list[int]) -> list[bytes]:
    """Split ``stream`` at the (normalized) cut offsets."""
    points = sorted({min(c % (len(stream) + 1), len(stream)) for c in cuts})
    chunks = []
    prev = 0
    for point in points:
        chunks.append(stream[prev:point])
        prev = point
    chunks.append(stream[prev:])
    return [c for c in chunks if c]


@pytest.fixture(scope="module")
def listener():
    """One shared listening transport; accepted connections via a queue."""
    transport = SocketTransport()
    accepted: queue.Queue = queue.Queue()
    transport.listen("svc", accepted.put)
    host, port = transport.local_endpoints()["svc"]
    yield (host, port), accepted
    transport.close()


class TestLoopbackFragmentation:
    @given(
        payloads=st.lists(
            st.binary(min_size=0, max_size=64), min_size=1, max_size=8
        ),
        cuts=st.lists(st.integers(min_value=0, max_value=10_000), max_size=24),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_segmentation_reslices_to_sent_messages(
        self, listener, payloads, cuts
    ):
        (host, port), accepted = listener
        framed = b"".join(frame_message(p) for p in payloads)
        # The hello shares the stream with the data frames, so cuts can
        # land inside the handshake too — the over-read path is under test.
        stream = _HELLO + framed
        client = socket.create_connection((host, port), timeout=5.0)
        try:
            for chunk in _fragment(stream, cuts):
                client.sendall(chunk)
            conn = accepted.get(timeout=5.0)
            try:
                received = [conn.recv(timeout=5.0) for _ in payloads]
                assert received == payloads == parse_frames_blocking(framed)
                assert conn.peer_label == "raw-client"
            finally:
                conn.close()
        finally:
            client.close()

    @given(payload=st.binary(min_size=0, max_size=48))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_one_byte_trickle(self, listener, payload):
        (host, port), accepted = listener
        stream = _HELLO + frame_message(payload)
        client = socket.create_connection((host, port), timeout=5.0)
        try:
            for i in range(len(stream)):
                client.sendall(stream[i : i + 1])
            conn = accepted.get(timeout=5.0)
            try:
                assert conn.recv(timeout=5.0) == payload
            finally:
                conn.close()
        finally:
            client.close()


class TestConnectionLifecycle:
    def _pair(self):
        """A connected (client_conn, server_conn) pair over loopback."""
        server = SocketTransport()
        accepted: queue.Queue = queue.Queue()
        server.listen("svc", accepted.put)
        client = SocketTransport()
        client.set_endpoints(server.local_endpoints())
        client_conn = client.connect("cli", "svc")
        server_conn = accepted.get(timeout=5.0)
        return server, client, client_conn, server_conn

    def test_bidirectional_roundtrip_and_labels(self):
        server, client, c2s, s2c = self._pair()
        try:
            c2s.send(b"ping")
            assert s2c.recv(timeout=5.0) == b"ping"
            s2c.send(b"pong")
            assert c2s.recv(timeout=5.0) == b"pong"
            assert (c2s.local_label, c2s.peer_label) == ("cli", "svc")
            assert (s2c.local_label, s2c.peer_label) == ("svc", "cli")
        finally:
            client.close()
            server.close()

    def test_recv_timeout_keeps_connection_usable(self):
        server, client, c2s, s2c = self._pair()
        try:
            with pytest.raises(TransportError, match="timed out"):
                s2c.recv(timeout=0.05)
            c2s.send(b"late")
            assert s2c.recv(timeout=5.0) == b"late"
        finally:
            client.close()
            server.close()

    def test_peer_close_surfaces_and_stays_closed(self):
        # Half-close regression: the peer's FIN must fail *every* later
        # recv (the sentinel re-arms), and sends must fail fast — the
        # same behaviour a kill -9'd worker's partner observes.
        server, client, c2s, s2c = self._pair()
        try:
            c2s.close()
            with pytest.raises(TransportError, match="closed by peer"):
                s2c.recv(timeout=5.0)
            assert s2c.closed
            with pytest.raises(TransportError, match="closed by peer"):
                s2c.recv(timeout=5.0)
            with pytest.raises(TransportError, match="is closed"):
                s2c.send(b"into the void")
        finally:
            client.close()
            server.close()

    def test_send_after_local_close_raises(self):
        server, client, c2s, _s2c = self._pair()
        try:
            c2s.close()
            with pytest.raises(TransportError, match="is closed"):
                c2s.send(b"x")
        finally:
            client.close()
            server.close()

    def test_corrupt_length_prefix_tears_link_down(self):
        # Stream desync has no recovery point: the reader must drop the
        # link, not guess at the next frame boundary.
        server = SocketTransport()
        accepted: queue.Queue = queue.Queue()
        server.listen("svc", accepted.put)
        host, port = server.local_endpoints()["svc"]
        raw = socket.create_connection((host, port), timeout=5.0)
        try:
            raw.sendall(_HELLO + frame_message(b"good"))
            conn = accepted.get(timeout=5.0)
            assert conn.recv(timeout=5.0) == b"good"
            raw.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"junk")
            with pytest.raises(TransportError, match="closed by peer"):
                conn.recv(timeout=5.0)
        finally:
            raw.close()
            server.close()


class TestTransportSeam:
    def test_connect_unknown_address(self):
        transport = SocketTransport()
        try:
            with pytest.raises(TransportError, match="no listener at nowhere"):
                transport.connect("cli", "nowhere")
        finally:
            transport.close()

    def test_listen_conflict_and_unlisten(self):
        transport = SocketTransport()
        try:
            transport.listen("svc", lambda conn: None)
            with pytest.raises(TransportError, match="already in use"):
                transport.listen("svc", lambda conn: None)
            transport.unlisten("svc")
            with pytest.raises(TransportError, match="no listener at svc"):
                transport.connect("cli", "svc")
        finally:
            transport.close()

    def test_published_map_never_shadows_local_listener(self):
        transport = SocketTransport()
        try:
            transport.listen("svc", lambda conn: None)
            local = transport.local_endpoints()["svc"]
            transport.set_endpoints({"svc": ("10.0.0.1", 1), "other": ("h", 2)})
            assert transport.local_endpoints()["svc"] == local
        finally:
            transport.close()

    def test_simulated_latency_is_refused(self):
        transport = SocketTransport()
        try:
            with pytest.raises(TransportError):
                transport.set_default_latency(1_000)
            with pytest.raises(TransportError):
                transport.set_latency("a", "b", 1_000)
            transport.apply_latency("a", "b")  # no-op by contract
        finally:
            transport.close()

    def test_closed_transport_refuses_new_work(self):
        transport = SocketTransport()
        transport.close()
        with pytest.raises(TransportError, match="closed"):
            transport.listen("svc", lambda conn: None)
        with pytest.raises(TransportError, match="closed"):
            transport.connect("cli", "svc")
