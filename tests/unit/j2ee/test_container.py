"""Unit tests for the J2EE-like container."""

import threading

import pytest

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.j2ee import Container, EjbError, Jndi, bean_kind, remote_methods, stateful, stateless
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock


@stateless
class Echo:
    def ping(self, n):
        return n

    def shout(self, text):
        return text.upper()

    def _internal(self):
        return "hidden"


@stateful
class Counter:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
        return self.count


def make_env(prefix="ea"):
    clock = VirtualClock()
    process = SimProcess("svr", Host("h", PlatformKind.HPUX_11, clock=clock))
    MonitoringRuntime(
        process,
        MonitorConfig(mode=MonitorMode.CAUSALITY,
                      uuid_factory=SequentialUuidFactory(prefix)),
    )
    return clock, process, Container(process, "c1")


class TestBeanModel:
    def test_kind_detection(self):
        assert bean_kind(Echo) == "stateless"
        assert bean_kind(Counter) == "stateful"

    def test_undecorated_rejected(self):
        class Plain:
            def m(self):
                return 1

        with pytest.raises(TypeError):
            bean_kind(Plain)

    def test_remote_interface_by_reflection(self):
        assert remote_methods(Echo) == ("ping", "shout")

    def test_private_methods_not_exported(self):
        assert "_internal" not in remote_methods(Echo)

    def test_methodless_bean_rejected(self):
        @stateless
        class Empty:
            pass

        with pytest.raises(TypeError):
            remote_methods(Empty)


class TestStateless:
    def test_invoke_through_proxy(self):
        clock, process, container = make_env()
        handle = container.deploy(Echo)
        jndi = Jndi()
        jndi.bind("echo", container, handle)
        proxy = jndi.lookup("echo", process)
        assert proxy.ping(7) == 7
        assert proxy.shout("hi") == "HI"
        process.shutdown()

    def test_pool_shares_instances_across_calls(self):
        clock, process, container = make_env("eb")

        created = []

        @stateless
        class Tracked:
            def __init__(self):
                created.append(self)

            def whoami(self):
                return id(self)

        handle = container.deploy(Tracked)
        proxy = Jndi()
        jndi = Jndi()
        jndi.bind("t", container, handle)
        p = jndi.lookup("t", process)
        ids = {p.whoami() for _ in range(10)}
        assert len(created) == container.stateless_pool_size
        assert ids <= {id(instance) for instance in created}
        process.shutdown()

    def test_private_method_not_callable(self):
        clock, process, container = make_env("ec")
        handle = container.deploy(Echo)
        jndi = Jndi()
        jndi.bind("echo", container, handle)
        proxy = jndi.lookup("echo", process)
        with pytest.raises(AttributeError):
            proxy._internal()
        process.shutdown()

    def test_exceptions_propagate(self):
        clock, process, container = make_env("ed")

        @stateless
        class Bomb:
            def go(self):
                raise ValueError("boom")

        handle = container.deploy(Bomb)
        jndi = Jndi()
        jndi.bind("bomb", container, handle)
        with pytest.raises(ValueError, match="boom"):
            jndi.lookup("bomb", process).go()
        process.shutdown()

    def test_args_are_serialized_copies(self):
        clock, process, container = make_env("ee")

        @stateless
        class Taker:
            def take(self, data):
                data.append("server")
                return data

        handle = container.deploy(Taker)
        jndi = Jndi()
        jndi.bind("taker", container, handle)
        original = ["client"]
        result = jndi.lookup("taker", process).take(original)
        assert original == ["client"]
        assert result == ["client", "server"]
        process.shutdown()


class TestStateful:
    def test_state_preserved_per_handle(self):
        clock, process, container = make_env("ef")
        handle = container.deploy(Counter)
        jndi = Jndi()
        jndi.bind("counter", container, handle)
        proxy = jndi.lookup("counter", process)
        assert [proxy.bump() for _ in range(3)] == [1, 2, 3]
        process.shutdown()

    def test_handles_are_isolated(self):
        clock, process, container = make_env("f0")
        first = container.deploy(Counter)
        second = container.create_handle("Counter")
        jndi = Jndi()
        jndi.bind("a", container, first)
        jndi.bind("b", container, second)
        a = jndi.lookup("a", process)
        b = jndi.lookup("b", process)
        a.bump()
        a.bump()
        assert b.bump() == 1
        process.shutdown()

    def test_create_handle_rejects_stateless(self):
        clock, process, container = make_env("f1")
        container.deploy(Echo)
        with pytest.raises(EjbError):
            container.create_handle("Echo")
        process.shutdown()


class TestContainerLifecycle:
    def test_duplicate_deploy_rejected(self):
        clock, process, container = make_env("f2")
        container.deploy(Echo)
        with pytest.raises(EjbError):
            container.deploy(Echo)
        process.shutdown()

    def test_unknown_jndi_name(self):
        clock, process, container = make_env("f3")
        with pytest.raises(EjbError):
            Jndi().lookup("ghost", process)
        process.shutdown()

    def test_duplicate_jndi_bind_rejected(self):
        clock, process, container = make_env("f4")
        handle = container.deploy(Echo)
        jndi = Jndi()
        jndi.bind("echo", container, handle)
        with pytest.raises(EjbError):
            jndi.bind("echo", container, handle)
        process.shutdown()

    def test_concurrent_clients(self):
        clock, process, container = make_env("f5")
        handle = container.deploy(Echo)
        jndi = Jndi()
        jndi.bind("echo", container, handle)
        proxy = jndi.lookup("echo", process)
        results = []
        threads = [
            threading.Thread(target=lambda i=i: results.append(proxy.ping(i)))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(results) == list(range(8))
        process.shutdown()
