"""Exporter tests: Chrome trace-event JSON and OTLP span JSON.

Two layers: deterministic simulated chains (virtual clock, exact
assertions) and a golden small PPS run exercising the acceptance
criterion — the exported trace parses as JSON, every span is a complete
``X`` event, and primary slice durations match the offline latency
analysis within probe-compensation tolerance.
"""

import json

import pytest

from repro.analysis import reconstruct_from_records
from repro.analysis.latency import causality_overhead, end_to_end_latency
from repro.core import MonitorMode
from repro.core.events import CallKind, TracingEvent
from repro.telemetry.chrome_trace import chrome_trace_document, render_chrome_trace
from repro.telemetry.otlp import otlp_document, render_otlp
from tests.helpers import Call, simulate


def build_dscg(calls, mode=MonitorMode.LATENCY, **kwargs):
    sim = simulate(calls, mode=mode, **kwargs)
    return reconstruct_from_records(sim.records)


def primary_window_start(node):
    """The record whose wall_end starts the latency-measured window."""
    if node.collocated or (
        node.call_kind is CallKind.ONEWAY and node.oneway_side == "skel"
    ):
        return node.records[TracingEvent.SKEL_START]
    return node.records[TracingEvent.STUB_START]


def x_events(document):
    return [e for e in document["traceEvents"] if e["ph"] == "X"]


class TestChromeTrace:
    def test_renders_parseable_json_with_complete_x_events(self):
        dscg = build_dscg([Call("I::F", cpu_ns=100, children=(Call("I::G", cpu_ns=50),))])
        document = json.loads(render_chrome_trace(dscg, run_id="r1"))
        slices = x_events(document)
        # Two nodes, each with a client and a server window.
        assert len(slices) == 4
        for event in slices:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= event.keys()
        assert document["otherData"]["slices"] == 4
        assert document["otherData"]["run_id"] == "r1"

    def test_one_trace_id_per_chain(self):
        dscg = build_dscg(
            [Call("I::F", cpu_ns=10), Call("I::G", cpu_ns=10)],
            fresh_chain_per_top_call=True,
        )
        assert len(dscg.chains) == 2
        document = chrome_trace_document(dscg)
        trace_ids = {event["args"]["trace_id"] for event in x_events(document)}
        assert trace_ids == set(dscg.chains)

    def test_primary_duration_matches_latency_plus_overhead(self):
        dscg = build_dscg(
            [Call("I::F", cpu_ns=100, idle_ns=25, children=(Call("I::G", cpu_ns=50),))]
        )
        document = chrome_trace_document(dscg)
        primaries = {
            (e["args"]["trace_id"], e["args"]["event_seq"]): e
            for e in x_events(document)
            if e["args"].get("primary")
        }
        checked = 0
        for node in dscg.walk():
            latency = end_to_end_latency(node)
            if latency is None:
                continue
            start = primary_window_start(node)
            event = primaries[(node.chain_uuid, start.event_seq)]
            dur_ns = event["dur"] * 1000.0
            overhead = causality_overhead(node)
            # The slice is the raw window; subtracting the exported
            # probe-overhead term reproduces the offline L(F).
            assert event["args"]["probe_overhead_ns"] == overhead
            assert event["args"]["latency_compensated_ns"] == latency
            assert abs(dur_ns - (latency + overhead)) <= 2
            checked += 1
        assert checked == 2

    def test_collocated_primary_is_server_side(self):
        dscg = build_dscg([Call("I::F", cpu_ns=100, collocated=True)])
        (node,) = list(dscg.walk())
        primaries = [e for e in x_events(chrome_trace_document(dscg))
                     if e["args"].get("primary")]
        assert [e["args"]["side"] for e in primaries] == ["server"]
        assert primaries[0]["args"]["latency_compensated_ns"] == (
            end_to_end_latency(node)
        )

    def test_oneway_fork_flow_events(self):
        dscg = build_dscg(
            [Call("I::F", cpu_ns=10, children=(Call("I::Notify", oneway=True, cpu_ns=5),))]
        )
        assert len(dscg.chains) == 2
        document = chrome_trace_document(dscg)
        starts = [e for e in document["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in document["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        child_uuid = starts[0]["args"]["child_trace_id"]
        assert child_uuid in dscg.chains
        # The flow lands on the forked chain's root slice location.
        root_slices = [e for e in x_events(document)
                       if e["args"]["trace_id"] == child_uuid]
        assert finishes[0]["ts"] in {e["ts"] for e in root_slices}

    def test_process_and_thread_metadata(self):
        document = chrome_trace_document(build_dscg([Call("I::F", cpu_ns=10)]))
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name"}
        assert any(e["args"]["name"] == "sim" for e in metadata)

    def test_timeless_modes_skip_and_count(self):
        dscg = build_dscg([Call("I::F", cpu_ns=10)], mode=MonitorMode.CAUSALITY)
        document = chrome_trace_document(dscg)
        assert x_events(document) == []
        assert document["otherData"]["skipped_timeless_nodes"] == 1


class TestOtlp:
    def test_renders_parseable_json_structure(self):
        dscg = build_dscg([Call("I::F", cpu_ns=100)])
        document = json.loads(render_otlp(dscg, run_id="r1"))
        (resource,) = document["resourceSpans"]
        attrs = {a["key"] for a in resource["resource"]["attributes"]}
        assert {"service.name", "host.name", "process.pid"} <= attrs
        (scope,) = resource["scopeSpans"]
        assert len(scope["spans"]) == 2  # client + server
        for span in scope["spans"]:
            assert span["traceId"] in dscg.chains
            assert len(span["spanId"]) == 16
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])

    def test_parent_child_edges(self):
        dscg = build_dscg([Call("I::F", cpu_ns=100, children=(Call("I::G", cpu_ns=50),))])
        spans = {}
        for resource in otlp_document(dscg)["resourceSpans"]:
            for span in resource["scopeSpans"][0]["spans"]:
                side = next(a["value"]["stringValue"]
                            for a in span["attributes"]
                            if a["key"] == "repro.side")
                spans[(span["name"], side)] = span
        # Root client span has no parent; its server span is its child.
        assert spans[("I::F", "client")]["parentSpanId"] == ""
        assert spans[("I::F", "server")]["parentSpanId"] == (
            spans[("I::F", "client")]["spanId"]
        )
        # Nested call parents into the enclosing server span.
        assert spans[("I::G", "client")]["parentSpanId"] == (
            spans[("I::F", "server")]["spanId"]
        )
        assert spans[("I::G", "server")]["parentSpanId"] == (
            spans[("I::G", "client")]["spanId"]
        )

    def test_span_ids_deterministic_across_exports(self):
        sim = simulate([Call("I::F", cpu_ns=100, children=(Call("I::G", cpu_ns=50),))],
                       mode=MonitorMode.LATENCY)
        dscg = reconstruct_from_records(sim.records)
        assert render_otlp(dscg, run_id="x") == render_otlp(dscg, run_id="x")

    def test_oneway_fork_becomes_link(self):
        dscg = build_dscg(
            [Call("I::F", cpu_ns=10, children=(Call("I::Notify", oneway=True, cpu_ns=5),))]
        )
        linked = [
            span
            for resource in otlp_document(dscg)["resourceSpans"]
            for span in resource["scopeSpans"][0]["spans"]
            if span["links"]
        ]
        assert len(linked) == 1
        (link,) = linked[0]["links"]
        assert link["traceId"] != linked[0]["traceId"]
        assert link["traceId"] in dscg.chains


@pytest.fixture(scope="module")
def pps_dscg():
    """A small collected PPS run (latency mode) reconstructed to a DSCG."""
    from repro.apps.pps import PpsSystem, four_process_deployment
    from repro.collector import LogCollector

    pps = PpsSystem(four_process_deployment(), mode=MonitorMode.LATENCY)
    try:
        pps.run(njobs=2, pages=2, complexity=1)
        pps.quiesce()
        collector = LogCollector()
        run_id = collector.collect(pps.processes.values(), description="exporter golden")
        from repro.analysis import reconstruct

        return reconstruct(collector.database, run_id)
    finally:
        pps.shutdown()


class TestPpsGolden:
    def test_chrome_trace_round_trips_and_matches_latency_analysis(self, pps_dscg):
        document = json.loads(render_chrome_trace(pps_dscg, run_id="golden"))
        slices = x_events(document)
        assert slices, "PPS run produced no slices"
        assert document["otherData"]["skipped_timeless_nodes"] == 0
        assert {e["args"]["trace_id"] for e in slices} == set(pps_dscg.chains)
        primaries = {
            (e["args"]["trace_id"], e["args"]["event_seq"]): e
            for e in slices
            if e["args"].get("primary")
        }
        checked = 0
        for node in pps_dscg.walk():
            latency = end_to_end_latency(node)
            if latency is None:
                continue
            event = primaries[(node.chain_uuid, primary_window_start(node).event_seq)]
            dur_ns = event["dur"] * 1000.0
            # µs-float rounding keeps the slice within 2ns of the raw window.
            assert abs(dur_ns - (latency + causality_overhead(node))) <= 2
            assert event["args"]["latency_compensated_ns"] == latency
            checked += 1
        assert checked == len(primaries)

    def test_otlp_spans_cover_every_slice(self, pps_dscg):
        chrome = chrome_trace_document(pps_dscg)
        otlp = json.loads(render_otlp(pps_dscg))
        spans = [
            span
            for resource in otlp["resourceSpans"]
            for span in resource["scopeSpans"][0]["spans"]
        ]
        assert len(spans) == chrome["otherData"]["slices"]
        span_ids = {span["spanId"] for span in spans}
        assert len(span_ids) == len(spans)
        dangling = [
            span for span in spans
            if span["parentSpanId"] and span["parentSpanId"] not in span_ids
        ]
        assert dangling == []
