"""Lifecycle tests for the live metrics pipeline (start/stop/sampler)."""

import time

import pytest

from repro.core import MonitorMode
from repro.telemetry.pipeline import LiveMetricsPipeline
from tests.helpers import Call, simulate


def _pipeline(calls, **kwargs):
    sim = simulate(calls, mode=MonitorMode.LATENCY)
    return LiveMetricsPipeline([sim.process], **kwargs), sim


class TestLifecycle:
    def test_start_stop_joins_thread(self):
        pipeline, _ = _pipeline([Call("I::F", cpu_ns=10)])
        pipeline.start(interval_s=0.005)
        assert pipeline.running
        thread = pipeline._thread
        pipeline.stop()
        assert not pipeline.running
        assert not thread.is_alive()
        # Records were picked up (by the sampler or the catch-up poll).
        assert pipeline.monitor.completed_calls() == 1

    def test_stop_runs_catch_up_poll(self):
        pipeline, _ = _pipeline([Call("I::F", cpu_ns=10)])
        pipeline.start(interval_s=60.0)  # sampler never fires on its own
        pipeline.stop()
        assert pipeline.monitor.completed_calls() == 1

    def test_start_twice_is_idempotent(self):
        pipeline, _ = _pipeline([Call("I::F", cpu_ns=10)])
        pipeline.start(interval_s=0.005)
        thread = pipeline._thread
        pipeline.start(interval_s=0.005)
        assert pipeline._thread is thread
        pipeline.stop()

    def test_stop_without_start_is_noop(self):
        pipeline, _ = _pipeline([Call("I::F", cpu_ns=10)])
        pipeline.stop()
        assert not pipeline.running

    def test_sampler_death_surfaces_at_stop(self, monkeypatch):
        pipeline, _ = _pipeline([Call("I::F", cpu_ns=10)])
        calls = {"n": 0}
        real_poll = pipeline.monitor.poll

        def dying_poll(processes):
            if calls["n"] == 0:
                calls["n"] += 1
                raise ValueError("buffer exploded")
            return real_poll(processes)

        monkeypatch.setattr(pipeline.monitor, "poll", dying_poll)
        pipeline.start(interval_s=0.001)
        deadline = time.monotonic() + 2.0
        while pipeline.running and time.monotonic() < deadline:
            time.sleep(0.002)
        assert not pipeline.running  # the thread died, silently so far
        with pytest.raises(RuntimeError, match="sampler thread died") as excinfo:
            pipeline.stop()
        assert isinstance(excinfo.value.__cause__, ValueError)
        # The error is surfaced once, then cleared; the catch-up poll ran.
        assert pipeline.sampler_error is None
        assert pipeline.monitor.completed_calls() == 1

    def test_restart_after_sampler_death(self, monkeypatch):
        pipeline, _ = _pipeline([Call("I::F", cpu_ns=10)])
        pipeline.sampler_error = ValueError("stale")
        pipeline.start(interval_s=0.005)
        assert pipeline.sampler_error is None  # start() clears stale errors
        pipeline.stop()


class TestAlertsPassthrough:
    def test_alerts_surface_through_pipeline(self):
        sim = simulate([Call("I::slow", cpu_ns=500)], mode=MonitorMode.LATENCY)
        pipeline = LiveMetricsPipeline([sim.process], latency_slo_ns=100)
        pipeline.poll()
        alerts = pipeline.alerts()
        assert len(alerts) == 1
        assert alerts[0].kind == "latency"
        assert alerts[0].function == "I::slow"

    def test_render_contains_online_series(self):
        pipeline, _ = _pipeline([Call("I::F", cpu_ns=10)])
        pipeline.poll()
        body = pipeline.render()
        assert "repro_online_completed_calls_total 1" in body
