"""Unit tests for the metrics core: registry, striping, exposition, no-ops."""

import threading

import pytest

from repro.errors import MonitorError
from repro.telemetry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
    render_prometheus,
)
from repro.telemetry.metrics import DEFAULT_LATENCY_BOUNDARIES_NS
from repro.telemetry.runtime import active_registry, disable, enable, metrics_binder


class TestCounter:
    def test_concurrent_increments_sum_exactly(self):
        counter = MetricsRegistry().counter("c_total", "test")
        threads_n, per_thread = 8, 10_000
        barrier = threading.Barrier(threads_n)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == threads_n * per_thread

    def test_inc_amount(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(5)
        counter.inc(2.5)
        assert counter.value() == 7.5


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value() == 12

    def test_concurrent_inc_dec_balance(self):
        gauge = MetricsRegistry().gauge("g")

        def work():
            for _ in range(5_000):
                gauge.inc()
                gauge.dec()

        threads = [threading.Thread(target=work) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value() == 0


class TestHistogram:
    def test_bucket_boundaries_le_semantics(self):
        hist = MetricsRegistry().histogram("h", boundaries=(10, 100, 1000))
        for value in (5, 10, 11, 100, 999, 1000, 1001, 50_000):
            hist.observe(value)
        counts, total, count = hist.snapshot()
        # le=10 -> {5, 10}; le=100 -> {11, 100}; le=1000 -> {999, 1000};
        # +Inf -> {1001, 50000}.
        assert counts == [2, 2, 2, 2]
        assert count == 8
        assert total == 5 + 10 + 11 + 100 + 999 + 1000 + 1001 + 50_000

    def test_concurrent_observations_sum_exactly(self):
        hist = MetricsRegistry().histogram("h", boundaries=(100,))

        def work():
            for _ in range(4_000):
                hist.observe(1)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts, total, count = hist.snapshot()
        assert counts == [24_000, 0]
        assert count == 24_000 and total == 24_000

    def test_default_boundaries_cover_ns_latencies(self):
        assert DEFAULT_LATENCY_BOUNDARIES_NS[0] == 1_000
        assert DEFAULT_LATENCY_BOUNDARIES_NS[-1] == 10_000_000_000
        assert list(DEFAULT_LATENCY_BOUNDARIES_NS) == sorted(
            DEFAULT_LATENCY_BOUNDARIES_NS
        )

    def test_rejects_bad_boundaries(self):
        registry = MetricsRegistry()
        with pytest.raises(MonitorError):
            registry.histogram("h1", boundaries=())
        with pytest.raises(MonitorError):
            registry.histogram("h2", boundaries=(10, 10, 20))
        with pytest.raises(MonitorError):
            registry.histogram("h3", boundaries=(20, 10))


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MonitorError):
            registry.gauge("m")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("a",))
        with pytest.raises(MonitorError):
            registry.counter("m", labels=("b",))

    def test_labeled_children_independent(self):
        family = MetricsRegistry().counter("m_total", labels=("kind",))
        family.labels("x").inc(3)
        family.labels("y").inc(4)
        assert family.labels("x").value() == 3
        assert family.labels("y").value() == 4

    def test_wrong_label_arity_rejected(self):
        family = MetricsRegistry().counter("m_total", labels=("kind",))
        with pytest.raises(MonitorError):
            family.labels()


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(3)
        registry.gauge("g", "a gauge").set(7)
        text = render_prometheus(registry)
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert "\nc_total 3\n" in text
        assert "\ng 7\n" in text

    def test_labeled_series(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labels=("probe",))
        family.labels("stub_start").inc(2)
        text = render_prometheus(registry)
        assert 'c_total{probe="stub_start"} 2' in text

    def test_histogram_series_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "latency", boundaries=(10, 100))
        for value in (5, 50, 500):
            hist.observe(value)
        text = render_prometheus(registry)
        assert 'h_bucket{le="10"} 1' in text
        assert 'h_bucket{le="100"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "\nh_sum 555\n" in text
        assert "\nh_count 3\n" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("p",)).labels('a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert 'c_total{p="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestNullMetrics:
    def test_null_singletons_accept_everything(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(10)
        NULL_GAUGE.set(3)
        NULL_GAUGE.inc()
        NULL_GAUGE.dec()
        NULL_HISTOGRAM.observe(123)
        assert NULL_COUNTER.value() == 0
        assert NULL_HISTOGRAM.labels("anything") is NULL_HISTOGRAM


class TestRuntimeSwitch:
    def test_enable_rebinds_and_disable_resets(self):
        seen = []

        def bind(registry):
            seen.append(registry)

        metrics_binder(bind)
        assert seen == [None]  # bound immediately, telemetry off
        try:
            registry = enable()
            assert active_registry() is registry
            assert seen[-1] is registry
            # enabling again without an explicit registry keeps the first
            assert enable() is registry
        finally:
            disable()
        assert seen[-1] is None
        assert active_registry() is None

    def test_instrumented_hot_path_counts_probe_records(self):
        from tests.helpers import Call, simulate

        try:
            registry = enable(MetricsRegistry())
            simulate([Call("I::F", cpu_ns=10)], uuid_prefix="ee")
            family = registry.counter("repro_probe_records_total",
                                      labels=("probe",))
            assert family.labels("stub_start").value() == 1
            assert family.labels("skel_end").value() == 1
        finally:
            disable()
