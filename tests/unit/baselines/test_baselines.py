"""Unit tests for the related-work baselines."""

import pytest

from repro.analysis import reconstruct_from_records
from repro.baselines import (
    DEFAULT_MESSAGE_CAP_BYTES,
    TraceObject,
    TraceObjectOverflow,
    anchors_from_records,
    compare_correlation,
    ftl_size_at,
    gprof_profile,
    growth_series,
    max_chain_events,
    path_loss,
    recover_same_thread_edges,
    trace_object_size_at,
)
from repro.baselines.trace_object import TraceEntry
from repro.core import MonitorMode
from repro.core.ftl import FTL_WIRE_SIZE
from tests.helpers import Call, simulate


class TestTraceObject:
    def test_size_grows_linearly(self):
        s100 = trace_object_size_at(100)
        s200 = trace_object_size_at(200)
        s400 = trace_object_size_at(400)
        assert s200 > s100
        # linear growth: doubling events roughly doubles the payload
        assert abs((s400 - s200) - (s200 - s100) * 2) < (s200 - s100)

    def test_ftl_is_constant(self):
        assert ftl_size_at(1) == ftl_size_at(1_000_000) == FTL_WIRE_SIZE

    def test_overflow_barrier(self):
        trace = TraceObject(cap_bytes=200)
        entry = TraceEntry(1, "I::op", "obj", 0, 1)
        trace.append(entry)
        with pytest.raises(TraceObjectOverflow):
            for _ in range(100):
                trace.append(entry)

    def test_barrier_at_tens_of_thousands(self):
        # The paper: concatenation "introduces the barrier for the call
        # chains that exceed tens of thousands calls".
        limit_calls = max_chain_events(DEFAULT_MESSAGE_CAP_BYTES) // 4
        assert 10_000 < limit_calls < 100_000

    def test_growth_series_shape(self):
        rows = growth_series([10, 100])
        assert len(rows) == 2
        assert rows[0][2] == FTL_WIRE_SIZE
        assert rows[1][1] > rows[0][1]

    def test_encode_matches_reported_size(self):
        trace = TraceObject(cap_bytes=1 << 20)
        entry = TraceEntry(2, "Iface::op", "proc.obj-1", 123, 7)
        trace.append(entry)
        assert len(trace.encode()) == trace.wire_size


class TestInterceptorBaseline:
    def make(self):
        sim = simulate(
            [Call("I::F", cpu_ns=10, children=(Call("I::G", cpu_ns=5),))],
            mode=MonitorMode.LATENCY,
        )
        dscg = reconstruct_from_records(sim.records)
        return dscg, sim.records

    def test_anchors_strip_causality(self):
        _, records = self.make()
        anchors = anchors_from_records(records)
        assert len(anchors) == len(records)
        assert not any(hasattr(a, "chain_uuid") for a in anchors)

    def test_same_thread_nesting_recovered(self):
        dscg, records = self.make()
        # Simulator runs everything on one thread, so nesting is visible.
        edges = recover_same_thread_edges(anchors_from_records(records))
        assert ("I::F", "I::G") in edges

    def test_comparison_structure(self):
        dscg, records = self.make()
        comparison = compare_correlation(dscg, records)
        assert comparison.true_edge_count == 1
        assert comparison.ours_rate == 1.0
        assert 0.0 <= comparison.interceptor_rate <= 1.0


class TestGprofBaseline:
    def test_depth1_profile_same_thread(self):
        sim = simulate(
            [Call("I::F", cpu_ns=10, children=(Call("I::G", cpu_ns=5),))],
            mode=MonitorMode.CPU,
        )
        dscg = reconstruct_from_records(sim.records)
        profile = gprof_profile(dscg)
        row = profile.rows[("I::F", "I::G")]
        assert row.calls == 1
        assert row.self_cpu_ns == 5

    def test_path_loss_report(self):
        sim = simulate(
            [Call("I::A", children=(Call("I::C"),)),
             Call("I::B", children=(Call("I::C"),))],
            mode=MonitorMode.CPU,
        )
        dscg = reconstruct_from_records(sim.records)
        report = path_loss(dscg)
        # 4 distinct call paths (A, B, A/C, B/C) vs 4 depth-1 edges here,
        # but the call-path count can only be >= the edge count in general.
        assert report.distinct_call_paths >= report.depth1_edges - report.spontaneous_roots
        assert report.depth1_edges > 0
