"""Unit tests for the monitoring runtime's four probes."""

import pytest

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    OperationInfo,
    SequentialUuidFactory,
    TracingEvent,
    install_monitoring,
)
from repro.errors import MonitorError
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

OP = OperationInfo("Mod::Iface", "op", "obj-1", "Comp")


def make_runtime(mode=MonitorMode.LATENCY, platform=PlatformKind.HPUX_11, prefix="c0"):
    clock = VirtualClock()
    host = Host("h", platform, clock=clock)
    process = SimProcess("p", host)
    runtime = MonitoringRuntime(
        process, MonitorConfig(mode=mode, uuid_factory=SequentialUuidFactory(prefix))
    )
    return runtime, process, clock


class TestSyncProbeSequence:
    def test_four_probe_round_trip(self):
        runtime, process, clock = make_runtime()
        ctx = runtime.stub_start(OP)
        skel = runtime.skel_start(OP, ctx.request_ftl_payload)
        clock.consume(100)
        reply = runtime.skel_end(skel)
        runtime.stub_end(ctx, reply)
        records = process.log_buffer.snapshot()
        assert [r.event for r in records] == [
            TracingEvent.STUB_START,
            TracingEvent.SKEL_START,
            TracingEvent.SKEL_END,
            TracingEvent.STUB_END,
        ]
        assert [r.event_seq for r in records] == [0, 1, 2, 3]
        assert len({r.chain_uuid for r in records}) == 1

    def test_sibling_calls_share_chain(self):
        runtime, process, _ = make_runtime()
        for _ in range(2):
            ctx = runtime.stub_start(OP)
            skel = runtime.skel_start(OP, ctx.request_ftl_payload)
            runtime.stub_end(ctx, runtime.skel_end(skel))
        records = process.log_buffer.snapshot()
        assert len(records) == 8
        assert len({r.chain_uuid for r in records}) == 1
        assert [r.event_seq for r in records] == list(range(8))

    def test_latency_mode_samples_wall_not_cpu(self):
        runtime, process, _ = make_runtime(MonitorMode.LATENCY)
        ctx = runtime.stub_start(OP)
        runtime.stub_end(ctx, None)
        for record in process.log_buffer.snapshot():
            assert record.wall_start is not None
            assert record.cpu_start is None

    def test_cpu_mode_samples_cpu_not_wall(self):
        runtime, process, _ = make_runtime(MonitorMode.CPU)
        ctx = runtime.stub_start(OP)
        runtime.stub_end(ctx, None)
        for record in process.log_buffer.snapshot():
            assert record.cpu_start is not None
            assert record.wall_start is None

    def test_causality_mode_samples_neither_but_always_captures(self):
        runtime, process, _ = make_runtime(MonitorMode.CAUSALITY)
        ctx = runtime.stub_start(OP)
        runtime.stub_end(ctx, None)
        records = process.log_buffer.snapshot()
        assert len(records) == 2  # causality capture always happens
        for record in records:
            assert record.wall_start is None
            assert record.cpu_start is None

    def test_cpu_mode_on_vxworks_yields_none(self):
        runtime, process, _ = make_runtime(MonitorMode.CPU, PlatformKind.VXWORKS)
        ctx = runtime.stub_start(OP)
        runtime.stub_end(ctx, None)
        for record in process.log_buffer.snapshot():
            assert record.cpu_start is None

    def test_disabled_monitor_records_nothing(self):
        clock = VirtualClock()
        process = SimProcess("p", Host("h", clock=clock))
        runtime = MonitoringRuntime(process, MonitorConfig(enabled=False))
        assert runtime.stub_start(OP) is None
        assert len(process.log_buffer) == 0


class TestOnewayProbes:
    def test_stub_side_forks_child_chain(self):
        runtime, process, _ = make_runtime()
        ctx = runtime.stub_start(OP, oneway=True)
        runtime.stub_end(ctx, None)
        records = process.log_buffer.snapshot()
        start, end = records
        assert start.child_chain_uuid is not None
        assert start.child_chain_uuid != start.chain_uuid
        assert end.chain_uuid == start.chain_uuid  # parent chain continues
        assert ctx.child_ftl.chain_uuid == start.child_chain_uuid

    def test_skel_side_starts_child_chain_at_zero(self):
        runtime, process, _ = make_runtime()
        ctx = runtime.stub_start(OP, oneway=True)
        skel = runtime.skel_start(OP, ctx.request_ftl_payload, oneway=True)
        assert runtime.skel_end(skel) is None  # oneway: no reply payload
        records = process.log_buffer.snapshot()
        child_records = [r for r in records if r.chain_uuid == ctx.child_ftl.chain_uuid]
        assert [r.event_seq for r in child_records] == [0, 1]


class TestCollocatedProbes:
    def test_degenerate_pairs(self):
        runtime, process, _ = make_runtime()
        stub_ctx, skel_ctx = runtime.collocated_call_start(OP)
        runtime.collocated_call_end(stub_ctx, skel_ctx)
        records = process.log_buffer.snapshot()
        assert [r.event for r in records] == [
            TracingEvent.STUB_START,
            TracingEvent.SKEL_START,
            TracingEvent.SKEL_END,
            TracingEvent.STUB_END,
        ]
        assert all(r.collocated for r in records)
        assert [r.event_seq for r in records] == [0, 1, 2, 3]


class TestFtlBinding:
    def test_skel_start_refreshes_stale_ftl(self):
        # Observation O2: a recycled thread holds a stale FTL that the
        # next skeleton start probe must replace.
        runtime, process, _ = make_runtime()
        ctx1 = runtime.stub_start(OP)
        skel1 = runtime.skel_start(OP, ctx1.request_ftl_payload)
        runtime.stub_end(ctx1, runtime.skel_end(skel1))
        stale = runtime.current_ftl()
        # A brand-new chain arrives on this (recycled) thread:
        other = make_runtime(prefix="dd")[0]
        ctx2 = other.stub_start(OP)
        skel2 = runtime.skel_start(OP, ctx2.request_ftl_payload)
        assert runtime.current_ftl().chain_uuid != stale.chain_uuid
        assert runtime.current_ftl().chain_uuid == ctx2.ftl.chain_uuid

    def test_bind_unbind(self):
        runtime, _, _ = make_runtime()
        ctx = runtime.stub_start(OP)
        ftl = runtime.unbind_ftl()
        assert runtime.current_ftl() is None
        runtime.bind_ftl(ftl)
        assert runtime.current_ftl() is ftl

    def test_install_monitoring_rejects_double(self):
        process = SimProcess("p", Host("h", clock=VirtualClock()))
        install_monitoring(process)
        with pytest.raises(MonitorError):
            install_monitoring(process)


class TestSemanticsCapture:
    def test_semantics_only_in_semantics_mode(self):
        runtime, process, _ = make_runtime(MonitorMode.LATENCY)
        ctx = runtime.stub_start(OP, semantics={"args": ["1"]})
        runtime.stub_end(ctx, None)
        assert all(r.semantics is None for r in process.log_buffer.snapshot())

        runtime2, process2, _ = make_runtime(MonitorMode.SEMANTICS)
        ctx = runtime2.stub_start(OP, semantics={"args": ["1"]})
        runtime2.stub_end(ctx, None)
        start = process2.log_buffer.snapshot()[0]
        assert start.semantics == {"args": ["1"]}

    def test_probe_records_own_interval(self):
        runtime, process, clock = make_runtime(MonitorMode.LATENCY)
        ctx = runtime.stub_start(OP)
        runtime.stub_end(ctx, None)
        for record in process.log_buffer.snapshot():
            assert record.wall_end is not None
            assert record.probe_wall_cost() >= 0
