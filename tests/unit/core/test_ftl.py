"""Unit tests for the Function-Transportable Log."""

import pytest

from repro.core.ftl import (
    FTL_WIRE_SIZE,
    FunctionTxLog,
    SequentialUuidFactory,
    new_chain,
    random_uuid_factory,
)


class TestFunctionTxLog:
    def test_new_chain_starts_before_first_event(self):
        ftl = new_chain()
        assert ftl.event_seq_no == -1

    def test_advance_increments(self):
        ftl = new_chain()
        assert ftl.advance() == 0
        assert ftl.advance() == 1
        assert ftl.event_seq_no == 1

    def test_fork_child_has_fresh_uuid_and_reset_seq(self):
        parent = new_chain()
        parent.advance()
        child = parent.fork_child()
        assert child.chain_uuid != parent.chain_uuid
        assert child.event_seq_no == -1
        assert parent.event_seq_no == 0

    def test_copy_is_independent(self):
        ftl = new_chain()
        ftl.advance()
        dup = ftl.copy()
        dup.advance()
        assert ftl.event_seq_no == 0
        assert dup.event_seq_no == 1

    def test_wire_roundtrip(self):
        ftl = FunctionTxLog(chain_uuid="ab" * 16, event_seq_no=12345)
        payload = ftl.to_bytes()
        assert len(payload) == FTL_WIRE_SIZE
        restored = FunctionTxLog.from_bytes(payload)
        assert restored == ftl

    def test_wire_roundtrip_negative_seq(self):
        ftl = FunctionTxLog(chain_uuid="00" * 16, event_seq_no=-1)
        assert FunctionTxLog.from_bytes(ftl.to_bytes()).event_seq_no == -1

    def test_wire_size_is_constant(self):
        ftl = new_chain()
        sizes = set()
        for _ in range(1000):
            ftl.advance()
            sizes.add(len(ftl.to_bytes()))
        assert sizes == {FTL_WIRE_SIZE}

    def test_from_bytes_rejects_bad_length(self):
        with pytest.raises(ValueError):
            FunctionTxLog.from_bytes(b"short")


class TestUuidFactories:
    def test_random_factory_unique(self):
        seen = {random_uuid_factory() for _ in range(100)}
        assert len(seen) == 100
        assert all(len(u) == 32 for u in seen)

    def test_sequential_factory_deterministic(self):
        f1 = SequentialUuidFactory("ab")
        f2 = SequentialUuidFactory("ab")
        assert [f1() for _ in range(5)] == [f2() for _ in range(5)]

    def test_sequential_factory_unique_and_hex(self):
        factory = SequentialUuidFactory()
        values = [factory() for _ in range(50)]
        assert len(set(values)) == 50
        for value in values:
            assert len(value) == 32
            bytes.fromhex(value)  # must be valid hex

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            SequentialUuidFactory("xyz")
        with pytest.raises(ValueError):
            SequentialUuidFactory("a" * 9)

    def test_thread_safety(self):
        import threading

        factory = SequentialUuidFactory()
        results = []

        def worker():
            results.extend(factory() for _ in range(200))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 800
