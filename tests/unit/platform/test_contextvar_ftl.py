"""FTL propagation through the contextvar carrier.

The virtual tunnel's contract under asyncio: the chain's FTL must follow
the *logical* call chain — surviving ``await`` suspensions, flowing into
``asyncio.gather`` fan-outs, and riding task hand-offs across loop
iterations — while per-task ``set``s stay isolated. The threaded plane
must see exactly the old TSS semantics through the same shim, so the
shared per-thread cases run against both carriers.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.ftl import FunctionTxLog, SequentialUuidFactory
from repro.core.monitor import MonitorConfig, MonitoringRuntime
from repro.platform.host import Host
from repro.platform.process import SimProcess
from repro.platform.tss import ContextVarStorage, ThreadSpecificStorage


@pytest.fixture(params=[ContextVarStorage, ThreadSpecificStorage])
def any_carrier(request):
    return request.param()


class TestCarrierParity:
    """Both carriers honor the TSS contract on plain threads."""

    def test_get_set_pop_defaults(self, any_carrier):
        assert any_carrier.get("ftl") is None
        assert any_carrier.get("ftl", "fallback") == "fallback"
        any_carrier.set("ftl", "value")
        assert any_carrier.get("ftl") == "value"
        assert any_carrier.pop("ftl") == "value"
        assert any_carrier.pop("ftl", "gone") == "gone"

    def test_thread_isolation(self, any_carrier):
        any_carrier.set("ftl", "main")
        seen = {}

        def worker():
            seen["before"] = any_carrier.get("ftl")
            any_carrier.set("ftl", "worker")
            seen["after"] = any_carrier.get("ftl")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["after"] == "worker"
        assert any_carrier.get("ftl") == "main"

    def test_clear_thread_drops_current_context_only(self, any_carrier):
        any_carrier.set("a", 1)
        any_carrier.set("b", 2)
        other = {}

        def worker():
            any_carrier.set("a", "other")
            other["kept"] = any_carrier.get("a")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        any_carrier.clear_thread()
        assert any_carrier.get("a") is None
        assert any_carrier.get("b") is None
        assert other["kept"] == "other"

    def test_multiple_slots_independent(self, any_carrier):
        any_carrier.set("ftl", "chain")
        any_carrier.set("other", "data")
        assert any_carrier.pop("ftl") == "chain"
        assert any_carrier.get("other") == "data"


class TestContextVarTaskSemantics:
    """Asyncio-specific behavior only the contextvar carrier provides."""

    def test_value_survives_await(self):
        tss = ContextVarStorage()

        async def main():
            tss.set("ftl", "chain-1")
            await asyncio.sleep(0)
            assert tss.get("ftl") == "chain-1"
            await asyncio.sleep(0.001)
            return tss.get("ftl")

        assert asyncio.run(main()) == "chain-1"

    def test_gather_children_inherit_parent_reference(self):
        tss = ContextVarStorage()
        ftl = FunctionTxLog(chain_uuid="u-1", event_seq_no=0)

        async def child(i):
            seen = tss.get("ftl")
            # The child sees the parent's FTL *object* — mutating it in
            # place (the paper's seq-no bump) is visible chain-wide.
            seen.event_seq_no += 1
            await asyncio.sleep(0)
            return seen is ftl

        async def main():
            tss.set("ftl", ftl)
            return await asyncio.gather(*(child(i) for i in range(5)))

        assert asyncio.run(main()) == [True] * 5
        assert ftl.event_seq_no == 5

    def test_child_set_isolated_from_parent_and_siblings(self):
        tss = ContextVarStorage()

        async def child(i):
            tss.set("ftl", f"child-{i}")
            await asyncio.sleep(0)
            return tss.get("ftl")

        async def main():
            tss.set("ftl", "parent")
            results = await asyncio.gather(*(child(i) for i in range(4)))
            return results, tss.get("ftl")

        results, parent_after = asyncio.run(main())
        assert results == [f"child-{i}" for i in range(4)]
        assert parent_after == "parent"

    def test_interleaved_tasks_do_not_mingle(self):
        # Two tasks ping-pong on the same carrier thread across many loop
        # iterations; a thread-keyed carrier would cross their chains.
        tss = ContextVarStorage()

        async def worker(name, rounds, observations):
            tss.set("ftl", name)
            for _ in range(rounds):
                await asyncio.sleep(0)
                observations.append(tss.get("ftl"))

        async def main():
            a_seen: list = []
            b_seen: list = []
            await asyncio.gather(
                worker("chain-a", 10, a_seen), worker("chain-b", 10, b_seen)
            )
            return a_seen, b_seen

        a_seen, b_seen = asyncio.run(main())
        assert a_seen == ["chain-a"] * 10
        assert b_seen == ["chain-b"] * 10

    def test_task_handoff_between_loop_iterations(self):
        # A chain hops tasks: the first task finishes, and a follow-up
        # task created *from its context* carries the FTL onward.
        tss = ContextVarStorage()

        async def first_leg():
            tss.set("ftl", "relay-chain")
            return asyncio.create_task(second_leg())

        async def second_leg():
            await asyncio.sleep(0)
            return tss.get("ftl")

        async def main():
            handoff = await first_leg()
            return await handoff

        assert asyncio.run(main()) == "relay-chain"

    def test_thread_keyed_carrier_mingles_tasks(self):
        # The negative control: the paper-literal TSS keyed by OS thread
        # cannot tell two tasks on one loop apart. This is *why* the
        # asyncio plane switched carriers.
        tss = ThreadSpecificStorage()

        async def worker(name, observations):
            tss.set("ftl", name)
            await asyncio.sleep(0)
            observations.append(tss.get("ftl"))

        async def main():
            a_seen: list = []
            b_seen: list = []
            await asyncio.gather(
                worker("chain-a", a_seen), worker("chain-b", b_seen)
            )
            return a_seen, b_seen

        a_seen, b_seen = asyncio.run(main())
        # Both observed the *last* writer: chains crossed.
        assert a_seen == b_seen


class TestMonitorFtlUnderAsyncio:
    """Monitor-level: bind/current/unbind ride the execution context."""

    def _monitor(self):
        process = SimProcess("p", Host("h"))
        return MonitoringRuntime(
            process, MonitorConfig(uuid_factory=SequentialUuidFactory("aa"))
        )

    def test_chain_id_stable_across_awaits_and_tasks(self):
        monitor = self._monitor()

        async def nested():
            await asyncio.sleep(0)
            return monitor.current_ftl().chain_uuid

        async def main():
            monitor.bind_ftl(FunctionTxLog(chain_uuid="m-0", event_seq_no=3))
            await asyncio.sleep(0)
            ids = await asyncio.gather(nested(), nested(), nested())
            ids.append(monitor.current_ftl().chain_uuid)
            return ids

        assert asyncio.run(main()) == ["m-0"] * 4

    def test_unbind_in_one_task_leaves_siblings_bound(self):
        monitor = self._monitor()

        async def unbinder():
            detached = monitor.unbind_ftl()
            await asyncio.sleep(0)
            return detached.chain_uuid, monitor.current_ftl()

        async def main():
            monitor.bind_ftl(FunctionTxLog(chain_uuid="m-0", event_seq_no=0))
            # A bare ``await`` shares the caller's context; only a Task
            # gets its own copy — so spawn the unbinder as a task.
            detached_id, after = await asyncio.create_task(unbinder())
            return detached_id, after, monitor.current_ftl().chain_uuid

        detached_id, after, parent_chain = asyncio.run(main())
        assert detached_id == "m-0"
        assert after is None
        assert parent_chain == "m-0"

    def test_threaded_plane_unchanged_through_shim(self):
        # The same monitor API on plain worker threads: fresh thread has
        # no FTL, root call starts a new chain, binding stays per-thread.
        monitor = self._monitor()
        monitor.bind_ftl(FunctionTxLog(chain_uuid="main-chain", event_seq_no=0))
        seen = {}

        def worker():
            seen["before"] = monitor.current_ftl()
            monitor.bind_ftl(FunctionTxLog(chain_uuid="w-chain", event_seq_no=0))
            seen["after"] = monitor.current_ftl().chain_uuid

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["after"] == "w-chain"
        assert monitor.current_ftl().chain_uuid == "main-chain"
