"""Unit tests for platform clocks."""

import threading

import pytest

from repro.platform.clocks import RealClock, SkewedClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.wall_ns() == 0
        assert clock.thread_cpu_ns() == 0

    def test_custom_start(self):
        clock = VirtualClock(start_ns=1_000)
        assert clock.wall_ns() == 1_000

    def test_consume_advances_wall_and_cpu(self):
        clock = VirtualClock()
        clock.consume(500)
        assert clock.wall_ns() == 500
        assert clock.thread_cpu_ns() == 500

    def test_idle_advances_wall_only(self):
        clock = VirtualClock()
        clock.idle(300)
        assert clock.wall_ns() == 300
        assert clock.thread_cpu_ns() == 0

    def test_negative_consume_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.consume(-1)
        with pytest.raises(ValueError):
            clock.idle(-1)

    def test_cpu_is_per_thread(self):
        clock = VirtualClock()
        clock.consume(100)
        seen = {}

        def other():
            clock.consume(250)
            seen["cpu"] = clock.thread_cpu_ns()

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        assert seen["cpu"] == 250
        assert clock.thread_cpu_ns() == 100
        # Wall clock is shared: both advances accumulate.
        assert clock.wall_ns() == 350
        assert clock.total_cpu_ns() == 350

    def test_cpu_of_thread_lookup(self):
        clock = VirtualClock()
        clock.consume(42)
        assert clock.cpu_of_thread(threading.get_ident()) == 42
        assert clock.cpu_of_thread(123456789) == 0


class TestRealClock:
    def test_wall_monotonic(self):
        clock = RealClock()
        a = clock.wall_ns()
        b = clock.wall_ns()
        assert b >= a

    def test_thread_cpu_advances_under_load(self):
        clock = RealClock()
        start = clock.thread_cpu_ns()
        total = 0
        for i in range(200_000):
            total += i
        assert clock.thread_cpu_ns() > start


class TestSkewedClock:
    def test_wall_is_offset(self):
        base = VirtualClock(start_ns=100)
        skewed = SkewedClock(base, skew_ns=1_000_000)
        assert skewed.wall_ns() == 1_000_100

    def test_cpu_passthrough(self):
        base = VirtualClock()
        skewed = SkewedClock(base, skew_ns=5_000)
        base.consume(77)
        assert skewed.thread_cpu_ns() == 77

    def test_forwards_consume_to_base(self):
        base = VirtualClock()
        skewed = SkewedClock(base, skew_ns=10)
        skewed.consume(5)
        assert base.wall_ns() == 5
        assert skewed.wall_ns() == 15

    def test_negative_skew(self):
        base = VirtualClock(start_ns=1_000)
        skewed = SkewedClock(base, skew_ns=-400)
        assert skewed.wall_ns() == 600
