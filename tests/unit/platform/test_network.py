"""Unit tests for the in-memory network."""

import threading

import pytest

from repro.errors import TransportError
from repro.platform import Host, Network, PlatformKind, VirtualClock


class TestNetworkBasics:
    def test_connect_and_exchange(self):
        network = Network()
        server_sides = []
        network.listen("server", server_sides.append)
        client = network.connect("client", "server")
        assert len(server_sides) == 1
        server = server_sides[0]
        client.send(b"hello")
        assert server.recv(timeout=1) == b"hello"
        server.send(b"world")
        assert client.recv(timeout=1) == b"world"

    def test_connect_unknown_address(self):
        network = Network()
        with pytest.raises(TransportError):
            network.connect("client", "nowhere")

    def test_duplicate_listen_rejected(self):
        network = Network()
        network.listen("addr", lambda conn: None)
        with pytest.raises(TransportError):
            network.listen("addr", lambda conn: None)

    def test_unlisten_frees_address(self):
        network = Network()
        network.listen("addr", lambda conn: None)
        network.unlisten("addr")
        network.listen("addr", lambda conn: None)  # no error

    def test_recv_timeout(self):
        network = Network()
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        with pytest.raises(TransportError):
            client.recv(timeout=0.01)

    def test_close_unblocks_local_receiver(self):
        network = Network()
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        server = sides[0]
        errors = []

        def reader():
            try:
                server.recv(timeout=5)
            except TransportError as exc:
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        server.close()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert errors

    def test_close_notifies_peer(self):
        network = Network()
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        client.close()
        with pytest.raises(TransportError):
            sides[0].recv(timeout=1)

    def test_send_after_close_raises(self):
        network = Network()
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        client.close()
        with pytest.raises(TransportError):
            client.send(b"late")


class TestLatencyInjection:
    def test_virtual_latency_advances_wall_clock(self):
        network = Network()
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        network.set_default_latency(2_000)
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        client.send(b"x", sender_host=host)
        assert clock.wall_ns() == 2_000
        assert sides[0].recv(timeout=1) == b"x"

    def test_per_link_latency_overrides_default(self):
        network = Network()
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        network.set_default_latency(1_000)
        network.set_latency("c", "s", 5_000)
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        client.send(b"x", sender_host=host)
        assert clock.wall_ns() == 5_000

    def test_zero_latency_no_clock_effect(self):
        network = Network()
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        client.send(b"x", sender_host=host)
        assert clock.wall_ns() == 0


class _ForbiddenLock:
    """A lock stand-in that fails the test if anything acquires it."""

    def acquire(self, *args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("network lock acquired on the send fast path")

    release = acquire

    def __enter__(self):  # pragma: no cover - failure path
        raise AssertionError("network lock acquired on the send fast path")

    def __exit__(self, *exc):  # pragma: no cover - failure path
        return False


class TestCopyOnWriteLatencyTable:
    def test_zero_latency_send_never_touches_the_lock(self):
        """The per-send fast path must not serialize on the network's
        global lock when no latency is configured (the common case for
        every probe-bearing invocation)."""
        network = Network()
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        network._lock = _ForbiddenLock()  # any acquire now fails loudly
        for _ in range(3):
            client.send(b"x", sender_host=host)
        assert [sides[0].recv(timeout=1) for _ in range(3)] == [b"x"] * 3
        assert clock.wall_ns() == 0

    def test_apply_latency_reads_published_snapshot_lock_free(self):
        network = Network()
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        network.set_latency("c", "s", 4_000)
        network._lock = _ForbiddenLock()
        network.apply_latency("c", "s", host)
        assert clock.wall_ns() == 4_000

    def test_set_latency_after_connect_takes_effect(self):
        """Setters publish a fresh table; existing connections observe
        the change on their next send (copy-on-write, not a stale copy)."""
        network = Network()
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        sides = []
        network.listen("s", sides.append)
        client = network.connect("c", "s")
        client.send(b"x", sender_host=host)
        assert clock.wall_ns() == 0
        network.set_latency("c", "s", 7_000)
        client.send(b"y", sender_host=host)
        assert clock.wall_ns() == 7_000
