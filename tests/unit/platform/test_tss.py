"""Unit tests for thread-specific storage."""

import threading

from repro.platform.tss import ThreadSpecificStorage


class TestThreadSpecificStorage:
    def test_get_default(self):
        tss = ThreadSpecificStorage()
        assert tss.get("ftl") is None
        assert tss.get("ftl", "fallback") == "fallback"

    def test_set_and_get(self):
        tss = ThreadSpecificStorage()
        tss.set("ftl", "value")
        assert tss.get("ftl") == "value"

    def test_pop(self):
        tss = ThreadSpecificStorage()
        tss.set("ftl", 1)
        assert tss.pop("ftl") == 1
        assert tss.get("ftl") is None
        assert tss.pop("ftl", "gone") == "gone"

    def test_isolation_between_threads(self):
        tss = ThreadSpecificStorage()
        tss.set("ftl", "main")
        seen = {}

        def worker():
            seen["before"] = tss.get("ftl")
            tss.set("ftl", "worker")
            seen["after"] = tss.get("ftl")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["after"] == "worker"
        assert tss.get("ftl") == "main"

    def test_clear_thread(self):
        tss = ThreadSpecificStorage()
        tss.set("a", 1)
        tss.set("b", 2)
        tss.clear_thread()
        assert tss.get("a") is None
        assert tss.get("b") is None

    def test_len_counts_threads(self):
        tss = ThreadSpecificStorage()
        assert len(tss) == 0
        tss.set("x", 1)
        assert len(tss) == 1

        def worker():
            tss.set("x", 2)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert len(tss) == 2

    def test_multiple_slots_independent(self):
        tss = ThreadSpecificStorage()
        tss.set("ftl", "chain")
        tss.set("other", "data")
        assert tss.pop("ftl") == "chain"
        assert tss.get("other") == "data"
