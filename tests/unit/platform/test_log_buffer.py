"""Tests for the segmented per-thread log buffer (the probe log path).

The unbounded buffer gives each appending thread a private segment so
the probe hot path is a single GIL-atomic ``list.append`` — no lock.
These tests pin down the collector-facing contract: drain is
copy-then-trim (a racing append is delivered exactly once, in this
drain or the next), ``read_from`` cursors observe every record exactly
once, and the bounded mode still counts drops exactly.
"""

from __future__ import annotations

import threading

import pytest

from repro.platform import LocalLogBuffer


class TestSegmentedAppend:
    def test_records_stay_ordered_within_a_thread(self):
        buf = LocalLogBuffer()
        results: dict[str, list] = {}

        def writer(name):
            for i in range(200):
                buf.append((name, i))

        threads = [
            threading.Thread(target=writer, args=(f"t{k}",)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = buf.drain()
        assert len(records) == 800
        for k in range(4):
            own = [i for name, i in records if name == f"t{k}"]
            assert own == list(range(200))

    def test_no_lock_acquisition_after_first_append(self):
        """Once a thread's segment is registered, appends must not touch
        the buffer lock (that is the entire point of segmentation)."""
        buf = LocalLogBuffer()
        buf.append("warmup")  # registers this thread's segment

        class Forbidden:
            def acquire(self, *a, **k):  # pragma: no cover - failure path
                raise AssertionError("buffer lock acquired on append fast path")

            release = acquire

            def __enter__(self):  # pragma: no cover - failure path
                raise AssertionError("buffer lock acquired on append fast path")

            def __exit__(self, *exc):  # pragma: no cover - failure path
                return False

        real_lock = buf._lock
        buf._lock = Forbidden()
        try:
            for i in range(100):
                buf.append(i)
        finally:
            buf._lock = real_lock
        assert len(buf) == 101


class TestDrainSemantics:
    def test_drain_is_copy_then_trim(self):
        """An append racing a drain lands in that drain or the next —
        never lost, never duplicated. Simulated by appending between the
        copy and the trim via a list subclass hook."""
        buf = LocalLogBuffer()
        buf.append("a")
        segment = buf._segments[0]

        class RacingList(list):
            raced = False

            def __getitem__(self, item):
                # drain's copy step (segment[:count]) triggers the race:
                # another record arrives before the trim runs.
                if isinstance(item, slice) and not RacingList.raced:
                    RacingList.raced = True
                    list.append(self, "racer")
                return list.__getitem__(self, item)

        racing = RacingList(segment)
        buf._segments[0] = racing
        first = buf.drain()
        assert first == ["a"]
        assert RacingList.raced
        second = buf.drain()
        assert second == ["racer"]

    def test_drain_keeps_collecting_after_clear(self):
        buf = LocalLogBuffer()
        buf.append(1)
        assert buf.drain() == [1]
        buf.append(2)
        assert buf.drain() == [2]


class TestReadFromCursor:
    def test_cursor_sees_each_record_exactly_once(self):
        buf = LocalLogBuffer()
        buf.append("a")
        batch, cursor = buf.read_from(None)
        assert batch == ["a"]
        batch, cursor = buf.read_from(cursor)
        assert batch == []
        buf.append("b")
        buf.append("c")
        batch, cursor = buf.read_from(cursor)
        assert batch == ["b", "c"]

    def test_cursor_tracks_new_segments(self):
        """A thread that starts logging after the first read appends a
        new segment; the cursor grows to cover it."""
        buf = LocalLogBuffer()
        buf.append("main-1")
        _, cursor = buf.read_from(None)

        def late_writer():
            buf.append("late-1")
            buf.append("late-2")

        t = threading.Thread(target=late_writer)
        t.start()
        t.join()
        buf.append("main-2")
        batch, cursor = buf.read_from(cursor)
        assert sorted(batch) == ["late-1", "late-2", "main-2"]
        batch, _ = buf.read_from(cursor)
        assert batch == []

    def test_read_from_does_not_drain(self):
        buf = LocalLogBuffer()
        buf.append(1)
        buf.read_from(None)
        assert buf.snapshot() == [1]


class TestBoundedMode:
    def test_capacity_drops_are_counted_exactly(self):
        buf = LocalLogBuffer(capacity=3)
        for i in range(10):
            buf.append(i)
        assert buf.snapshot() == [0, 1, 2]
        assert buf.dropped == 7

    def test_bounded_read_from_uses_flat_cursor(self):
        buf = LocalLogBuffer(capacity=10)
        buf.append("x")
        batch, cursor = buf.read_from(None)
        assert batch == ["x"]
        buf.append("y")
        batch, _ = buf.read_from(cursor)
        assert batch == ["y"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LocalLogBuffer(capacity=0)
