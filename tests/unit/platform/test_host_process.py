"""Unit tests for hosts and simulated processes."""

import pytest

from repro.platform import (
    Host,
    LocalLogBuffer,
    PlatformKind,
    ProcessorType,
    SimProcess,
    VirtualClock,
    capabilities_for,
)


class TestHost:
    def test_defaults(self):
        host = Host("h1")
        assert host.platform_kind is PlatformKind.GENERIC
        assert host.capabilities.supports_thread_cpu

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Host("")

    def test_vxworks_has_no_thread_cpu(self):
        host = Host("vx", PlatformKind.VXWORKS, clock=VirtualClock())
        assert host.thread_cpu_ns() is None

    def test_hpux10_has_no_thread_cpu(self):
        host = Host("old", PlatformKind.HPUX_10, clock=VirtualClock())
        assert host.thread_cpu_ns() is None

    def test_hpux11_reads_thread_cpu(self):
        clock = VirtualClock()
        host = Host("new", PlatformKind.HPUX_11, clock=clock)
        clock.consume(123)
        assert host.thread_cpu_ns() == 123

    def test_clock_skew_applies_to_wall_only(self):
        clock = VirtualClock(start_ns=1_000)
        host = Host("h", PlatformKind.HPUX_11, clock=clock, clock_skew_ns=500)
        assert host.wall_ns() == 1_500
        clock.consume(10)
        assert host.thread_cpu_ns() == 10

    def test_capabilities_table_complete(self):
        for kind in PlatformKind:
            caps = capabilities_for(kind)
            assert caps.timer_resolution_ns > 0

    def test_processor_type(self):
        host = Host("h", processor_type=ProcessorType.PA_RISC)
        assert host.processor_type is ProcessorType.PA_RISC


class TestLocalLogBuffer:
    def test_append_and_snapshot(self):
        buf = LocalLogBuffer()
        buf.append("a")
        buf.append("b")
        assert buf.snapshot() == ["a", "b"]
        assert len(buf) == 2

    def test_drain_empties(self):
        buf = LocalLogBuffer()
        buf.append(1)
        assert buf.drain() == [1]
        assert len(buf) == 0
        assert buf.drain() == []


class TestSimProcess:
    def test_unique_pids(self):
        host = Host("h")
        p1 = SimProcess("a", host)
        p2 = SimProcess("b", host)
        assert p1.pid != p2.pid

    def test_spawn_and_join(self):
        host = Host("h")
        process = SimProcess("p", host)
        seen = []
        process.spawn_thread(lambda: seen.append(1), name="w")
        process.join_threads(timeout=2)
        assert seen == [1]

    def test_shutdown_marks_dead(self):
        process = SimProcess("p", Host("h"))
        assert process.alive
        process.shutdown()
        assert not process.alive
