"""Unit tests for the COM object model, GUIDs and apartments."""

import threading

import pytest

from repro.com import ComInterface, ComObject, ComRuntime, IUNKNOWN, clsid_for, iid_for
from repro.errors import ComError, InterfaceNotSupported
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

IWork = ComInterface("IWork", ("run",))
IExtra = ComInterface("IExtra", ("more",))


class Widget(ComObject):
    implements = (IWork,)

    def run(self):
        return "ran"


class TestGuids:
    def test_deterministic(self):
        assert iid_for("IWork") == iid_for("IWork")

    def test_distinct_names_distinct_iids(self):
        assert iid_for("IWork") != iid_for("IPlay")

    def test_clsid_differs_from_iid(self):
        assert clsid_for("Widget") != iid_for("Widget")

    def test_registry_format(self):
        iid = iid_for("IWork")
        assert iid.startswith("{") and iid.endswith("}") and len(iid) == 38


class TestComInterface:
    def test_iid_property(self):
        assert IWork.iid == iid_for("IWork")

    def test_empty_methods_rejected(self):
        with pytest.raises(ComError):
            ComInterface("IBad", ())

    def test_duplicate_methods_rejected(self):
        with pytest.raises(ComError):
            ComInterface("IBad", ("a", "a"))


class TestComObject:
    def test_query_interface_supported(self):
        widget = Widget()
        assert widget.query_interface(IWork) is widget

    def test_query_interface_iunknown_always(self):
        assert Widget().supports(IUNKNOWN)

    def test_query_interface_unsupported(self):
        with pytest.raises(InterfaceNotSupported):
            Widget().query_interface(IExtra)

    def test_refcounting(self):
        widget = Widget()
        assert widget.add_ref() == 2
        assert widget.release() == 1
        assert widget.release() == 0
        with pytest.raises(ComError):
            widget.release()

    def test_missing_method_detected_at_init(self):
        class Broken(ComObject):
            implements = (IWork,)

        with pytest.raises(ComError):
            Broken()

    def test_instance_ids_unique(self):
        assert Widget().instance_id != Widget().instance_id


def make_runtime(**kwargs):
    process = SimProcess("com-p", Host("h", PlatformKind.HPUX_11, clock=VirtualClock()))
    return ComRuntime(process, **kwargs), process


class TestRuntime:
    def test_create_object_and_proxy(self):
        runtime, process = make_runtime(instrumented=False)
        sta = runtime.create_sta("main")
        identity = runtime.create_object(Widget, sta)
        proxy = runtime.proxy_for(identity, IWork)
        assert proxy.run() == "ran"
        process.shutdown()

    def test_proxy_restricted_to_interface(self):
        runtime, process = make_runtime(instrumented=False)
        sta = runtime.create_sta("main")
        identity = runtime.create_object(Widget, sta)
        proxy = runtime.proxy_for(identity, IWork)
        with pytest.raises(AttributeError):
            proxy.nonexistent()
        process.shutdown()

    def test_proxy_query_interface(self):
        runtime, process = make_runtime(instrumented=False)
        sta = runtime.create_sta("main")
        identity = runtime.create_object(Widget, sta)
        proxy = runtime.proxy_for(identity, IWork)
        with pytest.raises(InterfaceNotSupported):
            proxy.query_interface(IExtra)
        process.shutdown()

    def test_mta_dispatch(self):
        runtime, process = make_runtime(instrumented=False)
        mta = runtime.create_mta(size=2)
        identity = runtime.create_object(Widget, mta)
        proxy = runtime.proxy_for(identity, IWork)
        assert proxy.run() == "ran"
        process.shutdown()

    def test_object_id_includes_process(self):
        runtime, process = make_runtime(instrumented=False)
        sta = runtime.create_sta("s")
        identity = runtime.create_object(Widget, sta)
        assert identity.object_id.startswith("com-p.")
        process.shutdown()

    def test_class_factory(self):
        runtime, process = make_runtime(instrumented=False)
        factory = runtime.register_class(Widget)
        assert runtime.get_class_object(Widget) is factory
        sta = runtime.create_sta("s")
        identity = factory.create_instance(sta)
        assert isinstance(identity.obj, Widget)
        process.shutdown()

    def test_unregistered_class_raises(self):
        runtime, process = make_runtime(instrumented=False)
        with pytest.raises(ComError):
            runtime.get_class_object(Widget)
        process.shutdown()

    def test_exceptions_propagate_through_channel(self):
        class Failing(ComObject):
            implements = (IWork,)

            def run(self):
                raise ValueError("inner failure")

        runtime, process = make_runtime(instrumented=False)
        sta = runtime.create_sta("s")
        identity = runtime.create_object(Failing, sta)
        proxy = runtime.proxy_for(identity, IWork)
        with pytest.raises(ValueError, match="inner failure"):
            proxy.run()
        process.shutdown()

    def test_cross_apartment_args_are_copied(self):
        class Holder(ComObject):
            implements = (ComInterface("IHold", ("take",)),)

            def take(self, data):
                data.append("server-side")
                return data

        runtime, process = make_runtime(instrumented=False)
        sta = runtime.create_sta("s")
        identity = runtime.create_object(Holder, sta)
        proxy = runtime.proxy_for(identity, identity.obj.implements[0])
        original = ["client"]
        result = proxy.take(original)
        assert original == ["client"]  # deep-copied on the way in
        assert result == ["client", "server-side"]
        process.shutdown()
