"""Message-level fault injection on the simulated network."""

import pytest

from repro.errors import TransportError
from repro.faults import FaultInjector, FaultKind, FaultPlan, link_scope
from repro.platform import Host, PlatformKind, VirtualClock


def _connect(plan: FaultPlan):
    injector = FaultInjector(plan)
    network = injector.network()
    server_inbox = []
    network.listen("server", server_inbox.append)
    client = network.connect("client/t1", "server")
    server = server_inbox[0]
    return injector, client, server


def _recv_all(conn, limit=10):
    out = []
    for _ in range(limit):
        try:
            out.append(conn.recv(timeout=0.05))
        except TransportError:
            break
    return out


class TestLinkScope:
    def test_strips_connection_serials(self):
        assert link_scope("client/t3", "server") == "client->server"
        assert link_scope("server", "client/t12") == "server->client"

    def test_plain_labels_untouched(self):
        assert link_scope("a", "b") == "a->b"


class TestEachFaultKind:
    def test_clean_plan_is_transparent(self):
        injector, client, server = _connect(FaultPlan(seed=1))
        client.send(b"one")
        client.send(b"two")
        assert _recv_all(server) == [b"one", b"two"]
        assert injector.events() == []

    def test_drop(self):
        plan = FaultPlan(seed=1, rates={FaultKind.DROP: 1.0})
        injector, client, server = _connect(plan)
        client.send(b"gone")
        assert _recv_all(server) == []
        assert injector.counters() == {"drop@client->server": 1}

    def test_duplicate(self):
        plan = FaultPlan(seed=1, rates={FaultKind.DUPLICATE: 1.0})
        injector, client, server = _connect(plan)
        client.send(b"twice")
        assert _recv_all(server) == [b"twice", b"twice"]

    def test_reorder_swaps_adjacent_messages(self):
        # Fault only message 0: it is held and delivered after message 1.
        class ReorderFirst(FaultPlan):
            def message_fault(self, scope, index):
                return FaultKind.REORDER if index == 0 else None

        injector, client, server = _connect(ReorderFirst(seed=1))
        client.send(b"first")
        client.send(b"second")
        assert _recv_all(server) == [b"second", b"first"]

    def test_reorder_tail_flushes_on_next_fault_decision(self):
        plan = FaultPlan(seed=1, rates={FaultKind.REORDER: 1.0})
        injector, client, server = _connect(plan)
        client.send(b"a")  # held
        client.send(b"b")  # flushes a, holds b
        assert _recv_all(server) == [b"a"]

    def test_corrupt_flips_exactly_one_byte(self):
        plan = FaultPlan(seed=3, rates={FaultKind.CORRUPT: 1.0})
        injector, client, server = _connect(plan)
        original = bytes(range(32))
        client.send(original)
        (received,) = _recv_all(server)
        assert len(received) == len(original)
        diffs = [i for i, (a, b) in enumerate(zip(original, received)) if a != b]
        assert len(diffs) == 1

    def test_truncate_shortens_payload(self):
        plan = FaultPlan(seed=2, rates={FaultKind.TRUNCATE: 1.0})
        injector, client, server = _connect(plan)
        client.send(b"x" * 64)
        (received,) = _recv_all(server)
        assert len(received) < 64
        assert received == b"x" * len(received)

    def test_reset_closes_the_connection(self):
        plan = FaultPlan(seed=1, rates={FaultKind.RESET: 1.0})
        injector, client, server = _connect(plan)
        client.send(b"never arrives")
        assert client.closed
        with pytest.raises(TransportError):
            server.recv(timeout=0.05)
        with pytest.raises(TransportError):
            client.send(b"after reset")

    def test_delay_charges_the_sender_clock(self):
        plan = FaultPlan(seed=1, rates={FaultKind.DELAY: 1.0}, delay_ns=5_000_000)
        injector, client, server = _connect(plan)
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        before = clock.wall_ns()
        client.send(b"slow", sender_host=host)
        assert clock.wall_ns() - before >= 5_000_000
        assert _recv_all(server) == [b"slow"]


class TestDeterministicReplay:
    def test_same_seed_same_fault_sites(self):
        plan = FaultPlan(
            seed=21,
            rates={FaultKind.DROP: 0.3, FaultKind.DUPLICATE: 0.2},
        )

        def run():
            injector, client, server = _connect(plan)
            for i in range(50):
                client.send(f"m{i}".encode())
            return [e for e in injector.events()], _recv_all(server, limit=200)

        events_a, received_a = run()
        events_b, received_b = run()
        assert events_a == events_b
        assert received_a == received_b
        assert events_a  # the seed actually injected something

    def test_connection_serial_does_not_change_the_schedule(self):
        # Thread t1 vs t7 labels map to the same link scope.
        plan = FaultPlan(seed=21, rates={FaultKind.DROP: 0.3})
        injector = FaultInjector(plan)
        network = injector.network()
        inbox = []
        network.listen("server", inbox.append)
        first = network.connect("client/t1", "server")
        second = network.connect("client/t7", "server")
        for i in range(30):
            first.send(f"m{i}".encode())
        received_first = _recv_all(inbox[0], limit=60)
        for i in range(30):
            second.send(f"m{i}".encode())
        received_second = _recv_all(inbox[1], limit=60)
        assert received_first == received_second
