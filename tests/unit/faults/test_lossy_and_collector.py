"""Lossy probe-record delivery and the collector's resilience to it."""

import pytest

from repro.collector import LogCollector, MonitoringDatabase
from repro.core import MonitorMode
from repro.errors import TransientCollectorError
from repro.faults import FaultInjector, FaultPlan, LossyLogBuffer
from repro.platform.process import LocalLogBuffer
from tests.helpers import Call, simulate


def _simulated_process(calls=3):
    sim = simulate(
        [Call("I::f", cpu_ns=100) for _ in range(calls)],
        mode=MonitorMode.LATENCY,
        fresh_chain_per_top_call=True,
    )
    return sim.process


class TestBoundedLogBuffer:
    def test_capacity_drops_and_counts(self):
        buffer = LocalLogBuffer(capacity=3)
        for i in range(5):
            buffer.append(i)
        assert len(buffer) == 3
        assert buffer.dropped == 2
        assert buffer.snapshot() == [0, 1, 2]

    def test_unbounded_by_default(self):
        buffer = LocalLogBuffer()
        for i in range(1000):
            buffer.append(i)
        assert len(buffer) == 1000
        assert buffer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LocalLogBuffer(capacity=0)


class TestLossyLogBuffer:
    def test_appends_pass_through(self):
        injector = FaultInjector(FaultPlan(seed=1))
        inner = LocalLogBuffer()
        lossy = LossyLogBuffer(inner, injector, "proc")
        lossy.append("r1")
        assert len(lossy) == 1
        assert lossy.snapshot() == ["r1"]
        assert lossy.drain() == ["r1"]
        assert len(inner) == 0

    def test_transient_failure_leaves_records_intact(self):
        injector = FaultInjector(FaultPlan(seed=1, collect_fail_attempts=2))
        lossy = LossyLogBuffer(LocalLogBuffer(), injector, "proc")
        lossy.append("r1")
        for _ in range(2):
            with pytest.raises(TransientCollectorError):
                lossy.drain()
            assert len(lossy) == 1
        assert lossy.drain() == ["r1"]

    def test_record_loss_filters_deterministically(self):
        def run():
            injector = FaultInjector(FaultPlan(seed=5, record_loss_rate=0.4))
            lossy = LossyLogBuffer(LocalLogBuffer(), injector, "proc")
            for i in range(100):
                lossy.append(i)
            return lossy.drain()

        first, second = run(), run()
        assert first == second
        assert 0 < len(first) < 100

    def test_lossy_delivery_wraps_once(self):
        injector = FaultInjector(FaultPlan(seed=1))
        process = _simulated_process()
        injector.lossy_delivery(process)
        wrapped = process.log_buffer
        assert isinstance(wrapped, LossyLogBuffer)
        injector.lossy_delivery(process)
        assert process.log_buffer is wrapped


class TestCollectorResilience:
    def test_retry_recovers_transient_failures(self):
        process = _simulated_process()
        expected = len(process.log_buffer)
        injector = FaultInjector(FaultPlan(seed=1, collect_fail_attempts=2))
        injector.lossy_delivery(process)
        collector = LogCollector(MonitoringDatabase(), retries=3, backoff_s=0.0)
        run_id = collector.collect([process], description="retry test")
        assert collector.database.record_count(run_id) == expected
        loss = _loss(collector.database, run_id)
        assert loss["drain_retries"] == 2
        assert loss["failed_drains"] == []
        assert loss["records_uncollected"] == 0

    def test_exhausted_retries_account_uncollected(self):
        process = _simulated_process()
        buffered = len(process.log_buffer)
        injector = FaultInjector(FaultPlan(seed=1, collect_fail_attempts=10))
        injector.lossy_delivery(process)
        collector = LogCollector(MonitoringDatabase(), retries=2, backoff_s=0.0)
        run_id = collector.collect([process], description="failed drain")
        assert collector.database.record_count(run_id) == 0
        loss = _loss(collector.database, run_id)
        assert loss["failed_drains"] == ["sim"]
        assert loss["records_uncollected"] == buffered
        # The records survive for a later, healthier collection.
        assert len(process.log_buffer) == buffered

    def test_delivery_loss_is_accounted(self):
        process = _simulated_process(calls=10)
        expected = len(process.log_buffer)
        injector = FaultInjector(FaultPlan(seed=7, record_loss_rate=0.3))
        injector.lossy_delivery(process)
        collector = LogCollector(MonitoringDatabase(), backoff_s=0.0)
        run_id = collector.collect([process])
        delivered = collector.database.record_count(run_id)
        loss = _loss(collector.database, run_id)
        assert loss["records_lost_in_delivery"] == expected - delivered > 0

    def test_probe_drops_are_accounted(self):
        process = _simulated_process()
        process.log_buffer.append  # sanity: buffer is live
        # Re-bound: replace with a tiny buffer and overflow it.
        records = process.log_buffer.drain()
        bounded = LocalLogBuffer(capacity=2)
        for record in records:
            bounded.append(record)
        process.log_buffer = bounded
        collector = LogCollector(MonitoringDatabase(), backoff_s=0.0)
        run_id = collector.collect([process])
        loss = _loss(collector.database, run_id)
        assert loss["records_dropped_at_probe"] == len(records) - 2

    def test_clean_collection_reports_zero_loss(self):
        process = _simulated_process()
        collector = LogCollector(MonitoringDatabase())
        run_id = collector.collect([process])
        loss = _loss(collector.database, run_id)
        assert loss == {
            "drain_retries": 0,
            "failed_drains": [],
            "records_dropped_at_probe": 0,
            "records_lost_in_delivery": 0,
            "records_uncollected": 0,
        }

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            LogCollector(MonitoringDatabase(), retries=-1)


def _loss(database, run_id):
    for meta in database.runs():
        if meta.run_id == run_id:
            return meta.extra["loss"]
    raise AssertionError(f"run {run_id} not found")
