"""FaultPlan determinism: same seed, same schedule — always."""

import json

import pytest

from repro.faults import MESSAGE_FAULT_PRIORITY, FaultKind, FaultPlan


def _plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        rates={
            FaultKind.DROP: 0.1,
            FaultKind.DUPLICATE: 0.05,
            FaultKind.REORDER: 0.05,
            FaultKind.CORRUPT: 0.02,
            FaultKind.TRUNCATE: 0.02,
            FaultKind.RESET: 0.01,
            FaultKind.DELAY: 0.05,
        },
        record_loss_rate=0.1,
        collect_fail_attempts=2,
        crash_calls={"I::op": 3},
    )


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = _plan(7).schedule("client->server", 500)
        b = _plan(7).schedule("client->server", 500)
        assert a == b

    def test_schedule_is_byte_identical_across_instances(self):
        a = json.dumps(_plan(42).schedule("x->y", 1000)).encode()
        b = json.dumps(_plan(42).schedule("x->y", 1000)).encode()
        assert a == b

    def test_different_seeds_differ(self):
        a = _plan(1).schedule("client->server", 500)
        b = _plan(2).schedule("client->server", 500)
        assert a != b

    def test_different_scopes_differ(self):
        plan = _plan(7)
        assert plan.schedule("a->b", 500) != plan.schedule("b->a", 500)

    def test_scopes_are_independent(self):
        # Adding/consulting other scopes never perturbs a scope's schedule.
        plan = _plan(9)
        before = plan.schedule("a->b", 200)
        plan.schedule("noise->noise", 200)
        plan.message_fault("other", 0)
        assert plan.schedule("a->b", 200) == before

    def test_fraction_is_uniformish_and_in_range(self):
        plan = FaultPlan(seed=3)
        draws = [plan.fraction("s", i) for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55

    def test_rate_one_always_fires_rate_zero_never(self):
        always = FaultPlan(seed=5, rates={FaultKind.DROP: 1.0})
        never = FaultPlan(seed=5, rates={FaultKind.DROP: 0.0})
        assert all(f == "drop" for f in always.schedule("s", 100))
        assert all(f == "pass" for f in never.schedule("s", 100))

    def test_priority_resolves_multi_fault_draws(self):
        # With every rate at 1.0, the highest-priority kind always wins.
        plan = FaultPlan(seed=1, rates={k: 1.0 for k in MESSAGE_FAULT_PRIORITY})
        assert plan.message_fault("s", 0) is MESSAGE_FAULT_PRIORITY[0]


class TestScheduleShape:
    def test_observed_rate_tracks_configured_rate(self):
        plan = FaultPlan(seed=11, rates={FaultKind.DROP: 0.2})
        schedule = plan.schedule("link", 5000)
        drops = schedule.count("drop")
        assert 0.15 < drops / 5000 < 0.25

    def test_crash_at(self):
        plan = _plan(1)
        assert plan.crash_at("I::op") == 3
        assert plan.crash_at("I::other") is None

    def test_drain_fails_only_for_leading_attempts(self):
        plan = _plan(1)
        assert plan.drain_fails("proc", 0)
        assert plan.drain_fails("proc", 1)
        assert not plan.drain_fails("proc", 2)

    def test_record_loss_is_deterministic(self):
        plan = _plan(13)
        losses = [plan.loses_record("proc", i) for i in range(300)]
        assert losses == [plan.loses_record("proc", i) for i in range(300)]
        assert any(losses) and not all(losses)


class TestSerialization:
    def test_json_roundtrip(self):
        plan = _plan(99)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.schedule("a->b", 300) == plan.schedule("a->b", 300)

    def test_to_json_is_canonical(self):
        assert _plan(99).to_json() == _plan(99).to_json()
        assert _plan(99).to_json() != _plan(98).to_json()

    def test_from_dict_defaults(self):
        plan = FaultPlan.from_dict({"seed": 4})
        assert plan.seed == 4
        assert plan.rates == {}
        assert plan.record_loss_rate == 0.0
        assert plan.crash_calls == {}


class TestValidation:
    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=1, rates={FaultKind.DROP: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(seed=1, rates={FaultKind.DROP: -0.1})

    def test_rejects_out_of_range_record_loss(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=1, record_loss_rate=2.0)

    def test_string_keys_coerce_to_fault_kinds(self):
        plan = FaultPlan(seed=1, rates={"drop": 0.5})
        assert plan.rates == {FaultKind.DROP: 0.5}
