"""Stream framing: the incremental parser is fragmentation-proof.

The asyncio plane re-slices a coalesced byte stream back into GIOP
frames; correctness means the incremental parser is byte-identical to
the one-shot reference decoder under *any* chunk fragmentation — 1-byte
splits, length prefixes straddling chunks, many frames per chunk.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.orb.aio.framing import (
    ASYNC_STREAM_PRELUDE,
    MAX_FRAME_BYTES,
    FramedConnectionWriter,
    StreamFrameParser,
    frame_message,
    parse_frames_blocking,
)
from repro.orb.giop import decode_message


def _fragment(stream: bytes, cuts: list[int]) -> list[bytes]:
    """Split ``stream`` at the (normalized) cut offsets."""
    points = sorted({min(c % (len(stream) + 1), len(stream)) for c in cuts})
    chunks = []
    prev = 0
    for point in points:
        chunks.append(stream[prev:point])
        prev = point
    chunks.append(stream[prev:])
    return [c for c in chunks if c] or [b""]


class TestFragmentationProperty:
    @given(
        payloads=st.lists(st.binary(min_size=0, max_size=64), max_size=12),
        cuts=st.lists(st.integers(min_value=0, max_value=10_000), max_size=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_incremental_matches_blocking_reference(self, payloads, cuts):
        stream = b"".join(frame_message(p) for p in payloads)
        parser = StreamFrameParser()
        out: list[bytes] = []
        for chunk in _fragment(stream, cuts):
            out.extend(parser.feed(chunk))
        assert out == parse_frames_blocking(stream) == payloads
        assert parser.pending_bytes == 0

    @given(payloads=st.lists(st.binary(min_size=0, max_size=32), max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_one_byte_splits(self, payloads):
        stream = b"".join(frame_message(p) for p in payloads)
        parser = StreamFrameParser()
        out: list[bytes] = []
        for i in range(len(stream)):
            out.extend(parser.feed(stream[i : i + 1]))
        assert out == payloads


class TestFramingEdges:
    def test_header_straddles_feed_boundary(self):
        frame = frame_message(b"abcdef")
        parser = StreamFrameParser()
        assert parser.feed(frame[:2]) == []
        assert parser.pending_bytes == 2
        assert parser.feed(frame[2:5]) == []
        assert parser.feed(frame[5:]) == [b"abcdef"]

    def test_trailing_partial_frame_stays_pending(self):
        stream = frame_message(b"one") + frame_message(b"two")[:3]
        parser = StreamFrameParser()
        assert parser.feed(stream) == [b"one"]
        assert parser.pending_bytes == 3
        with pytest.raises(MarshalError):
            parse_frames_blocking(stream)

    def test_oversized_length_prefix_rejected(self):
        bad = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(MarshalError):
            StreamFrameParser().feed(bad)
        with pytest.raises(MarshalError):
            parse_frames_blocking(bad)
        with pytest.raises(MarshalError):
            frame_message(b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_prelude_is_not_a_valid_giop_message(self):
        # Legacy message-mode readers must drop the prelude as malformed
        # instead of misinterpreting it; that is the handshake's safety.
        with pytest.raises(Exception):
            decode_message(ASYNC_STREAM_PRELUDE)

    def test_framed_writer_frames_and_delegates(self):
        sent = []

        class FakeConn:
            local_label = "a"
            peer_label = "b"
            closed = False

            def send(self, payload, sender_host=None):
                sent.append(payload)

            def close(self):
                self.closed = True

        conn = FakeConn()
        writer = FramedConnectionWriter(conn)
        writer.send(b"hello")
        assert sent == [frame_message(b"hello")]
        assert parse_frames_blocking(sent[0]) == [b"hello"]
        assert writer.local_label == "a" and writer.peer_label == "b"
        assert not writer.closed
        writer.close()
        assert writer.closed
