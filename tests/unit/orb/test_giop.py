"""Unit tests for GIOP-like message framing."""

import pytest

from repro.errors import MarshalError
from repro.orb.giop import (
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    decode_message,
)


class TestRequestMessage:
    def test_roundtrip_with_ftl(self):
        message = RequestMessage(
            request_id=7,
            object_key="server.obj-3",
            interface="Mod::Iface",
            operation="do_thing",
            oneway=False,
            body=b"\x01\x02",
            ftl=b"\xaa" * 24,
        )
        decoded = decode_message(message.encode())
        assert isinstance(decoded, RequestMessage)
        assert decoded == message

    def test_roundtrip_without_ftl(self):
        message = RequestMessage(
            request_id=1,
            object_key="k",
            interface="I",
            operation="op",
            oneway=True,
            body=b"",
            ftl=None,
        )
        decoded = decode_message(message.encode())
        assert decoded.ftl is None
        assert decoded.oneway

    def test_empty_body(self):
        message = RequestMessage(2, "k", "I", "op", False, b"")
        assert decode_message(message.encode()).body == b""


class TestReplyMessage:
    @pytest.mark.parametrize("status", list(ReplyStatus))
    def test_roundtrip_each_status(self, status):
        message = ReplyMessage(request_id=9, status=status, body=b"xyz", ftl=b"\x00" * 24)
        decoded = decode_message(message.encode())
        assert isinstance(decoded, ReplyMessage)
        assert decoded == message

    def test_reply_without_ftl(self):
        message = ReplyMessage(request_id=3, status=ReplyStatus.OK, body=b"")
        assert decode_message(message.encode()).ftl is None


class TestDecodeErrors:
    def test_bad_magic(self):
        with pytest.raises(MarshalError):
            decode_message(b"\x00\x00\x00\x00\x00\x00\x00\x00")

    def test_truncated_message(self):
        message = RequestMessage(1, "k", "I", "op", False, b"payload")
        with pytest.raises(MarshalError):
            decode_message(message.encode()[:10])

    def test_unknown_kind(self):
        good = RequestMessage(1, "k", "I", "op", False, b"").encode()
        # Kind octet sits right after the 4-byte magic.
        bad = good[:4] + b"\x09" + good[5:]
        with pytest.raises((MarshalError, ValueError)):
            decode_message(bad)
