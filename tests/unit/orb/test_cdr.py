"""Unit tests for the CDR codec primitives."""

import pytest

from repro.errors import MarshalError
from repro.orb.cdr import CdrDecoder, CdrEncoder


class TestEncoderDecoder:
    def test_primitive_roundtrip_each_kind(self):
        encoder = CdrEncoder()
        values = [
            ("octet", 7),
            ("boolean", True),
            ("char", "Z"),
            ("short", -5),
            ("unsigned short", 65535),
            ("long", -123456),
            ("unsigned long", 4000000000),
            ("long long", -(2**62)),
            ("unsigned long long", 2**63),
            ("float", 1.5),
            ("double", 2.25),
        ]
        for kind, value in values:
            encoder.write_primitive(kind, value)
        decoder = CdrDecoder(encoder.getvalue())
        for kind, value in values:
            assert decoder.read_primitive(kind) == value

    def test_alignment_padding(self):
        encoder = CdrEncoder()
        encoder.write_primitive("octet", 1)
        encoder.write_primitive("long", 2)  # requires 3 padding bytes
        payload = encoder.getvalue()
        assert len(payload) == 8
        decoder = CdrDecoder(payload)
        assert decoder.read_primitive("octet") == 1
        assert decoder.read_primitive("long") == 2

    def test_double_alignment(self):
        encoder = CdrEncoder()
        encoder.write_primitive("octet", 1)
        encoder.write_primitive("double", 4.5)
        assert len(encoder.getvalue()) == 16

    def test_string_roundtrip_with_nul(self):
        encoder = CdrEncoder()
        encoder.write_string("hi")
        payload = encoder.getvalue()
        # 4-byte length + "hi\0"
        assert payload[4:7] == b"hi\x00"
        assert CdrDecoder(payload).read_string() == "hi"

    def test_bytes_roundtrip(self):
        encoder = CdrEncoder()
        encoder.write_bytes(b"\x00\x01\x02")
        assert CdrDecoder(encoder.getvalue()).read_bytes() == b"\x00\x01\x02"

    def test_unknown_kind_raises(self):
        with pytest.raises(MarshalError):
            CdrEncoder().write_primitive("quux", 1)
        with pytest.raises(MarshalError):
            CdrDecoder(b"\x00" * 8).read_primitive("quux")

    def test_underrun_raises(self):
        with pytest.raises(MarshalError):
            CdrDecoder(b"\x00\x01").read_primitive("long")

    def test_string_underrun_raises(self):
        encoder = CdrEncoder()
        encoder.write_primitive("unsigned long", 100)
        with pytest.raises(MarshalError):
            CdrDecoder(encoder.getvalue()).read_string()

    def test_expect_exhausted_allows_padding(self):
        decoder = CdrDecoder(b"\x00\x00\x00")
        decoder.expect_exhausted()  # trailing zero padding is fine

    def test_expect_exhausted_rejects_real_data(self):
        decoder = CdrDecoder(b"\x00\x00\x00\x07")
        with pytest.raises(MarshalError):
            decoder.expect_exhausted()

    def test_char_accepts_int_or_str(self):
        encoder = CdrEncoder()
        encoder.write_primitive("char", "A")
        encoder.write_primitive("char", 66)
        decoder = CdrDecoder(encoder.getvalue())
        assert decoder.read_primitive("char") == "A"
        assert decoder.read_primitive("char") == "B"

    def test_struct_pack_overflow_wrapped(self):
        with pytest.raises(MarshalError):
            CdrEncoder().write_primitive("short", 2**20)
