"""Unit tests for ORB lifecycle and resolution edge cases."""

import pytest

from repro.errors import OrbError, TransportError
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb, ObjectRef

IDL = "module LC { interface Thing { long poke(); }; };"


def build(cluster):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    process = cluster.process("proc")
    orb = Orb(process, cluster.network, registry=registry)
    return compiled, orb


class TestActivation:
    def test_activate_infers_interface(self, cluster):
        compiled, orb = build(cluster)

        class ThingImpl(compiled.Thing):
            def poke(self):
                return 1

        ref = orb.activate(ThingImpl())
        assert ref.interface == "LC::Thing"
        assert ref.component == "ThingImpl"

    def test_activate_requires_inferable_interface(self, cluster):
        compiled, orb = build(cluster)

        class Naked:
            pass

        with pytest.raises(OrbError):
            orb.activate(Naked())

    def test_custom_component_and_key(self, cluster):
        compiled, orb = build(cluster)

        class ThingImpl(compiled.Thing):
            def poke(self):
                return 1

        ref = orb.activate(ThingImpl(), object_key="thing-1", component="Gadget")
        assert ref.object_key == "thing-1"
        assert ref.component == "Gadget"

    def test_servant_learns_its_reference(self, cluster):
        compiled, orb = build(cluster)

        class ThingImpl(compiled.Thing):
            def poke(self):
                return 1

        servant = ThingImpl()
        ref = orb.activate(servant)
        assert servant._repro_object_ref == ref


class TestResolution:
    def test_resolve_from_url(self, cluster):
        compiled, orb = build(cluster)

        class ThingImpl(compiled.Thing):
            def poke(self):
                return 7

        ref = orb.activate(ThingImpl())
        stub = orb.resolve(ref.to_url())
        assert stub.poke() == 7

    def test_resolve_unknown_interface_fails(self, cluster):
        compiled, orb = build(cluster)
        ref = ObjectRef("proc", "k", "LC::Nonexistent", "X")
        with pytest.raises(OrbError):
            orb.resolve(ref)

    def test_localize_lists(self, cluster):
        compiled, orb = build(cluster)

        class ThingImpl(compiled.Thing):
            def poke(self):
                return 1

        ref = orb.activate(ThingImpl())
        localized = orb.localize([ref, [ref]])
        assert localized[0].poke() == 1
        assert localized[1][0].poke() == 1

    def test_localize_passthrough_for_plain_values(self, cluster):
        compiled, orb = build(cluster)
        assert orb.localize(42) == 42
        assert orb.localize("text") == "text"


class TestShutdown:
    def test_shutdown_idempotent(self, cluster):
        compiled, orb = build(cluster)
        orb.shutdown()
        orb.shutdown()  # no error

    def test_send_after_shutdown_rejected(self, cluster):
        compiled, orb = build(cluster)

        class ThingImpl(compiled.Thing):
            def poke(self):
                return 1

        ref = orb.activate(ThingImpl())
        stub = orb.resolve(ref)
        orb.shutdown()
        with pytest.raises((OrbError, TransportError)):
            stub.poke()

    def test_address_reusable_after_shutdown(self, cluster):
        compiled, orb = build(cluster)
        process = orb.process
        orb.shutdown()
        registry = InterfaceRegistry()
        compile_idl(IDL, instrument=True, registry=registry)
        orb2 = Orb(process, cluster.network, registry=registry)
        assert orb2.address == orb.address
        orb2.shutdown()
