"""Byte-identity of the fused CDR fast path against the slow path.

The fast path (:mod:`repro.orb.fastcdr`) compiles per-operation marshal
plans with fused ``struct`` runs; the contract is that for **every** IDL
type — primitive, enum, string, sequence, struct, and any interleaving
of them — the fast path produces byte-for-byte the same encapsulation
as the unfused reference codec, and decodes the slow path's bytes to
equal values. Property-driven: hypothesis draws random type signatures
and matching values.
"""

from __future__ import annotations

import enum

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MarshalError
from repro.idl import compile_idl
from repro.idl.types import (
    BOOLEAN,
    CHAR,
    DOUBLE,
    FLOAT,
    LONG,
    LONGLONG,
    OCTET,
    SHORT,
    STRING,
    ULONG,
    ULONGLONG,
    USHORT,
    EnumType,
    SequenceType,
    StructType,
)
from repro.orb.cdr import CdrEncoder
from repro.orb.fastcdr import MarshalPlan
from repro.orb.runtime import (
    InterfaceRegistry,
    _marshal_args,
    _marshal_args_slow,
    _marshal_result,
    _marshal_result_slow,
    _unmarshal_args,
    _unmarshal_args_slow,
    _unmarshal_result,
    _unmarshal_result_slow,
)


class _Color(enum.Enum):
    R = 0
    G = 1
    B = 2


_COLOR = EnumType("Color", ["R", "G", "B"], _Color)


class _Pair:
    def __init__(self, a, b):
        self.a = a
        self.b = b

    def __eq__(self, other):
        return isinstance(other, _Pair) and (self.a, self.b) == (other.a, other.b)


_PAIR = StructType("Pair", [("a", LONG), ("b", STRING)], _Pair)

#: Every marshal-planable IDL type paired with a value strategy.
_TYPE_STRATEGIES = [
    (OCTET, st.integers(0, 255)),
    (BOOLEAN, st.booleans()),
    (CHAR, st.characters(min_codepoint=1, max_codepoint=127)),
    (SHORT, st.integers(-(2**15), 2**15 - 1)),
    (USHORT, st.integers(0, 2**16 - 1)),
    (LONG, st.integers(-(2**31), 2**31 - 1)),
    (ULONG, st.integers(0, 2**32 - 1)),
    (LONGLONG, st.integers(-(2**63), 2**63 - 1)),
    (ULONGLONG, st.integers(0, 2**64 - 1)),
    (FLOAT, st.just(1.5)),  # float32 round-trips exactly only for dyadics
    (DOUBLE, st.floats(allow_nan=False, allow_infinity=False)),
    (STRING, st.text(max_size=40)),
    (_COLOR, st.sampled_from(list(_Color))),
    (SequenceType(LONG), st.lists(st.integers(-(2**31), 2**31 - 1), max_size=8)),
    (
        _PAIR,
        st.builds(_Pair, st.integers(-(2**31), 2**31 - 1), st.text(max_size=10)),
    ),
]

_signature = st.lists(
    st.sampled_from(range(len(_TYPE_STRATEGIES))), min_size=0, max_size=10
)


def _slow_marshal(types, values) -> bytes:
    encoder = CdrEncoder()
    for idl_type, value in zip(types, values):
        idl_type.marshal(encoder, value)
    return encoder.getvalue()


class TestPlanEquivalence:
    @given(data=st.data(), indexes=_signature)
    @settings(max_examples=150, deadline=None)
    def test_fast_bytes_identical_and_roundtrip(self, data, indexes):
        types = [_TYPE_STRATEGIES[i][0] for i in indexes]
        values = [data.draw(_TYPE_STRATEGIES[i][1]) for i in indexes]
        plan = MarshalPlan(types)
        fast = bytes(plan.marshal(values))
        slow = _slow_marshal(types, values)
        assert fast == slow
        # The fast decoder reads the slow path's bytes (and vice versa).
        assert list(plan.unmarshal(slow)) == list(plan.unmarshal(fast))

    @pytest.mark.parametrize(
        "index,value",
        [
            (0, 255), (1, True), (2, "k"), (3, -3), (4, 9), (5, -(2**31)),
            (6, 2**32 - 1), (7, -(2**63)), (8, 2**64 - 1), (9, 0.5),
            (10, -1.25), (11, "solo"), (12, _Color.B), (13, [7, 8]),
            (14, _Pair(1, "x")),
        ],
    )
    def test_every_type_kind_alone(self, index, value):
        """Each type also fused as a single-field plan (alignment mod 0)."""
        idl_type, _ = _TYPE_STRATEGIES[index]
        plan = MarshalPlan([idl_type])
        assert bytes(plan.marshal([value])) == _slow_marshal([idl_type], [value])


IDL = """
module EQ {
  enum Mood { HAPPY, GRUMPY };
  struct Point { long x; double y; string tag; };
  interface Kitchen {
    double mix(in octet a, in boolean b, in char c, in short d,
               in unsigned short e, in long f, in unsigned long g,
               in long long h, in unsigned long long i, in float j,
               in double k, in string l, in Mood m, in Point p,
               in sequence<long> seq, out long leftovers);
  };
};
"""

_ARGS = (
    200, True, "q", -7, 65000, -(2**30), 2**31, -(2**62), 2**63,
    0.25, 3.5, "stir", "GRUMPY",
)


def _kitchen_op():
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=False, registry=registry)
    op = compiled._SPEC.interfaces["EQ::Kitchen"].operation("mix")
    point = compiled.Point(x=4, y=0.5, tag="here")
    args = _ARGS + (point, [1, 2, 3])
    return op, args


class TestOperationEquivalence:
    def test_args_bytes_identical(self):
        op, args = _kitchen_op()
        assert bytes(_marshal_args(op, args)) == _marshal_args_slow(op, args)

    def test_args_cross_unmarshal(self):
        op, args = _kitchen_op()
        body = _marshal_args_slow(op, args)
        fast_values = _unmarshal_args(op, body)
        slow_values = _unmarshal_args_slow(op, body)
        assert fast_values == slow_values

    def test_result_bytes_identical_and_roundtrip(self):
        op, _ = _kitchen_op()
        result = (2.5, 42)  # return value plus the out parameter
        fast = bytes(_marshal_result(op, result))
        slow = _marshal_result_slow(op, result)
        assert fast == slow
        assert _unmarshal_result(op, slow) == _unmarshal_result_slow(op, fast)

    def test_range_error_parity(self):
        """A value the prechecks can't reject (long = 2**40) surfaces the
        exact slow-path MarshalError via the fast path's replay."""
        op, args = _kitchen_op()
        bad = list(args)
        bad[5] = 2**40  # the 'long f' parameter
        with pytest.raises(MarshalError) as fast_exc:
            _marshal_args(op, tuple(bad))
        with pytest.raises(MarshalError) as slow_exc:
            _marshal_args_slow(op, tuple(bad))
        assert str(fast_exc.value) == str(slow_exc.value)

    def test_type_error_parity(self):
        op, args = _kitchen_op()
        bad = list(args)
        bad[0] = "not-an-octet"
        with pytest.raises(MarshalError) as fast_exc:
            _marshal_args(op, tuple(bad))
        with pytest.raises(MarshalError) as slow_exc:
            _marshal_args_slow(op, tuple(bad))
        assert str(fast_exc.value) == str(slow_exc.value)
