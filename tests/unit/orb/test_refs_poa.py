"""Unit tests for object references and the object adapter."""

import pytest

from repro.errors import MarshalError, ObjectNotFound
from repro.orb.poa import ObjectAdapter
from repro.orb.refs import ObjectRef


class TestObjectRef:
    def test_url_roundtrip(self):
        ref = ObjectRef("procA", "procA.obj-1", "Mod::Iface", "Comp")
        assert ObjectRef.from_url(ref.to_url()) == ref

    def test_url_without_component(self):
        ref = ObjectRef("procA", "key", "Mod::Iface")
        url = ref.to_url()
        assert "!" not in url
        assert ObjectRef.from_url(url) == ref

    def test_url_format(self):
        ref = ObjectRef("p", "k", "I", "C")
        assert ref.to_url() == "repro://p/k#I!C"

    def test_bad_scheme(self):
        with pytest.raises(MarshalError):
            ObjectRef.from_url("http://nope/k#I")

    @pytest.mark.parametrize("url", ["repro://", "repro://a", "repro://a/b", "repro:///k#I"])
    def test_malformed_urls(self, url):
        with pytest.raises(MarshalError):
            ObjectRef.from_url(url)

    def test_reserved_characters_rejected(self):
        with pytest.raises(MarshalError):
            ObjectRef("a/b", "k", "I").to_url()
        with pytest.raises(MarshalError):
            ObjectRef("a", "k#x", "I").to_url()


class TestObjectAdapter:
    def test_activate_and_find(self):
        adapter = ObjectAdapter("proc")
        skeleton = object()
        ref = adapter.activate(skeleton, None, "I", "C")
        assert ref.address == "proc"
        assert adapter.find(ref.object_key) is skeleton

    def test_minted_keys_embed_address_and_are_unique(self):
        adapter = ObjectAdapter("proc")
        ref1 = adapter.activate(object(), None, "I", "C")
        ref2 = adapter.activate(object(), None, "I", "C")
        assert ref1.object_key != ref2.object_key
        assert ref1.object_key.startswith("proc.")

    def test_explicit_key(self):
        adapter = ObjectAdapter("proc")
        ref = adapter.activate(object(), "my-key", "I", "C")
        assert ref.object_key == "my-key"

    def test_duplicate_key_rejected(self):
        adapter = ObjectAdapter("proc")
        adapter.activate(object(), "k", "I", "C")
        with pytest.raises(ObjectNotFound):
            adapter.activate(object(), "k", "I", "C")

    def test_find_missing_raises(self):
        adapter = ObjectAdapter("proc")
        with pytest.raises(ObjectNotFound):
            adapter.find("ghost")

    def test_try_find_returns_none(self):
        adapter = ObjectAdapter("proc")
        assert adapter.try_find("ghost") is None

    def test_deactivate(self):
        adapter = ObjectAdapter("proc")
        ref = adapter.activate(object(), None, "I", "C")
        adapter.deactivate(ref.object_key)
        with pytest.raises(ObjectNotFound):
            adapter.find(ref.object_key)

    def test_reserve_install(self):
        adapter = ObjectAdapter("proc")
        key = adapter.reserve(None)
        skeleton = object()
        adapter.install(key, skeleton)
        assert adapter.find(key) is skeleton

    def test_install_unreserved_raises(self):
        adapter = ObjectAdapter("proc")
        with pytest.raises(ObjectNotFound):
            adapter.install("never", object())

    def test_active_keys(self):
        adapter = ObjectAdapter("proc")
        adapter.activate(object(), "b", "I", "C")
        adapter.activate(object(), "a", "I", "C")
        assert adapter.active_keys() == ["a", "b"]
