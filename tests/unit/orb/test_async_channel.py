"""AsyncMuxChannel: the awaitable demux contract.

Mirrors the adversarial interleaving suite of the threaded MuxChannel:
out-of-order completion, stale replies dropped, timeout surfaces as a
TransportError, transport loss fails every outstanding caller, an
undecodable reply fails pending calls but leaves the channel usable.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import TransportError
from repro.orb.aio.channel import AsyncMuxChannel
from repro.orb.aio.framing import (
    ASYNC_STREAM_PRELUDE,
    StreamFrameParser,
    frame_message,
)
from repro.orb.giop import ReplyMessage, ReplyStatus, decode_message
from repro.platform.host import Host
from repro.platform.network import Network
from repro.platform.process import SimProcess


class _Server:
    """A scripted stream-mode peer: parses requests, runs a reply script.

    ``script(request_ids) -> list[bytes]`` receives the ids decoded from
    one transport chunk and returns raw payloads to send back (already
    framed or deliberately broken, per the scenario).
    """

    def __init__(self, network: Network, address: str, script):
        self.script = script
        self.conn = None
        self._parser = StreamFrameParser()
        self._saw_prelude = False
        network.listen(address, self._on_connect)

    def _on_connect(self, conn):
        self.conn = conn
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        while True:
            try:
                chunk = self.conn.recv(timeout=None)
            except TransportError:
                return
            if not self._saw_prelude and chunk == ASYNC_STREAM_PRELUDE:
                self._saw_prelude = True
                continue
            request_ids = []
            for frame in self._parser.feed(chunk):
                request_ids.append(decode_message(frame).request_id)
            for payload in self.script(request_ids):
                try:
                    self.conn.send(payload)
                except TransportError:
                    return


def _reply(request_id: int, body: bytes = b"") -> bytes:
    return frame_message(
        ReplyMessage(request_id=request_id, status=ReplyStatus.OK, body=body).encode()
    )


def _make_channel(script, timeout_addr="srv"):
    network = Network()
    process = SimProcess("client", Host("h"))
    server = _Server(network, timeout_addr, script)
    conn = network.connect("client", timeout_addr)
    return network, process, server, conn


def _run(coro):
    return asyncio.run(coro)


def _encode_request(request_id: int) -> bytes:
    from repro.orb.giop import RequestMessage

    return RequestMessage(
        request_id=request_id, object_key="k", interface="I",
        operation="op", oneway=False, body=b"",
    ).encode()


class TestAsyncMux:
    def test_out_of_order_replies_route_correctly(self):
        def script(ids):
            # Reply in reverse arrival order; batch into ONE transport
            # send so the client's parser also exercises multi-frame
            # chunks on the reply path.
            return [b"".join(_reply(i, str(i).encode()) for i in reversed(ids))]

        network, process, server, conn = _make_channel(script)

        async def main():
            channel = AsyncMuxChannel(conn, process, asyncio.get_running_loop())
            replies = await asyncio.gather(
                *(channel.call(i, _encode_request(i), process.host,
                               oneway=False, timeout=5.0)
                  for i in (1, 2, 3, 4))
            )
            assert [bytes(r.body) for r in replies] == [b"1", b"2", b"3", b"4"]
            assert channel.peak_pending == 4
            channel.close()

        _run(main())

    def test_stale_reply_dropped_channel_survives(self):
        def script(ids):
            out = [_reply(999)]  # matches no waiter
            out.extend(_reply(i, b"ok") for i in ids)
            return out

        network, process, server, conn = _make_channel(script)

        async def main():
            channel = AsyncMuxChannel(conn, process, asyncio.get_running_loop())
            reply = await channel.call(
                7, _encode_request(7), process.host, oneway=False, timeout=5.0
            )
            assert bytes(reply.body) == b"ok"
            assert not channel.closed
            channel.close()

        _run(main())

    def test_timeout_raises_transport_error(self):
        network, process, server, conn = _make_channel(lambda ids: [])

        async def main():
            channel = AsyncMuxChannel(conn, process, asyncio.get_running_loop())
            with pytest.raises(TransportError, match="recv timed out"):
                await channel.call(
                    1, _encode_request(1), process.host, oneway=False, timeout=0.05
                )
            # The abandoned call's entry is gone: a late reply is stale.
            assert 1 not in channel._pending
            channel.close()

        _run(main())

    def test_peer_close_fails_all_pending(self):
        def script(ids):
            server.conn.close()
            return []

        network, process, server, conn = _make_channel(script)

        async def main():
            channel = AsyncMuxChannel(conn, process, asyncio.get_running_loop())
            results = await asyncio.gather(
                *(channel.call(i, _encode_request(i), process.host,
                               oneway=False, timeout=5.0)
                  for i in (1, 2)),
                return_exceptions=True,
            )
            assert all(isinstance(r, TransportError) for r in results)
            assert channel.closed
            with pytest.raises(TransportError):
                await channel.call(
                    3, _encode_request(3), process.host, oneway=False, timeout=1.0
                )

        _run(main())

    def test_undecodable_reply_fails_pending_but_channel_survives(self):
        state = {"first": True}

        def script(ids):
            if state["first"]:
                state["first"] = False
                return [frame_message(b"\x00garbage")]
            return [_reply(i, b"ok") for i in ids]

        network, process, server, conn = _make_channel(script)

        async def main():
            channel = AsyncMuxChannel(conn, process, asyncio.get_running_loop())
            with pytest.raises(TransportError, match="undecodable reply"):
                await channel.call(
                    1, _encode_request(1), process.host, oneway=False, timeout=5.0
                )
            assert not channel.closed
            reply = await channel.call(
                2, _encode_request(2), process.host, oneway=False, timeout=5.0
            )
            assert bytes(reply.body) == b"ok"
            channel.close()

        _run(main())

    def test_coalesced_writes_share_transport_sends(self):
        chunks = []

        def script(ids):
            chunks.append(list(ids))
            return [_reply(i) for i in ids]

        network, process, server, conn = _make_channel(script)

        async def main():
            channel = AsyncMuxChannel(conn, process, asyncio.get_running_loop())
            await asyncio.gather(
                *(channel.call(i, _encode_request(i), process.host,
                               oneway=False, timeout=5.0)
                  for i in range(1, 9))
            )
            channel.close()

        _run(main())
        # All 8 requests queued in one loop tick arrive in (at most a
        # few) coalesced transport chunks, not 8 separate sends.
        assert sum(len(c) for c in chunks) == 8
        assert len(chunks) < 8
