"""Unit tests for the stub/skeleton marshalling helpers and result shape."""

import pytest

from repro.errors import MarshalError, RemoteApplicationError
from repro.idl import parse_idl
from repro.idl.semantics import analyze
from repro.orb.runtime import (
    _marshal_args,
    _marshal_result,
    _marshal_system_exception,
    _marshal_user_exception,
    _result_values,
    _unmarshal_args,
    _unmarshal_result,
    _unmarshal_system_exception,
    _unmarshal_user_exception,
)

IDL = """
exception Boom { string why; };
interface Shapes {
  void nothing();
  long just_return(in long a);
  void just_out(out long b);
  long both(in long a, out long b);
  long many(in long a, inout long c, out long b) raises (Boom);
};
"""


@pytest.fixture(scope="module")
def spec():
    return analyze(parse_idl(IDL))


def op(spec, name):
    return spec.interfaces["Shapes"].operation(name)


class TestResultValues:
    def test_void_no_outs(self, spec):
        assert _result_values(op(spec, "nothing"), None) == []
        with pytest.raises(MarshalError):
            _result_values(op(spec, "nothing"), 42)

    def test_single_return(self, spec):
        assert _result_values(op(spec, "just_return"), 5) == [5]

    def test_single_out(self, spec):
        assert _result_values(op(spec, "just_out"), 9) == [9]

    def test_return_plus_out_needs_tuple(self, spec):
        assert _result_values(op(spec, "both"), (1, 2)) == [1, 2]
        with pytest.raises(MarshalError):
            _result_values(op(spec, "both"), 1)
        with pytest.raises(MarshalError):
            _result_values(op(spec, "both"), (1, 2, 3))


class TestArgsRoundtrip:
    def test_in_and_inout_travel(self, spec):
        operation = op(spec, "many")
        body = _marshal_args(operation, (10, 20))
        assert _unmarshal_args(operation, body) == (10, 20)

    def test_wrong_arity(self, spec):
        with pytest.raises(MarshalError):
            _marshal_args(op(spec, "many"), (1,))

    def test_result_roundtrip_with_outs(self, spec):
        operation = op(spec, "many")
        # return, inout c, out b
        body = _marshal_result(operation, (100, 30, 40))
        assert _unmarshal_result(operation, body) == (100, 30, 40)

    def test_void_result_roundtrip(self, spec):
        operation = op(spec, "nothing")
        assert _unmarshal_result(operation, _marshal_result(operation, None)) is None


class TestExceptionMarshalling:
    def test_user_exception_roundtrip(self, spec):
        operation = op(spec, "many")
        boom_type = spec.exceptions["Boom"]
        exc = boom_type.py_class(why="it broke")
        body = _marshal_user_exception(operation, exc)
        restored = _unmarshal_user_exception(operation, body)
        assert restored == exc

    def test_undeclared_exception_rejected_at_marshal(self, spec):
        with pytest.raises(MarshalError):
            _marshal_user_exception(op(spec, "many"), ValueError("x"))

    def test_system_exception_roundtrip(self):
        body = _marshal_system_exception(RuntimeError("boom"))
        restored = _unmarshal_system_exception(body)
        assert isinstance(restored, RemoteApplicationError)
        assert restored.exc_type == "RuntimeError"
        assert "boom" in restored.message
