"""Adversarial interleaving tests for the multiplexed client channel.

The reply demux in :class:`repro.orb.channel.MuxChannel` routes replies
to pipelined callers by GIOP request id. These tests script the server
side of the connection by hand so the reply stream can be arbitrarily
hostile: out-of-order completion, duplicate and stale request ids,
undecodable payloads, and a transport reset with calls in flight.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import TransportError
from repro.faults.injector import FaultInjector
from repro.faults.network import FaultyNetwork
from repro.faults.plan import FaultKind, FaultPlan
from repro.orb import InterfaceRegistry, Orb
from repro.orb.channel import MuxChannel
from repro.orb.giop import ReplyMessage, ReplyStatus
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock


@pytest.fixture
def harness():
    """A raw connection pair with a MuxChannel on the client side."""
    network = Network()
    host = Host("mux-host", PlatformKind.HPUX_11, clock=VirtualClock())
    process = SimProcess("mux-proc", host)
    server_sides: list = []
    network.listen("server", server_sides.append)
    client_conn = network.connect("client", "server")
    channel = MuxChannel(client_conn, process)
    yield channel, server_sides[0]
    channel.close()
    process.shutdown()


def _reply(request_id: int, body: bytes = b"") -> bytes:
    return ReplyMessage(request_id, ReplyStatus.OK, body).encode()


def _call_in_thread(channel, request_id, results, timeout=5.0):
    def run():
        try:
            results[request_id] = channel.call(
                request_id, b"req", None, oneway=False, timeout=timeout
            )
        except TransportError as exc:
            results[request_id] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestOutOfOrderCompletion:
    def test_replies_routed_by_id_not_arrival_order(self, harness):
        channel, server = harness
        results: dict = {}
        threads = [_call_in_thread(channel, rid, results) for rid in (1, 2, 3)]
        for _ in range(3):
            server.recv(timeout=2)
        # Complete the pipeline in reverse: 3, then 2, then 1.
        for rid in (3, 2, 1):
            server.send(_reply(rid, body=b"r%d" % rid))
        for thread in threads:
            thread.join(timeout=5)
        for rid in (1, 2, 3):
            assert results[rid].request_id == rid
            assert bytes(results[rid].body) == b"r%d" % rid

    def test_slow_first_call_does_not_block_later_ones(self, harness):
        channel, server = harness
        results: dict = {}
        first = _call_in_thread(channel, 10, results)
        second = _call_in_thread(channel, 11, results)
        for _ in range(2):
            server.recv(timeout=2)
        server.send(_reply(11))
        second.join(timeout=5)
        # Call 11 completed while 10 is still parked on the channel.
        assert results[11].request_id == 11
        assert 10 not in results
        server.send(_reply(10))
        first.join(timeout=5)
        assert results[10].request_id == 10


class TestDuplicateAndStaleReplies:
    def test_duplicate_reply_id_is_dropped_not_misrouted(self, harness):
        channel, server = harness
        results: dict = {}
        first = _call_in_thread(channel, 1, results)
        server.recv(timeout=2)
        server.send(_reply(1, body=b"first"))
        first.join(timeout=5)
        assert bytes(results[1].body) == b"first"
        # A duplicate of id 1 arrives while id 2 is the only waiter: it
        # must match nothing, and id 2 still gets its own reply.
        second = _call_in_thread(channel, 2, results)
        server.recv(timeout=2)
        server.send(_reply(1, body=b"duplicate"))
        server.send(_reply(2, body=b"second"))
        second.join(timeout=5)
        assert results[2].request_id == 2
        assert bytes(results[2].body) == b"second"

    def test_stale_reply_before_any_call_is_ignored(self, harness):
        channel, server = harness
        server.send(_reply(99))
        results: dict = {}
        thread = _call_in_thread(channel, 1, results)
        server.recv(timeout=2)
        server.send(_reply(1))
        thread.join(timeout=5)
        assert results[1].request_id == 1

    def test_undecodable_reply_fails_pending_but_channel_survives(self, harness):
        channel, server = harness
        results: dict = {}
        thread = _call_in_thread(channel, 1, results)
        server.recv(timeout=2)
        server.send(b"\x00garbage")
        thread.join(timeout=5)
        assert isinstance(results[1], TransportError)
        assert "undecodable" in str(results[1])
        assert not channel.closed
        # The framed connection is intact; the next call completes.
        retry = _call_in_thread(channel, 2, results)
        server.recv(timeout=2)
        server.send(_reply(2))
        retry.join(timeout=5)
        assert results[2].request_id == 2


class TestResetMidPipeline:
    def test_close_fails_every_outstanding_waiter(self, harness):
        channel, server = harness
        results: dict = {}
        threads = [_call_in_thread(channel, rid, results) for rid in (1, 2, 3, 4)]
        for _ in range(4):
            server.recv(timeout=2)
        server.send(_reply(2))  # one completes...
        server.close()  # ...then the transport dies mid-pipeline
        for thread in threads:
            thread.join(timeout=5)
        assert results[2].request_id == 2
        for rid in (1, 3, 4):
            assert isinstance(results[rid], TransportError)
        assert channel.closed

    def test_call_after_failure_raises_immediately(self, harness):
        channel, server = harness
        server.close()
        # Give the demux thread a beat to observe the close.
        for _ in range(100):
            if channel.closed:
                break
            threading.Event().wait(0.01)
        with pytest.raises(TransportError):
            channel.call(7, b"req", None, oneway=False, timeout=1)


IDL = "module MX { interface Echo { long bounce(in long n); }; };"


def _reset_plan(reset_index: int) -> FaultPlan:
    """A plan that RESETs exactly the ``reset_index``-th client->server
    message, found by scanning seeds (the schedule is hash-driven)."""
    for seed in range(10_000):
        plan = FaultPlan(seed=seed, rates={FaultKind.RESET: 0.12})
        schedule = plan.schedule("client->server", reset_index + 4)
        if (
            schedule[reset_index] == FaultKind.RESET.value
            and schedule.count(FaultKind.RESET.value) == 1
        ):
            return plan
    raise AssertionError("no seed produced the wanted reset schedule")


class TestResetThroughFaultyNetwork:
    def test_orb_recovers_after_plan_scheduled_reset(self):
        """A FaultyNetwork RESET mid-run fails the in-flight call with a
        TransportError and the next call transparently reconnects."""
        plan = _reset_plan(2)
        network = FaultyNetwork(FaultInjector(plan))
        clock = VirtualClock()
        host = Host("h", PlatformKind.HPUX_11, clock=clock)
        registry = InterfaceRegistry()
        from repro.idl import compile_idl

        compiled = compile_idl(IDL, instrument=False, registry=registry)
        server = SimProcess("server", host)
        client = SimProcess("client", host)

        class EchoImpl(compiled.Echo):
            def bounce(self, n):
                return n

        server_orb = Orb(server, network, registry=registry)
        client_orb = Orb(client, network, registry=registry, channel="mux")
        ref = server_orb.activate(EchoImpl())
        stub = client_orb.resolve(ref)
        try:
            assert stub.bounce(0) == 0  # message 0 passes
            # Message 1 passes; message 2 is the RESET. Depending on
            # whether the reset lands on this call's own request or is
            # noticed first by the demux, the failure surfaces on this
            # call or the next — but exactly one call fails.
            failures = 0
            for n in (1, 2):
                try:
                    assert stub.bounce(n) == n
                except TransportError:
                    failures += 1
            assert failures == 1
            # Recovery: a fresh channel is built on the next call.
            assert stub.bounce(3) == 3
            assert sum(1 for e in network.injector.events() if e.kind is FaultKind.RESET) == 1
        finally:
            client_orb.shutdown()
            server_orb.shutdown()
            server.shutdown()
            client.shutdown()
