"""Predicate-pushdown scans: semantics, pruning, salvage, swap safety.

The contract under test: a predicated scan returns exactly the records
``ScanPredicate.matches`` accepts, in exactly the order the unpredicated
scan would have yielded them — whatever the store's physical state
(spooled, compacted, salvaged, or swapped mid-scan) — while the pruning
counters prove the engine skipped work instead of filtering after the
fact.
"""

import os

import pytest

from repro.core import RunMetadata
from repro.errors import StoreError
from repro.store import ScanPredicate, ScanStats, SegmentStore, run_query
from repro.store.segment import SegmentReader, segment_info

from tests.unit.store.test_segment_codec import make_record


@pytest.fixture
def store(tmp_path):
    store = SegmentStore(str(tmp_path / "store"), auto_compact=0)
    yield store
    store.close()


def seeded_records():
    """Eight chains, five operations, two interfaces, a spread of times."""
    records = []
    for i in range(240):
        records.append(make_record(
            chain=f"{i % 8:032x}", seq=i,
            interface="M::A" if i % 2 else "M::B",
            operation=f"op{i % 5}",
            wall_start=10**12 + 100 * i, wall_end=10**12 + 100 * i + 40,
            semantics={"i": i} if i % 4 == 0 else None,
        ))
    # A few records with no wall interval at all: they must never match
    # a time-range predicate, on either backend.
    for i in range(240, 250):
        records.append(make_record(
            chain=f"{i % 8:032x}", seq=i, operation="op0",
            wall_start=None, wall_end=None,
        ))
    return records


def ingest(store, records, run_id="r1"):
    store.create_run(RunMetadata(run_id=run_id))
    with store.bulk_ingest():
        store.insert_records(run_id, records)


def brute_chains(store, run_id, predicate):
    """Reference semantics: unpredicated scan + in-Python filter."""
    out = []
    for chain, group in store.chains_for_run(run_id):
        kept = [r for r in group if predicate.matches(r)]
        if kept:
            out.append((chain, kept))
    return out


PREDICATES = [
    ScanPredicate(operations=frozenset({"op2"})),
    ScanPredicate(interfaces=frozenset({"M::A"})),
    ScanPredicate(chain_prefix="0" * 31 + "3"),
    ScanPredicate(chain_prefix="0" * 30),
    ScanPredicate(ts_min=10**12 + 5_000, ts_max=10**12 + 12_000),
    ScanPredicate(ts_min=10**12 + 20_000),
    ScanPredicate(
        operations=frozenset({"op1", "op4"}),
        interfaces=frozenset({"M::B"}),
        ts_max=10**12 + 18_000,
    ),
    ScanPredicate(operations=frozenset({"not-there"})),
]


class TestPredicateSemantics:
    def test_empty_string_sets_rejected(self):
        with pytest.raises(StoreError):
            ScanPredicate(operations=frozenset())
        with pytest.raises(StoreError):
            ScanPredicate(interfaces=[])

    def test_inverted_time_range_rejected(self):
        with pytest.raises(StoreError):
            ScanPredicate(ts_min=10, ts_max=9)

    def test_anchor_falls_back_to_wall_end(self):
        predicate = ScanPredicate(ts_min=100, ts_max=200)
        only_end = make_record(wall_start=None, wall_end=150)
        assert predicate.matches(only_end)
        neither = make_record(wall_start=None, wall_end=None)
        assert not predicate.matches(neither)

    def test_dict_roundtrip(self):
        for predicate in PREDICATES:
            assert ScanPredicate.from_dict(predicate.to_dict()) == predicate

    def test_empty_predicate(self):
        assert ScanPredicate().is_empty
        assert ScanPredicate().matches(make_record())


class TestPredicatedScans:
    @pytest.mark.parametrize("compacted", [False, True], ids=["spool", "sealed"])
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_chains_match_brute_force(self, store, compacted, predicate):
        ingest(store, seeded_records())
        if compacted:
            assert store.compact("r1") is True
        expected = brute_chains(store, "r1", predicate)
        assert list(store.chains_for_run("r1", predicate=predicate)) == expected

    @pytest.mark.parametrize("compacted", [False, True], ids=["spool", "sealed"])
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_all_records_is_arrival_subsequence(self, store, compacted, predicate):
        ingest(store, seeded_records())
        if compacted:
            assert store.compact("r1") is True
        full = list(store.all_records("r1"))
        expected = [r for r in full if predicate.matches(r)]
        assert list(store.all_records("r1", predicate=predicate)) == expected

    def test_predicate_composes_with_shard_bounds(self, store):
        ingest(store, seeded_records())
        store.compact("r1")
        predicate = ScanPredicate(operations=frozenset({"op1", "op3"}))
        bounds = ("0" * 31 + "2", "0" * 31 + "6")
        expected = [
            (chain, group)
            for chain, group in brute_chains(store, "r1", predicate)
            if bounds[0] <= chain <= bounds[1]
        ]
        assert list(store.chains_for_run("r1", *bounds, predicate=predicate)) \
            == expected


class TestPruning:
    def test_unknown_operation_prunes_whole_segment(self, store):
        ingest(store, seeded_records())
        store.compact("r1")
        stats = ScanStats()
        predicate = ScanPredicate(operations=frozenset({"not-there"}))
        assert list(store.chains_for_run("r1", predicate=predicate,
                                         stats=stats)) == []
        assert stats.segments_pruned == stats.segments > 0
        assert stats.frames_decoded == 0

    def test_disjoint_time_range_prunes_whole_segment(self, store):
        ingest(store, seeded_records())
        store.compact("r1")
        stats = ScanStats()
        predicate = ScanPredicate(ts_min=10**15)
        assert list(store.chains_for_run("r1", predicate=predicate,
                                         stats=stats)) == []
        assert stats.segments_pruned == stats.segments > 0

    def test_chain_prefix_prunes_groups(self, store):
        ingest(store, seeded_records())
        store.compact("r1")
        stats = ScanStats()
        predicate = ScanPredicate(chain_prefix="0" * 31 + "3")
        chains = list(store.chains_for_run("r1", predicate=predicate,
                                           stats=stats))
        assert [chain for chain, _ in chains] == ["0" * 31 + "3"]
        assert stats.groups_pruned > 0
        # Only the one matching chain group was decoded.
        assert stats.frames_decoded == sum(len(g) for _, g in chains)

    def test_predicated_never_decodes_more(self, store):
        ingest(store, seeded_records())
        store.compact("r1")
        baseline = ScanStats()
        list(store.chains_for_run("r1", stats=baseline))
        for predicate in PREDICATES:
            stats = ScanStats()
            list(store.chains_for_run("r1", predicate=predicate, stats=stats))
            assert stats.frames_decoded <= baseline.frames_decoded

    def test_segment_info_reports_footer_bounds(self, store):
        ingest(store, seeded_records())
        store.compact("r1")
        run_dir = os.path.join(store.path, "runs", "r1")
        (name,) = [n for n in os.listdir(run_dir) if n.endswith(".seg")]
        reader = SegmentReader(os.path.join(run_dir, name))
        info = segment_info(reader)
        reader.close()
        assert info["salvaged"] is False
        # Bounds track the record anchor (wall_start when present).
        assert info["ts_min"] == 10**12
        assert info["ts_max"] == 10**12 + 100 * 239
        assert info["index"]["coverage"] == "footer"
        assert info["index"]["group_ts_bounds"] is True


class TestSalvagedScans:
    def truncated_store(self, tmp_path):
        path = str(tmp_path / "sv")
        store = SegmentStore(path, auto_compact=0)
        ingest(store, seeded_records())
        store.close()
        run_dir = os.path.join(path, "runs", "r1")
        (name,) = [n for n in os.listdir(run_dir) if n.endswith(".seg")]
        victim = os.path.join(run_dir, name)
        data = open(victim, "rb").read()
        with open(victim, "wb") as handle:
            handle.write(data[: int(len(data) * 0.6)])
        return SegmentStore(path, auto_compact=0)

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_salvaged_segment_predicate_scan(self, tmp_path, predicate):
        # A salvaged segment has no footer bounds ("unknown", not
        # "empty"): predicates must filter frame-by-frame, never prune.
        store = self.truncated_store(tmp_path)
        try:
            assert 0 < store.record_count("r1") < 250
            expected = brute_chains(store, "r1", predicate)
            assert list(store.chains_for_run("r1", predicate=predicate)) \
                == expected
            full = list(store.all_records("r1"))
            assert list(store.all_records("r1", predicate=predicate)) \
                == [r for r in full if predicate.matches(r)]
        finally:
            store.close()

    def test_salvaged_flag_in_segment_info(self, tmp_path):
        store = self.truncated_store(tmp_path)
        try:
            run_dir = os.path.join(store.path, "runs", "r1")
            (name,) = [n for n in os.listdir(run_dir) if n.endswith(".seg")]
            reader = SegmentReader(os.path.join(run_dir, name))
            info = segment_info(reader)
            reader.close()
            assert info["salvaged"] is True
            assert info["ts_min"] is None
            assert info["index"]["coverage"] == "salvaged"
        finally:
            store.close()


class TestSwapSafety:
    def test_predicated_scan_survives_compaction_swap(self, store):
        ingest(store, seeded_records())
        assert store.compact("r1") is True
        predicate = ScanPredicate(interfaces=frozenset({"M::A"}))
        expected = list(store.chains_for_run("r1", predicate=predicate))
        scan = store.chains_for_run("r1", predicate=predicate)
        first = next(scan)
        store.insert_records("r1", [make_record(chain="ff" * 16, seq=999,
                                                interface="M::A")])
        assert store.compact("r1") is True  # swaps the mmap'd segment out
        assert [first] + list(scan) == expected

    def test_no_resurrected_records_after_swap(self, store):
        # A fresh predicated scan after the swap sees the new record and
        # exactly one copy of everything else — compaction neither drops
        # matching records nor duplicates arrival ranks.
        ingest(store, seeded_records())
        store.compact("r1")
        predicate = ScanPredicate(operations=frozenset({"op0"}))
        before = list(store.all_records("r1", predicate=predicate))
        extra = make_record(chain="ff" * 16, seq=1000, operation="op0")
        store.insert_records("r1", [extra])
        store.compact("r1")
        after = list(store.all_records("r1", predicate=predicate))
        assert after == before + [extra]
        seqs = [r.event_seq for r in after]
        assert len(seqs) == len(set(seqs))


class TestRunQuery:
    def test_aggregates_per_operation_latency(self, store):
        ingest(store, seeded_records())
        store.compact("r1")
        stats = ScanStats()
        result = run_query(store, "r1",
                           ScanPredicate(operations=frozenset({"op2"})),
                           stats=stats)
        assert result["run_id"] == "r1"
        assert set(result["operations"]) == {"M::A::op2", "M::B::op2"}
        for row in result["operations"].values():
            assert row["wall_ns"]["min"] == 40
            assert row["wall_ns"]["p99"] == 40
        assert result["records"] == sum(
            row["records"] for row in result["operations"].values()
        )
        assert result["scan"]["records_matched"] == result["records"]
