"""RunCatalog: cached summaries, cross-run queries, TTL downsampling.

Determinism is the load-bearing property: a cross-run query must give
the same answer at ``workers=4`` as at ``workers=1``, and keep
answering (at histogram resolution) after retention replaced old runs'
segments with their summaries.
"""

import json
import os

import pytest

from repro.core import RunMetadata
from repro.store import (
    RetentionPolicy,
    RunCatalog,
    ScanPredicate,
    SegmentStore,
)

from tests.unit.store.test_segment_codec import make_record


def run_records(offset, count=90):
    """One run's records: 3 chains, 3 operations, distinct durations."""
    records = []
    for i in range(count):
        start = 10**12 + offset * 10**9 + 1000 * i
        records.append(make_record(
            chain=f"{offset:02x}{i % 3:030x}", seq=i,
            operation=f"op{i % 3}",
            wall_start=start, wall_end=start + 100 * (i % 3 + 1) + offset,
        ))
    return records


@pytest.fixture
def store(tmp_path):
    store = SegmentStore(str(tmp_path / "store"), auto_compact=0)
    for n, run_id in enumerate(["run-a", "run-b", "run-c"]):
        store.create_run(RunMetadata(run_id=run_id))
        with store.bulk_ingest():
            store.insert_records(run_id, run_records(offset=n))
        # Distinct, strictly increasing meta.json mtimes: run-a is the
        # oldest. (Real deployments get this for free from the clock.)
        meta = os.path.join(store.path, "runs", run_id, "meta.json")
        os.utime(meta, (1_000_000 + 100 * n, 1_000_000 + 100 * n))
    yield store
    store.close()


@pytest.fixture
def catalog(store):
    return RunCatalog(store)


class TestSummaries:
    def test_summary_built_and_cached(self, catalog, store):
        summary = catalog.summary("run-a")
        assert summary.records == 90
        assert summary.chains == 3
        assert summary.ts_min == 10**12
        assert len(summary.operations) == 3
        path = os.path.join(store.path, "runs", "run-a", "summary.json")
        assert os.path.exists(path)
        # Cached: identical payload on re-read.
        assert catalog.summary("run-a").to_dict() == summary.to_dict()

    def test_summary_invalidated_by_growth(self, catalog, store):
        before = catalog.summary("run-b")
        store.insert_records("run-b", [make_record(chain="ee" * 16, seq=999,
                                                   operation="op0")])
        after = catalog.summary("run-b")
        assert after.records == before.records + 1

    def test_run_ids_age_ordered(self, catalog):
        assert catalog.run_ids() == ["run-a", "run-b", "run-c"]
        assert catalog.run_ids(last_n=2) == ["run-b", "run-c"]


class TestCrossRunQueries:
    def test_workers_do_not_change_the_answer(self, catalog):
        predicate = ScanPredicate(operations=frozenset({"op1"}))
        serial = catalog.query(predicate, workers=1).to_dict()
        for workers in (2, 4):
            assert catalog.query(predicate, workers=workers).to_dict() == serial

    def test_exact_quantiles_over_live_runs(self, catalog):
        result = catalog.query(ScanPredicate(operations=frozenset({"op2"})))
        assert result.quantile_source == "exact"
        # op2 durations per run n: 300 + n, 30 records each.
        row = result.operations["M::I::op2"]
        assert row["records"] == 90
        assert row["wall_ns"]["min"] == 300
        assert row["wall_ns"]["max"] == 302
        assert row["wall_ns"]["p50"] == 301

    def test_last_n_selects_newest(self, catalog):
        result = catalog.query(last_n=1)
        assert [row["run_id"] for row in result.runs] == ["run-c"]
        assert result.records == 90

    def test_time_window_prunes_runs(self, catalog):
        # Only run-b's window (offset 1 → anchors around 10**12 + 10**9).
        result = catalog.query(ScanPredicate(
            ts_min=10**12 + 10**9, ts_max=10**12 + 2 * 10**9 - 1
        ))
        per_run = {row["run_id"]: row["records"] for row in result.runs}
        assert per_run == {"run-a": 0, "run-b": 90, "run-c": 0}


class TestLifecycle:
    def test_downsample_preserves_query_answers(self, catalog, store):
        exact = catalog.query(ScanPredicate(operations=frozenset({"op0"})))
        catalog.downsample_run("run-a")
        assert store.record_count("run-a") == 0  # segments gone
        after = catalog.query(ScanPredicate(operations=frozenset({"op0"})))
        assert after.quantile_source == "histogram"
        assert after.records == exact.records
        row_exact = exact.operations["M::I::op0"]
        row_after = after.operations["M::I::op0"]
        # Counts and extrema are exact even from summaries; quantiles
        # come back at log2 resolution (bin upper bound ≥ true value).
        assert row_after["records"] == row_exact["records"]
        assert row_after["wall_ns"]["min"] == row_exact["wall_ns"]["min"]
        assert row_after["wall_ns"]["max"] == row_exact["wall_ns"]["max"]
        assert row_after["wall_ns"]["p99"] >= row_exact["wall_ns"]["p99"]
        assert row_after["wall_ns"]["p99"] <= 2 * row_exact["wall_ns"]["p99"]

    def test_downsample_is_idempotent(self, catalog, store):
        first = catalog.downsample_run("run-a")
        again = catalog.downsample_run("run-a")
        assert first.downsampled and again.downsampled
        assert again.records == first.records

    def test_chain_prefix_skips_downsampled_runs(self, catalog):
        catalog.downsample_run("run-a")
        result = catalog.query(ScanPredicate(chain_prefix="00"))
        assert [row["run_id"] for row in result.runs] == ["run-b", "run-c"]
        assert [skip["run_id"] for skip in result.skipped] == ["run-a"]

    def test_retention_by_max_runs(self, catalog, store):
        report = catalog.apply_retention(RetentionPolicy(max_runs=2))
        assert report["downsampled"] == ["run-a"]
        assert report["kept_full"] == 2
        assert store.record_count("run-a") == 0
        assert store.record_count("run-b") == 90

    def test_retention_by_ttl(self, catalog):
        # mtimes are 1_000_000 / 1_000_100 / 1_000_200; a TTL of 150s at
        # "now" = 1_000_250 expires run-a only.
        report = catalog.apply_retention(
            RetentionPolicy(ttl_seconds=150), now=1_000_250
        )
        assert report["downsampled"] == ["run-a"]

    def test_retention_survives_restart(self, catalog, store, tmp_path):
        catalog.apply_retention(RetentionPolicy(max_runs=1))
        store.close()
        reopened = SegmentStore(str(tmp_path / "store"), auto_compact=0)
        try:
            result = RunCatalog(reopened).query()
            assert result.records == 270
            sources = {row["run_id"]: row["source"] for row in result.runs}
            assert sources == {"run-a": "summary", "run-b": "summary",
                               "run-c": "scan"}
        finally:
            reopened.close()

    def test_compact_all_runs(self, catalog, store):
        report = catalog.compact(workers=2)
        assert report == {"run-a": True, "run-b": True, "run-c": True}
        for run_id in report:
            assert store.compaction_state(run_id)["compacted"]

    def test_catalog_info(self, catalog):
        catalog.summary("run-a")
        catalog.downsample_run("run-b")
        info = catalog.catalog_info()
        assert info["count"] == 3
        by_id = {row["run_id"]: row for row in info["runs"]}
        assert by_id["run-a"]["summary_cached"] is True
        assert by_id["run-a"]["downsampled"] is False
        assert by_id["run-b"]["downsampled"] is True
        assert by_id["run-c"]["summary_cached"] is False

    def test_catalog_info_is_json(self, catalog):
        catalog.summaries()
        json.dumps(catalog.catalog_info())
