"""Partial-segment salvage: truncated spools keep their decodable prefix.

A crash mid-drain leaves a spool segment without its footer and trailer.
The reader must fall back to a front-to-back block walk, rebuild the
string dictionary from the inline dict-delta blocks, decode every
complete frame, and account the bytes it had to drop — the loss shows up
in ``store-info`` instead of the whole file vanishing.
"""

import os

import pytest

from repro.core import RunMetadata
from repro.store import SegmentStore
from repro.store.segment import KIND_SPOOL, SegmentReader, SegmentWriter

from tests.unit.store.test_segment_codec import make_record


def full_records():
    return [
        make_record(
            chain=f"{i % 5:032x}", seq=i,
            wall_start=10**12 + 11 * i, wall_end=10**12 + 11 * i + 3,
            cpu_start=100 + i, cpu_end=103 + i,
            semantics={"i": i} if i % 3 == 0 else None,
        )
        for i in range(300)
    ]


@pytest.fixture
def sealed_spool(tmp_path):
    path = str(tmp_path / "full.spool.seg")
    writer = SegmentWriter(path, kind=KIND_SPOOL)
    writer.append(full_records())
    writer.seal()
    return path


def truncate_to(source, cut, tmp_path):
    data = open(source, "rb").read()[:cut]
    path = str(tmp_path / f"cut-{cut}.spool.seg")
    with open(path, "wb") as handle:
        handle.write(data)
    return path


class TestSalvage:
    @pytest.mark.parametrize("fraction", [0.999, 0.75, 0.5, 0.1])
    def test_prefix_survives(self, sealed_spool, tmp_path, fraction):
        size = os.path.getsize(sealed_spool)
        reader = SegmentReader(
            truncate_to(sealed_spool, int(size * fraction), tmp_path)
        )
        assert reader.partial
        ranked = []
        reader.load_ranked(ranked)
        salvaged = [r for _rank, r in sorted(ranked, key=lambda p: p[0])]
        assert salvaged == full_records()[: len(salvaged)]
        assert reader.record_count == len(salvaged)
        assert reader.dropped_bytes > 0
        reader.close()

    def test_cut_mid_frame_drops_only_the_tail(self, sealed_spool, tmp_path):
        size = os.path.getsize(sealed_spool)
        # Walk back a handful of bytes from the footer: lands mid-frame
        # or mid-footer, never exactly on a frame boundary for all of
        # them — every cut must still salvage a consistent prefix.
        for back in (1, 17, 40, 90):
            reader = SegmentReader(truncate_to(sealed_spool, size - back, tmp_path))
            assert reader.partial
            assert 0 < reader.record_count <= 300
            assert reader.dropped_bytes >= 0
            reader.close()

    def test_header_only_file_salvages_empty(self, sealed_spool, tmp_path):
        reader = SegmentReader(truncate_to(sealed_spool, 20, tmp_path))
        assert reader.partial
        assert reader.record_count == 0
        assert reader.chains == []
        reader.close()

    def test_corrupt_footer_body_falls_back_to_salvage(self, sealed_spool, tmp_path):
        # A valid trailer over a corrupt footer (here: an absurd string
        # count) must salvage the intact record blocks instead of blowing
        # up SegmentReader.__init__ and losing the whole segment.
        import struct

        data = bytearray(open(sealed_spool, "rb").read())
        (footer_off,) = struct.unpack_from("<Q", data, len(data) - 16)
        struct.pack_into("<I", data, footer_off + 9, 0xFFFFFFFF)  # n_strings
        path = str(tmp_path / "bad-footer.spool.seg")
        with open(path, "wb") as handle:
            handle.write(data)
        reader = SegmentReader(path)
        assert reader.partial
        ranked = []
        reader.load_ranked(ranked)
        salvaged = [r for _rank, r in sorted(ranked, key=lambda p: p[0])]
        assert salvaged == full_records()
        assert reader.dropped_bytes > 0
        reader.close()

    def test_store_reads_through_partial_segment(self, tmp_path):
        store = SegmentStore(str(tmp_path / "s"), auto_compact=0)
        store.create_run(RunMetadata(run_id="r1"))
        records = full_records()
        store.insert_records("r1", records[:200])
        store.insert_records("r1", records[200:])
        store.close()

        # Truncate the second drain increment's segment, as a crash
        # between the writes and the footer flush would.
        run_dir = os.path.join(str(tmp_path / "s"), "runs", "r1")
        segments = sorted(n for n in os.listdir(run_dir) if n.endswith(".seg"))
        victim = os.path.join(run_dir, segments[-1])
        data = open(victim, "rb").read()
        with open(victim, "wb") as handle:
            handle.write(data[: len(data) // 2])

        reopened = SegmentStore(str(tmp_path / "s"), auto_compact=0)
        count = reopened.record_count("r1")
        assert 200 <= count < 300
        salvaged = list(reopened.all_records("r1"))
        assert salvaged == records[:count]
        info = reopened.store_info()
        assert info["runs"][0]["partial_segments"] == 1
        # Compaction folds the salvage into a clean sealed segment.
        assert reopened.compact("r1") is True
        assert list(reopened.all_records("r1")) == records[:count]
        assert reopened.store_info()["runs"][0]["partial_segments"] == 0
        reopened.close()
