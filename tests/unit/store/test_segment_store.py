"""SegmentStore backend: parity with SQLite, compaction, durability."""

import os

import pytest

from repro.collector import MonitoringDatabase
from repro.core import RunMetadata
from repro.errors import StoreError
from repro.store import SegmentStore, detect_backend, open_store

from tests.unit.store.test_segment_codec import make_record


@pytest.fixture
def store(tmp_path):
    store = SegmentStore(str(tmp_path / "store"), auto_compact=0)
    yield store
    store.close()


def seeded_records():
    """Interleaved chains across several apparent processes."""
    records = []
    for i in range(120):
        chain = f"{i % 7:032x}"
        records.append(make_record(
            chain=chain, seq=i, process=f"p{i % 3}", pid=100 + i % 3,
            thread_id=7 + i % 4,
            wall_start=10**12 + 17 * i, wall_end=10**12 + 17 * i + 5,
            cpu_start=900 + 3 * i, cpu_end=900 + 3 * i + 2,
            child_chain_uuid=f"{(i + 1) % 7:032x}" if i % 5 == 0 else None,
            semantics={"i": i} if i % 4 == 0 else None,
        ))
    return records


def mirrored(store, records, batches=4):
    """Ingest the same records into the store and a SQLite reference."""
    reference = MonitoringDatabase()
    meta = RunMetadata(run_id="r1", description="parity", monitor_mode="cpu")
    store.create_run(meta)
    reference.create_run(meta)
    step = max(1, len(records) // batches)
    for lo in range(0, len(records), step):
        batch = records[lo:lo + step]
        with store.bulk_ingest():
            store.insert_records("r1", batch)
        with reference.bulk_ingest():
            reference.insert_records("r1", batch)
    return reference


def assert_parity(store, reference, run_id="r1"):
    assert store.record_count(run_id) == reference.record_count(run_id)
    assert store.unique_chain_uuids(run_id) == reference.unique_chain_uuids(run_id)
    assert list(store.chains_for_run(run_id)) == list(reference.chains_for_run(run_id))
    assert list(store.all_records(run_id)) == list(reference.all_records(run_id))
    assert store.population_stats(run_id) == reference.population_stats(run_id)


class TestSegmentStoreParity:
    def test_queries_match_sqlite(self, store):
        reference = mirrored(store, seeded_records())
        assert_parity(store, reference)

    def test_queries_match_sqlite_after_compaction(self, store):
        reference = mirrored(store, seeded_records())
        assert store.compact("r1") is True
        assert_parity(store, reference)

    def test_bounded_scan_matches_sqlite(self, store):
        reference = mirrored(store, seeded_records())
        for backend_state in ("spooled", "compacted"):
            bounds = ("0" * 31 + "2", "0" * 31 + "5")
            assert (
                list(store.chains_for_run("r1", *bounds))
                == list(reference.chains_for_run("r1", *bounds))
            )
            assert (
                store.events_for_chain("r1", "0" * 31 + "3")
                == reference.events_for_chain("r1", "0" * 31 + "3")
            )
            store.compact("r1")

    def test_bulk_ingest_spanning_flush_blocks(self, store, monkeypatch):
        # One collection transaction bigger than the flush threshold
        # spills into several records blocks within one spool segment;
        # timestamps must survive the block boundaries.
        import repro.store.segment as segment

        monkeypatch.setattr(segment, "_FLUSH_BYTES", 512)
        records = seeded_records()
        store.create_run(RunMetadata(run_id="r1"))
        with store.bulk_ingest():
            for lo in range(0, len(records), 10):
                store.insert_records("r1", records[lo:lo + 10])
        assert store.compaction_state("r1")["segments"] == 1
        assert list(store.all_records("r1")) == records

    def test_scan_survives_compaction_swap(self, store):
        # A scan holding the old sealed segment's mmap must keep decoding
        # after compaction unlinks and replaces that segment.
        records = seeded_records()
        mirrored(store, records)
        assert store.compact("r1") is True
        expected = list(store.chains_for_run("r1"))
        scan = store.chains_for_run("r1")
        first = next(scan)  # fast path: lazily decoding the sealed mmap
        store.insert_records("r1", [make_record(chain="ff" * 16, seq=999)])
        assert store.compact("r1") is True  # swaps the scanned segment out
        assert [first] + list(scan) == expected

    def test_insert_order_survives_compaction(self, store):
        # all_records must replay arrival order even after the sealed
        # segment regrouped everything by chain.
        records = seeded_records()
        mirrored(store, records)
        store.compact("r1")
        assert [r.event_seq for r in store.all_records("r1")] == [
            r.event_seq for r in records
        ]


class TestSegmentStoreLifecycle:
    def test_reopen_from_disk(self, tmp_path):
        path = str(tmp_path / "store")
        store = SegmentStore(path, auto_compact=0)
        meta = RunMetadata(run_id="r1", description="d", monitor_mode="cpu",
                           extra={"k": 1})
        store.create_run(meta)
        records = seeded_records()
        store.insert_records("r1", records)
        store.close()

        reopened = SegmentStore(path)
        assert reopened.runs() == [meta]
        assert list(reopened.all_records("r1")) == records
        reopened.close()

    def test_close_seals_open_transaction(self, tmp_path):
        path = str(tmp_path / "store")
        store = SegmentStore(path, auto_compact=0)
        store.create_run(RunMetadata(run_id="r1"))
        ctx = store.bulk_ingest()
        ctx.__enter__()
        store.insert_records("r1", [make_record()])
        store.close()  # never __exit__ed: close must not lose the spool
        reopened = SegmentStore(path)
        assert reopened.record_count("r1") == 1
        reopened.close()

    def test_runs_isolated(self, store):
        store.create_run(RunMetadata(run_id="r1"))
        store.create_run(RunMetadata(run_id="r2"))
        store.insert_records("r1", [make_record()])
        assert store.record_count("r1") == 1
        assert store.record_count("r2") == 0
        assert store.unique_chain_uuids("r2") == []

    def test_unknown_run_raises(self, store):
        with pytest.raises(StoreError, match="unknown run"):
            store.record_count("nope")

    def test_unsafe_run_id_rejected(self, store):
        with pytest.raises(StoreError, match="filesystem-safe"):
            store.insert_records("../escape", [make_record()])

    def test_empty_transaction_leaves_no_segment(self, store):
        store.create_run(RunMetadata(run_id="r1"))
        with store.bulk_ingest():
            store.insert_records("r1", [])
        run_dir = os.path.join(store.path, "runs", "r1")
        assert [n for n in os.listdir(run_dir) if n.endswith(".seg")] == []

    def test_auto_compact_threshold(self, tmp_path):
        store = SegmentStore(str(tmp_path / "s"), auto_compact=3,
                             compact_in_background=False)
        store.create_run(RunMetadata(run_id="r1"))
        for i in range(3):
            store.insert_records("r1", [make_record(seq=i)])
        state = store.compaction_state("r1")
        assert state["sealed_segments"] == 1
        assert state["spool_segments"] == 0
        assert store.record_count("r1") == 3
        store.close()

    def test_background_compaction_failure_is_surfaced(
        self, store, caplog, monkeypatch
    ):
        import logging

        store.create_run(RunMetadata(run_id="r1"))
        store.insert_records("r1", [make_record()])

        def boom(run_id):
            raise OSError("disk full")

        monkeypatch.setattr(store, "compact", boom)
        with caplog.at_level(logging.ERROR, logger="repro.store.store"):
            store._compact_quietly("r1")
        assert "background compaction" in caplog.text
        assert "disk full" in caplog.text
        assert store.compaction_state("r1")["last_error"] == "OSError: disk full"
        # The next successful compaction clears the sticky error.
        monkeypatch.undo()
        assert store.compact("r1") is True
        assert store.compaction_state("r1")["last_error"] is None

    def test_compact_noop_when_already_sealed(self, store):
        store.create_run(RunMetadata(run_id="r1"))
        store.insert_records("r1", [make_record()])
        assert store.compact("r1") is True
        assert store.compact("r1") is False

    def test_store_info_shape(self, store):
        store.create_run(RunMetadata(run_id="r1"))
        store.insert_records("r1", seeded_records())
        info = store.store_info()
        assert info["backend"] == "segment"
        (run,) = info["runs"]
        assert run["records"] == 120
        assert run["chains"] == 7
        assert run["segments"][0]["kind"] == "spool"

    def test_prepare_sharded_scan_compacts(self, store):
        store.create_run(RunMetadata(run_id="r1"))
        for i in range(4):
            store.insert_records("r1", [make_record(seq=i)])
        store.prepare_sharded_scan("r1")
        assert store.compaction_state("r1")["compacted"]


class TestBackendSelection:
    def test_detects_directory_as_segment(self, tmp_path):
        store = SegmentStore(str(tmp_path / "seg"))
        store.close()
        assert detect_backend(str(tmp_path / "seg")) == "segment"

    def test_detects_file_as_sqlite(self, tmp_path):
        db = MonitoringDatabase(str(tmp_path / "m.db"))
        db.close()
        assert detect_backend(str(tmp_path / "m.db")) == "sqlite"
        assert detect_backend(":memory:") == "sqlite"

    def test_open_store_roundtrip(self, tmp_path):
        segment = open_store(str(tmp_path / "seg"), backend="segment")
        assert isinstance(segment, SegmentStore)
        segment.close()
        assert isinstance(open_store(str(tmp_path / "seg")), SegmentStore)
        sqlite = open_store(str(tmp_path / "m.db"))
        assert isinstance(sqlite, MonitoringDatabase)
        sqlite.close()

    def test_open_store_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="unknown storage backend"):
            open_store(str(tmp_path / "x"), backend="parquet")

    def test_marker_schema_version_checked(self, tmp_path):
        import json

        path = tmp_path / "seg"
        store = SegmentStore(str(path))
        store.close()
        marker = path / "repro-store.json"
        meta = json.loads(marker.read_text())
        meta["schema_version"] = 999
        marker.write_text(json.dumps(meta))
        with pytest.raises(StoreError, match="schema"):
            SegmentStore(str(path))

    def test_backends_satisfy_protocol(self, tmp_path):
        from repro.store import StorageBackend

        store = SegmentStore(str(tmp_path / "seg"))
        db = MonitoringDatabase()
        assert isinstance(store, StorageBackend)
        assert isinstance(db, StorageBackend)
        store.close()
        db.close()
