"""Frame-codec round trips: one segment file, every field shape."""

import os

import pytest

from repro.core import CallKind, Domain, ProbeRecord, TracingEvent
from repro.core.records import RECORD_SCHEMA, SCHEMA_VERSION
from repro.errors import StoreError
from repro.store.segment import (
    KIND_SEALED,
    KIND_SPOOL,
    SegmentReader,
    SegmentWriter,
)


def make_record(chain="aa" * 16, seq=0, **overrides):
    fields = dict(
        chain_uuid=chain,
        event_seq=seq,
        event=TracingEvent.STUB_START,
        interface="M::I",
        operation="op",
        object_id="p.obj-1",
        component="Comp",
        process="p",
        pid=1,
        host="h",
        thread_id=111,
        processor_type="PA-RISC",
        platform="HPUX 11",
        call_kind=CallKind.SYNC,
        collocated=False,
        domain=Domain.CORBA,
        wall_start=10,
        wall_end=12,
        cpu_start=None,
        cpu_end=None,
        child_chain_uuid=None,
        semantics={"args": ["1"]},
    )
    fields.update(overrides)
    return ProbeRecord(**fields)


def roundtrip(tmp_path, records, kind=KIND_SPOOL):
    path = str(tmp_path / "t.seg")
    writer = SegmentWriter(path, kind=kind)
    if kind == KIND_SEALED:
        by_chain = {}
        for record in records:
            by_chain.setdefault(record.chain_uuid, []).append(record)
        for chain in sorted(by_chain):
            writer.start_group()
            writer.append(by_chain[chain])
    else:
        writer.append(records)
    writer.seal()
    reader = SegmentReader(path)
    out = []
    reader.load_ranked(out)
    reader.close()
    os.unlink(path)
    return [record for _rank, record in sorted(out, key=lambda p: p[0])]


class TestFrameRoundtrip:
    def test_basic_record(self, tmp_path):
        record = make_record()
        assert roundtrip(tmp_path, [record]) == [record]

    def test_all_optional_fields_absent(self, tmp_path):
        record = make_record(
            wall_start=None, wall_end=None, cpu_start=None, cpu_end=None,
            child_chain_uuid=None, semantics=None,
        )
        assert roundtrip(tmp_path, [record]) == [record]

    def test_every_presence_combination(self, tmp_path):
        records = []
        for mask in range(64):
            records.append(make_record(
                seq=mask,
                wall_start=1000 + mask if mask & 1 else None,
                wall_end=2000 + mask if mask & 3 == 3 else None,
                cpu_start=300 + mask if mask & 4 else None,
                cpu_end=400 + mask if mask & 12 == 12 else None,
                child_chain_uuid=f"child-{mask}" if mask & 16 else None,
                semantics={"m": mask} if mask & 32 else None,
            ))
        assert roundtrip(tmp_path, records) == records

    def test_enum_fields_roundtrip(self, tmp_path):
        records = [
            make_record(seq=i, event=event, call_kind=kind,
                        collocated=coll, domain=domain)
            for i, (event, kind, coll, domain) in enumerate(
                (e, k, c, d)
                for e in TracingEvent
                for k in CallKind
                for c in (False, True)
                for d in Domain
            )
        ]
        assert roundtrip(tmp_path, records) == records

    def test_wide_timestamp_deltas(self, tmp_path):
        # Jumps far beyond i32 force the wide frame; mixing them with
        # narrow frames exercises the per-frame width flag.
        records = [
            make_record(seq=0, wall_start=10**15, wall_end=10**15 + 5,
                        cpu_start=7, cpu_end=9),
            make_record(seq=1, wall_start=10**15 + 100, wall_end=10**15 + 200,
                        cpu_start=8, cpu_end=11),
            make_record(seq=2, wall_start=5 * 10**15, wall_end=5 * 10**15 + 1,
                        cpu_start=10**14, cpu_end=10**14 + 3),
            make_record(seq=3, wall_start=5 * 10**15 + 50, cpu_start=10**14 + 9),
        ]
        assert roundtrip(tmp_path, records) == records

    def test_negative_time_deltas(self, tmp_path):
        # Arrival order does not imply clock order across processes.
        records = [
            make_record(seq=0, wall_start=10**9, cpu_start=10**6),
            make_record(seq=1, wall_start=10**9 - 5000, cpu_start=10**6 - 40),
        ]
        assert roundtrip(tmp_path, records) == records

    def test_unicode_and_long_strings(self, tmp_path):
        record = make_record(
            interface="Módulo::Überface", operation="ỏp" * 200,
            component="组件", process="proc-\N{SNOWMAN}",
            semantics={"note": "naïve \N{ROLLING ON THE FLOOR LAUGHING}"},
        )
        assert roundtrip(tmp_path, [record]) == [record]

    def test_sealed_groups_roundtrip(self, tmp_path):
        records = [
            make_record(chain=chain, seq=seq,
                        wall_start=10**12 + seq, cpu_start=500 + seq)
            for chain in ("aa" * 16, "bb" * 16, "cc" * 16)
            for seq in range(5)
        ]
        assert roundtrip(tmp_path, records, kind=KIND_SEALED) == records

    def test_sealed_group_offsets_decode_independently(self, tmp_path):
        path = str(tmp_path / "g.seg")
        writer = SegmentWriter(path, kind=KIND_SEALED)
        expected = {}
        for chain in ("aa" * 16, "bb" * 16, "cc" * 16):
            group = [make_record(chain=chain, seq=s, wall_start=10**12 + s)
                     for s in range(4)]
            expected[chain] = group
            writer.start_group()
            writer.append(group)
        writer.seal()
        reader = SegmentReader(path)
        # Decode the *last* group first: offsets must be self-contained.
        for cid, count, start_off, _ranks in reversed(reader.chains):
            chain = reader.strings[cid]
            assert reader.decode_group(start_off, count) == expected[chain]
        reader.close()

    def test_many_records_cross_flush_boundary(self, tmp_path):
        # Big semantics payloads push the buffer past the flush
        # threshold, so the segment carries several records blocks.
        records = [
            make_record(seq=i, semantics={"pad": "x" * 4096, "i": i})
            for i in range(2048)
        ]
        assert roundtrip(tmp_path, records) == records

    def test_multi_block_spool_self_anchors_each_block(self, tmp_path, monkeypatch):
        # The reader resets its timestamp-delta state per records block,
        # so a spool whose appends straddle flush boundaries must anchor
        # every block on a raw reading — a delta leaking across a block
        # boundary corrupts every timestamp after it.
        import repro.store.segment as segment

        monkeypatch.setattr(segment, "_FLUSH_BYTES", 256)
        records = [
            make_record(
                seq=i, wall_start=10**12 + 17 * i, wall_end=10**12 + 17 * i + 5,
                cpu_start=900 + 3 * i, cpu_end=903 + 3 * i,
            )
            for i in range(50)
        ]
        path = str(tmp_path / "multi.spool.seg")
        writer = SegmentWriter(path, kind=KIND_SPOOL)
        for lo in range(0, len(records), 5):
            writer.append(records[lo:lo + 5])
        writer.seal()
        reader = SegmentReader(path)
        assert len(reader._regions) > 1  # the regression needs >1 block
        out = []
        reader.load_ranked(out)
        reader.close()
        assert [record for _rank, record in out] == records


class TestSegmentValidation:
    def test_rejects_non_segment_file(self, tmp_path):
        path = tmp_path / "garbage.seg"
        path.write_bytes(b"not a segment at all, definitely")
        with pytest.raises(StoreError, match="bad magic"):
            SegmentReader(str(path))

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.seg"
        path.write_bytes(b"")
        with pytest.raises(StoreError, match="empty"):
            SegmentReader(str(path))

    def test_rejects_other_schema_version(self, tmp_path):
        path = str(tmp_path / "v.seg")
        writer = SegmentWriter(path, schema_version=SCHEMA_VERSION + 1)
        writer.append([make_record()])
        writer.seal()
        with pytest.raises(StoreError, match="schema"):
            SegmentReader(str(path))

    def test_schema_table_covers_probe_record(self):
        from repro.core.records import ProbeRecord

        assert tuple(f.name for f in RECORD_SCHEMA) == ProbeRecord.__slots__
