"""Property tests: framing, references and clock-skew invariance."""

from hypothesis import given, settings, strategies as st

from repro.analysis import latency_report, reconstruct_from_records
from repro.core import MonitorMode
from repro.orb.giop import ReplyMessage, ReplyStatus, RequestMessage, decode_message
from repro.orb.refs import ObjectRef

_name = st.text(
    alphabet=st.characters(categories=("Ll", "Lu", "Nd"), include_characters="_-."),
    min_size=1,
    max_size=30,
)


@given(
    request_id=st.integers(0, 2**32 - 1),
    object_key=_name,
    interface=_name,
    operation=_name,
    oneway=st.booleans(),
    body=st.binary(max_size=512),
    ftl=st.one_of(st.none(), st.binary(min_size=24, max_size=24)),
)
@settings(max_examples=200)
def test_request_framing_roundtrip(request_id, object_key, interface, operation,
                                   oneway, body, ftl):
    message = RequestMessage(
        request_id=request_id,
        object_key=object_key,
        interface=interface,
        operation=operation,
        oneway=oneway,
        body=body,
        ftl=ftl,
    )
    assert decode_message(message.encode()) == message


@given(
    request_id=st.integers(0, 2**32 - 1),
    status=st.sampled_from(list(ReplyStatus)),
    body=st.binary(max_size=512),
    ftl=st.one_of(st.none(), st.binary(min_size=24, max_size=24)),
)
@settings(max_examples=200)
def test_reply_framing_roundtrip(request_id, status, body, ftl):
    message = ReplyMessage(request_id=request_id, status=status, body=body, ftl=ftl)
    assert decode_message(message.encode()) == message


_segment = st.text(
    alphabet=st.characters(categories=("Ll", "Lu", "Nd"), include_characters="_-."),
    min_size=1,
    max_size=20,
)


@given(address=_segment, key=_segment, interface=_segment, component=_segment)
@settings(max_examples=200)
def test_object_ref_url_roundtrip(address, key, interface, component):
    ref = ObjectRef(address, key, interface, component)
    assert ObjectRef.from_url(ref.to_url()) == ref


@given(skew_ns=st.integers(-10**12, 10**12))
@settings(max_examples=25, deadline=None)
def test_latency_analysis_invariant_under_clock_skew(skew_ns):
    """Shifting every wall reading taken on one host by a constant must
    not change any latency result — the paper's no-global-clock-sync
    property (all subtractions are same-host)."""
    from tests.helpers import Call, simulate

    calls = [Call("I::F", cpu_ns=250, children=(Call("I::G", cpu_ns=100),))]
    baseline = simulate(calls, mode=MonitorMode.LATENCY, uuid_prefix="aa")
    skewed = simulate(calls, mode=MonitorMode.LATENCY, uuid_prefix="ab")
    for record in skewed.records:
        if record.wall_start is not None:
            record.wall_start += skew_ns
        if record.wall_end is not None:
            record.wall_end += skew_ns

    def latencies(records):
        report = latency_report(reconstruct_from_records(records))
        return {name: entry.samples for name, entry in report.items()}

    assert latencies(baseline.records) == latencies(skewed.records)
