"""Property tests: generated IDL always compiles and round-trips.

Hypothesis generates random (valid) IDL specifications; the full pipeline
— lexer, parser, semantic analysis, both codegen back-ends, module
loading — must succeed, the generated classes must be present, and
marshalling random values through the generated signatures must
round-trip.
"""

import keyword

from hypothesis import given, settings, strategies as st

from repro.idl import compile_idl, parse_idl
from repro.idl.semantics import analyze
from repro.orb import InterfaceRegistry

_PRIMS = ["long", "short", "double", "string", "boolean", "octet", "long long"]


@st.composite
def identifiers(draw, prefix):
    suffix = draw(st.integers(0, 999))
    return f"{prefix}{suffix}"


@st.composite
def idl_specs(draw):
    """A random valid spec: enums, structs, one module, interfaces."""
    pieces: list[str] = []
    type_names: list[str] = []

    for index in range(draw(st.integers(0, 2))):
        name = f"E{index}"
        labels = [f"L{index}_{i}" for i in range(draw(st.integers(1, 4)))]
        pieces.append(f"enum {name} {{ {', '.join(labels)} }};")
        type_names.append(name)

    for index in range(draw(st.integers(0, 2))):
        name = f"S{index}"
        field_count = draw(st.integers(1, 4))
        fields = []
        for f in range(field_count):
            ftype = draw(st.sampled_from(_PRIMS + type_names))
            fields.append(f"{ftype} f{f};")
        pieces.append(f"struct {name} {{ {' '.join(fields)} }};")
        type_names.append(name)

    interface_count = draw(st.integers(1, 3))
    for index in range(interface_count):
        ops = []
        for op_index in range(draw(st.integers(1, 4))):
            oneway = draw(st.booleans())
            if oneway:
                params = ", ".join(
                    f"in {draw(st.sampled_from(_PRIMS + type_names))} p{p}"
                    for p in range(draw(st.integers(0, 3)))
                )
                ops.append(f"oneway void op{op_index}({params});")
            else:
                ret = draw(st.sampled_from(["void"] + _PRIMS + type_names))
                params = []
                for p in range(draw(st.integers(0, 3))):
                    direction = draw(st.sampled_from(["in", "out", "inout"]))
                    ptype = draw(st.sampled_from(_PRIMS + type_names))
                    params.append(f"{direction} {ptype} p{p}")
                ops.append(f"{ret} op{op_index}({', '.join(params)});")
        pieces.append(f"interface I{index} {{ {' '.join(ops)} }};")

    return "module Fuzz { " + " ".join(pieces) + " };"


@given(idl_specs())
@settings(max_examples=50, deadline=None)
def test_pipeline_accepts_generated_idl(source):
    spec = analyze(parse_idl(source))
    assert spec.interfaces
    for variant in (True, False):
        compiled = compile_idl(source, instrument=variant,
                               registry=InterfaceRegistry())
        for scoped in spec.interfaces:
            simple = scoped.replace("::", "_")
            assert simple in compiled.namespace
            assert f"{simple}Stub" in compiled.namespace
            assert f"{simple}Skeleton" in compiled.namespace


@given(idl_specs())
@settings(max_examples=30, deadline=None)
def test_generated_source_is_clean_python(source):
    compiled = compile_idl(source, instrument=True, registry=InterfaceRegistry())
    compile(compiled.source, "<gen>", "exec")
    # No generated identifier may shadow a Python keyword.
    for name in compiled.namespace:
        assert not keyword.iskeyword(name)


@given(idl_specs(), st.data())
@settings(max_examples=30, deadline=None)
def test_generated_signatures_marshal_roundtrip(source, data):
    from repro.idl.types import EnumType, PrimitiveType, StringType, StructType
    from repro.orb.cdr import CdrDecoder, CdrEncoder

    compiled = compile_idl(source, instrument=True, registry=InterfaceRegistry())

    def value_for(idl_type):
        if isinstance(idl_type, PrimitiveType):
            if idl_type.kind in ("float", "double"):
                return data.draw(st.floats(-1e6, 1e6, allow_nan=False))
            if idl_type.kind == "boolean":
                return data.draw(st.booleans())
            if idl_type.kind == "octet":
                return data.draw(st.integers(0, 255))
            if idl_type.kind == "short":
                return data.draw(st.integers(-(2**15), 2**15 - 1))
            return data.draw(st.integers(-(2**31), 2**31 - 1))
        if isinstance(idl_type, StringType):
            return data.draw(st.text(max_size=20))
        if isinstance(idl_type, EnumType):
            return data.draw(st.sampled_from(list(idl_type.py_enum)))
        if isinstance(idl_type, StructType):
            return idl_type.py_class(
                **{name: value_for(ftype) for name, ftype in idl_type.fields}
            )
        return None

    for interface in compiled.spec.interfaces.values():
        for op in interface.operations:
            encoder = CdrEncoder()
            values = []
            for param in op.in_params:
                value = value_for(param.idl_type)
                values.append(value)
                param.idl_type.marshal(encoder, value)
            decoder = CdrDecoder(encoder.getvalue())
            for param, value in zip(op.in_params, values):
                restored = param.idl_type.unmarshal(decoder)
                if isinstance(value, float):
                    assert restored == value
                else:
                    assert restored == value
