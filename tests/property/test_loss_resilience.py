"""Property tests: the analyzer is total under lossy capture.

Whatever subset of probe records survives — arbitrary hypothesis-chosen
deletions or seed-logged FaultPlan record loss — reconstruction must
never raise, and any chain that lost a record must be flagged: partial
nodes, abnormal events, or both. That is the resilience contract the
fault-injection subsystem exercises end to end.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import loss_report, reconstruct_from_records
from repro.core import MonitorMode
from repro.faults import FaultPlan
from tests.helpers import Call, simulate

_NAMES = ["A::f", "A::g", "B::h", "C::m"]


@st.composite
def call_trees(draw, depth=2):
    name = draw(st.sampled_from(_NAMES))
    collocated = draw(st.booleans())
    oneway = draw(st.booleans()) if depth < 2 else False
    children = ()
    if depth > 0 and not oneway:
        children = tuple(draw(st.lists(call_trees(depth=depth - 1), max_size=2)))
    return Call(
        name,
        cpu_ns=draw(st.integers(0, 500)),
        children=children,
        oneway=oneway,
        collocated=collocated and not oneway,
    )


def _records(tree_seed_calls):
    sim = simulate(
        tree_seed_calls, mode=MonitorMode.LATENCY, fresh_chain_per_top_call=True
    )
    return sim.records


@given(
    calls=st.lists(call_trees(), min_size=1, max_size=3),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_reconstruction_never_raises_on_any_subset(calls, data):
    records = _records(calls)
    keep = data.draw(
        st.lists(st.booleans(), min_size=len(records), max_size=len(records))
    )
    surviving = [r for r, k in zip(records, keep) if k]
    dscg = reconstruct_from_records(surviving)  # must not raise
    report = loss_report(dscg)
    # The loss report is internally consistent on whatever survived.
    assert report.partial_chains <= report.chains
    assert report.partial_nodes <= report.nodes
    assert report.to_dict() == loss_report(dscg).to_dict()


@given(
    calls=st.lists(call_trees(), min_size=1, max_size=3),
    dropped_index=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_single_missing_record_flags_its_chain(calls, dropped_index):
    records = _records(calls)
    victim = records[dropped_index % len(records)]
    surviving = [r for r in records if r is not victim]
    dscg = reconstruct_from_records(surviving)
    tree = dscg.chains.get(victim.chain_uuid)
    if tree is None:
        # The chain's only record was the one dropped: nothing to flag.
        assert not any(r.chain_uuid == victim.chain_uuid for r in surviving)
        return
    flagged = bool(tree.abnormal) or any(node.partial for node in tree.walk())
    assert flagged, (
        f"chain {victim.chain_uuid} lost {victim.event.name}"
        f" (seq {victim.event_seq}) but was not flagged"
    )


@given(
    calls=st.lists(call_trees(), min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**32),
    rate=st.floats(min_value=0.05, max_value=0.9),
)
@settings(max_examples=40, deadline=None)
def test_seed_logged_loss_is_reproducible(calls, seed, rate):
    """FaultPlan-scheduled deletions: never raise, identical loss twice."""
    records = _records(calls)
    plan = FaultPlan(seed=seed, record_loss_rate=rate)

    def run():
        surviving = [
            r for i, r in enumerate(records) if not plan.loses_record("sim", i)
        ]
        return loss_report(reconstruct_from_records(surviving)).to_dict()

    assert run() == run()


@given(calls=st.lists(call_trees(), min_size=1, max_size=3))
@settings(max_examples=30, deadline=None)
def test_full_record_set_reports_no_loss(calls):
    dscg = reconstruct_from_records(_records(calls))
    report = loss_report(dscg)
    assert report.partial_nodes == 0
    assert report.missing_records == 0
    assert report.abnormal_events == 0
    assert report.complete_chains == report.chains
