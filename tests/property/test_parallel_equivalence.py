"""Property test: sharded reconstruction == serial reconstruction.

Hypothesis generates arbitrary workloads — nested synchronous calls,
collocated calls, oneway forks, and optionally corrupted (mingled)
chains; the simulator drives the real probes; the sharded analyzer must
produce a DSCG whose serialized JSON is byte-identical to the serial
single-scan analyzer's, for every worker count and for both file-backed
(per-thread WAL readers) and in-memory (serialized fallback) databases.
"""

import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.analysis import dscg_to_json, reconstruct, reconstruct_sharded
from repro.collector import MonitoringDatabase, collect_run
from repro.core import CallKind, Domain, MonitorMode, ProbeRecord, TracingEvent
from tests.helpers import Call, simulate

_NAMES = ["A::f", "A::g", "B::h", "C::m"]


@st.composite
def call_trees(draw, depth=2):
    name = draw(st.sampled_from(_NAMES))
    cpu = draw(st.integers(0, 500))
    collocated = draw(st.booleans())
    oneway = draw(st.booleans()) if depth < 2 else False
    children = ()
    if depth > 0:
        children = tuple(draw(st.lists(call_trees(depth=depth - 1), max_size=2)))
    return Call(
        name,
        cpu_ns=cpu,
        children=children,
        collocated=collocated and not oneway,
        oneway=oneway,
    )


def _stray_record(chain_uuid, seq, event):
    return ProbeRecord(
        chain_uuid=chain_uuid,
        event_seq=seq,
        event=event,
        interface="Rogue",
        operation="mingled",
        object_id="rogue.obj",
        component="Rogue",
        process="sim",
        pid=1,
        host="sim-host",
        thread_id=7,
        processor_type="PA-RISC",
        platform="HPUX 11",
        call_kind=CallKind.SYNC,
        collocated=False,
        domain=Domain.CORBA,
        wall_start=1,
        wall_end=2,
    )


@given(
    top_calls=st.lists(call_trees(), min_size=1, max_size=4),
    workers=st.integers(2, 6),
    mingle=st.booleans(),
    file_backed=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_sharded_reconstruction_matches_serial(top_calls, workers, mingle,
                                               file_backed):
    sim = simulate(top_calls, mode=MonitorMode.FULL, fresh_chain_per_top_call=True)
    if mingle:
        # A chain violating the Figure-4 machine from its first record,
        # plus a mid-stream corruption appended to a real chain.
        sim.process.log_buffer.append(
            _stray_record("ee" * 16, 0, TracingEvent.STUB_END)
        )
        first = sim.records[0].chain_uuid
        seq = 1 + max(r.event_seq for r in sim.records if r.chain_uuid == first)
        sim.process.log_buffer.append(
            _stray_record(first, seq, TracingEvent.SKEL_END)
        )
    if file_backed:
        with tempfile.TemporaryDirectory(prefix="repro-prop-") as tmp:
            database, run_id = collect_run(
                [sim.process],
                database=MonitoringDatabase(os.path.join(tmp, "run.db")),
            )
            _assert_equivalent(database, run_id, workers)
            database.close()
    else:
        database, run_id = collect_run([sim.process])
        _assert_equivalent(database, run_id, workers)


def _assert_equivalent(database, run_id, workers):
    serial = reconstruct(database, run_id)
    sharded = reconstruct_sharded(
        database, run_id, workers=workers, oversubscribe=True
    )
    assert list(sharded.chains) == list(serial.chains)
    assert dscg_to_json(sharded) == dscg_to_json(serial)
    # Annotated variants must agree too (chain-local work moved into workers).
    serial_ann = reconstruct(database, run_id, annotate=True)
    sharded_ann = reconstruct(database, run_id, workers=workers, annotate=True)
    for uuid, tree in serial_ann.chains.items():
        for node, twin in zip(tree.walk(), sharded_ann.chains[uuid].walk()):
            assert node.latency_ns == twin.latency_ns
            assert node.self_cpu_ns == twin.self_cpu_ns
