"""Property tests: reconstruction inverts probe emission on any call tree.

Hypothesis generates arbitrary call trees (nesting, siblings, collocated
and oneway calls); the simulator drives the *real* probes; the Figure-4
state machine must rebuild a structure isomorphic to what was executed,
with zero abnormal transitions.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import CpuAnalysis, reconstruct_from_records
from repro.analysis.latency import end_to_end_latency
from repro.core import CallKind, MonitorMode
from tests.helpers import Call, simulate

_NAMES = ["A::f", "A::g", "B::h", "B::k", "C::m"]


@st.composite
def call_trees(draw, depth=3):
    name = draw(st.sampled_from(_NAMES))
    cpu = draw(st.integers(0, 1_000))
    collocated = draw(st.booleans())
    oneway = draw(st.booleans()) if depth < 3 else False
    children = ()
    if depth > 0:
        children = tuple(
            draw(st.lists(call_trees(depth=depth - 1), max_size=3))
        )
    return Call(
        name,
        cpu_ns=cpu,
        children=children,
        collocated=collocated and not oneway,
        oneway=oneway,
    )


def shape(call: Call):
    return (call.name, call.oneway, tuple(shape(c) for c in call.children))


def node_shape(node, dscg):
    if node.oneway_side == "stub":
        forked = dscg.chains.get(node.forked_chain_uuid)
        children = tuple(
            node_shape(c, dscg) for root in (forked.roots if forked else []) for c in root.children
        ) if forked else ()
        # the forked chain root *is* this call's execution
        return (node.function, True, children)
    return (
        node.function,
        node.call_kind is CallKind.ONEWAY,
        tuple(node_shape(c, dscg) for c in node.children),
    )


@given(st.lists(call_trees(), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_reconstruction_is_inverse_of_execution(top_calls):
    sim = simulate(top_calls, mode=MonitorMode.FULL)
    dscg = reconstruct_from_records(sim.records)
    assert dscg.abnormal_events() == []
    roots = []
    for tree in dscg.root_chains():
        roots.extend(tree.roots)
    assert [node_shape(n, dscg) for n in roots] == [shape(c) for c in top_calls]


@given(st.lists(call_trees(), min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_cpu_conservation(top_calls):
    """Sum of self CPU over all nodes equals the total CPU charged."""
    sim = simulate(top_calls, mode=MonitorMode.CPU)
    dscg = reconstruct_from_records(sim.records)
    analysis = CpuAnalysis(dscg)
    total = analysis.total_by_processor().total_ns()

    def charged(call):
        return call.cpu_ns + sum(charged(c) for c in call.children)

    assert total == sum(charged(c) for c in top_calls)


@given(st.lists(call_trees(), min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_latency_non_negative_and_root_covers_children(top_calls):
    sim = simulate(top_calls, mode=MonitorMode.LATENCY)
    dscg = reconstruct_from_records(sim.records)
    for node in dscg.walk():
        latency = end_to_end_latency(node)
        if latency is None:
            continue
        assert latency >= 0
        for child in node.children:
            child_latency = end_to_end_latency(child)
            if child_latency is not None and child.call_kind is not CallKind.ONEWAY:
                assert latency >= child_latency


@given(st.lists(call_trees(), min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_event_numbering_dense_per_chain(top_calls):
    """Each chain's event numbers are exactly 0..N-1 (no gaps, no dupes)."""
    sim = simulate(top_calls, mode=MonitorMode.CAUSALITY)
    from collections import defaultdict

    per_chain = defaultdict(list)
    for record in sim.records:
        per_chain[record.chain_uuid].append(record.event_seq)
    for seqs in per_chain.values():
        assert sorted(seqs) == list(range(len(seqs)))
