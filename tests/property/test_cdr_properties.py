"""Property tests: CDR marshalling is a lossless inverse pair."""

import enum

from hypothesis import given, settings, strategies as st

from repro.idl.types import (
    BOOLEAN,
    DOUBLE,
    LONG,
    LONGLONG,
    OCTET,
    SHORT,
    STRING,
    ULONG,
    ULONGLONG,
    USHORT,
    EnumType,
    SequenceType,
    StructType,
    marshal_value,
    unmarshal_value,
)

_PRIMITIVE_STRATEGIES = {
    OCTET: st.integers(0, 255),
    SHORT: st.integers(-(2**15), 2**15 - 1),
    USHORT: st.integers(0, 2**16 - 1),
    LONG: st.integers(-(2**31), 2**31 - 1),
    ULONG: st.integers(0, 2**32 - 1),
    LONGLONG: st.integers(-(2**63), 2**63 - 1),
    ULONGLONG: st.integers(0, 2**64 - 1),
    BOOLEAN: st.booleans(),
    DOUBLE: st.floats(allow_nan=False, allow_infinity=False),
    STRING: st.text(max_size=200),
}


class _Color(enum.Enum):
    R = 0
    G = 1
    B = 2


_COLOR_TYPE = EnumType("Color", ["R", "G", "B"], _Color)


class _Pair:
    def __init__(self, a, b):
        self.a = a
        self.b = b

    def __eq__(self, other):
        return (self.a, self.b) == (other.a, other.b)


_PAIR_TYPE = StructType("Pair", [("a", LONG), ("b", STRING)], _Pair)


@st.composite
def typed_values(draw, depth=2):
    """A (type, value) pair drawn over the whole type algebra."""
    choices = ["primitive", "enum", "struct"]
    if depth > 0:
        choices.append("sequence")
    choice = draw(st.sampled_from(choices))
    if choice == "primitive":
        idl_type = draw(st.sampled_from(list(_PRIMITIVE_STRATEGIES)))
        return idl_type, draw(_PRIMITIVE_STRATEGIES[idl_type])
    if choice == "enum":
        return _COLOR_TYPE, draw(st.sampled_from(list(_Color)))
    if choice == "struct":
        return _PAIR_TYPE, _Pair(draw(_PRIMITIVE_STRATEGIES[LONG]), draw(st.text(max_size=50)))
    element_type, _ = draw(typed_values(depth=depth - 1))
    values = draw(
        st.lists(typed_values(depth=depth - 1).map(lambda tv: tv[1]), max_size=0)
    )
    # elements must share one type: draw values from the element type again
    if element_type in _PRIMITIVE_STRATEGIES:
        values = draw(st.lists(_PRIMITIVE_STRATEGIES[element_type], max_size=8))
    elif element_type is _COLOR_TYPE:
        values = draw(st.lists(st.sampled_from(list(_Color)), max_size=8))
    elif element_type is _PAIR_TYPE:
        values = [
            _Pair(a, b)
            for a, b in draw(
                st.lists(st.tuples(_PRIMITIVE_STRATEGIES[LONG], st.text(max_size=20)),
                         max_size=6)
            )
        ]
    else:
        values = []
    return SequenceType(element_type), values


@given(typed_values())
@settings(max_examples=300)
def test_marshal_unmarshal_roundtrip(tv):
    idl_type, value = tv
    assert unmarshal_value(idl_type, marshal_value(idl_type, value)) == value


@given(st.lists(typed_values(), min_size=1, max_size=6))
@settings(max_examples=150)
def test_concatenated_streams_decode_in_order(tvs):
    """Multiple values encoded back-to-back decode independently in order
    (the property argument marshalling relies on)."""
    from repro.orb.cdr import CdrDecoder, CdrEncoder

    encoder = CdrEncoder()
    for idl_type, value in tvs:
        idl_type.marshal(encoder, value)
    decoder = CdrDecoder(encoder.getvalue())
    for idl_type, value in tvs:
        assert idl_type.unmarshal(decoder) == value


@given(st.text(max_size=500))
@settings(max_examples=200)
def test_string_roundtrip_arbitrary_unicode(text):
    assert unmarshal_value(STRING, marshal_value(STRING, text)) == text
