"""Property tests: suite configs round-trip and expand deterministically.

Two contracts from :mod:`repro.scenarios.config`:

- any well-formed :class:`SuiteConfig` survives YAML -> dataclass ->
  YAML unchanged (both the object and its canonical YAML text are fixed
  points), so a committed suite file is a faithful, diffable record of
  the matrix it runs;
- grid expansion is a pure function of (suite file, seed): scenario
  order, ids and derived seeds never depend on anything else.
"""

from hypothesis import given, settings, strategies as st

from repro.scenarios import (
    BACKEND_NAMES,
    CHANNEL_MODES,
    THREADING_STYLES,
    FaultSpec,
    GridConfig,
    HookSpec,
    InvariantSpec,
    PolicySpec,
    SuiteConfig,
    WorkloadSpec,
    derive_seed,
    dump_yaml,
    expand_grid,
    loads,
)

_name = st.text(alphabet="abcdefghijklmnopqrstuvwxyz-_0123456789", min_size=1,
                max_size=12)
_param_key = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1,
                     max_size=8)
_scalar = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    _name,
)
_params = st.dictionaries(_param_key, _scalar, max_size=3)

_workloads = st.builds(
    WorkloadSpec,
    name=st.sampled_from(("corba", "embedded", "three_tier", "pps", "bridge")),
    params=_params,
)
_policies = st.builds(
    PolicySpec,
    channel=st.sampled_from(CHANNEL_MODES),
    threading=st.sampled_from(THREADING_STYLES),
    pool_threads=st.integers(min_value=1, max_value=8),
)
_faults = st.builds(
    FaultSpec,
    name=_name,
    rates=st.dictionaries(
        st.sampled_from(("drop", "duplicate", "reorder", "reset", "delay")),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        max_size=3,
    ),
    record_loss_rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    collect_fail_attempts=st.integers(min_value=0, max_value=4),
    crash_calls=st.dictionaries(
        _name, st.integers(min_value=1, max_value=9), max_size=2
    ),
    delay_ns=st.integers(min_value=0, max_value=10**9),
)
_hooks = st.builds(
    HookSpec,
    kind=st.just("windowed_delay"),
    params=st.fixed_dictionaries(
        {"scope": _name}, optional={"width": st.integers(1, 16)}
    ),
    when_faults=st.one_of(st.none(), st.tuples(_name)),
)
_invariants = st.builds(
    InvariantSpec,
    name=st.sampled_from(("loss_accounting", "latency_slo",
                          "streaming_batch_equivalence")),
    params=st.one_of(
        st.just({}), st.fixed_dictionaries({"max_p95_ms": st.floats(0.1, 1e6)})
    ),
)
def _grid_is_expandable(grid):
    """Expansion rejects unsupported workload x policy cells (e.g.
    embedded under mux/per-connection) — keep generated grids legal."""
    from repro.scenarios import UNSUPPORTED_POLICIES

    return not any(
        (policy.channel, policy.threading) in UNSUPPORTED_POLICIES.get(w.name, ())
        for w in grid.workloads
        for policy in grid.policies
    )


_grids = st.builds(
    GridConfig,
    name=_name,
    workloads=st.lists(_workloads, min_size=1, max_size=3).map(tuple),
    backends=st.lists(
        st.sampled_from(BACKEND_NAMES), min_size=1, max_size=2, unique=True
    ).map(tuple),
    policies=st.lists(_policies, min_size=1, max_size=2).map(tuple),
    faults=st.lists(_faults, max_size=2, unique_by=lambda f: f.name).map(tuple),
    hooks=st.lists(_hooks, max_size=2).map(tuple),
    invariants=st.lists(
        _invariants, max_size=2, unique_by=lambda i: i.name
    ).map(tuple),
).filter(_grid_is_expandable)
_suites = st.builds(
    SuiteConfig,
    name=_name,
    description=st.text(max_size=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    grids=st.lists(
        _grids, min_size=1, max_size=3, unique_by=lambda g: g.name
    ).map(tuple),
)


@settings(max_examples=60, deadline=None)
@given(config=_suites)
def test_yaml_round_trip_is_identity(config):
    text = dump_yaml(config)
    reloaded = loads(text)
    assert reloaded == config
    # The canonical YAML text is itself a fixed point: dumping the
    # reloaded config reproduces the bytes, so suite files never churn.
    assert dump_yaml(reloaded) == text


@settings(max_examples=60, deadline=None)
@given(config=_suites)
def test_to_dict_round_trip_is_identity(config):
    assert SuiteConfig.from_dict(config.to_dict()) == config


@settings(max_examples=40, deadline=None)
@given(config=_suites)
def test_expansion_is_order_deterministic(config):
    first = expand_grid(config)
    second = expand_grid(loads(dump_yaml(config)))
    assert [s.scenario_id for s in first] == [s.scenario_id for s in second]
    assert [s.seed for s in first] == [s.seed for s in second]
    assert [s.index for s in first] == list(range(len(first)))
    # Grids appear in file order, and within a grid the workload axis
    # varies slowest — positional, never alphabetical.
    grid_order = [g.name for g in config.grids]
    seen = [s.grid for s in first]
    assert sorted(range(len(seen)), key=lambda i: grid_order.index(seen[i])) == list(
        range(len(seen))
    )


@settings(max_examples=40, deadline=None)
@given(config=_suites, other_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_seed_override_changes_only_seeds(config, other_seed):
    base = expand_grid(config)
    overridden = expand_grid(config, seed=other_seed)
    assert [s.scenario_id for s in base] == [s.scenario_id for s in overridden]
    expected = [derive_seed(other_seed, i) for i in range(len(base))]
    assert [s.seed for s in overridden] == expected
