"""Property tests: the segment codec is lossless and backend-neutral.

Two invariants:

- any list of :class:`ProbeRecord` round-trips bit-exactly through the
  segment frame codec (spool and sealed, with and without compaction);
- a run stored in the segment store and the same run stored in SQLite
  answer every backend query identically, so analysis results cannot
  depend on which backend held the records.
"""

from hypothesis import given, settings, strategies as st

from repro.collector import MonitoringDatabase
from repro.core import (
    CallKind,
    Domain,
    ProbeRecord,
    RunMetadata,
    TracingEvent,
)
from repro.store import SegmentStore
from repro.store.segment import KIND_SPOOL, SegmentReader, SegmentWriter

_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=30
)
_name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABC::._-0123456789", min_size=1, max_size=24
)
#: Wall-clock readings span raw ns-since-epoch magnitudes so narrow and
#: wide frames both appear; CPU readings stay small and monotonic-ish.
_wall = st.one_of(st.none(), st.integers(0, 2**62))
_cpu = st.one_of(st.none(), st.integers(0, 2**40))
_semantics = st.one_of(
    st.none(),
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(-1000, 1000), _text,
                  st.lists(_text, max_size=3)),
        max_size=4,
    ),
)


@st.composite
def probe_records(draw):
    return ProbeRecord(
        chain_uuid=draw(st.sampled_from([f"{i:032x}" for i in range(6)])),
        event_seq=draw(st.integers(0, 2**40)),
        event=draw(st.sampled_from(list(TracingEvent))),
        interface=draw(_name),
        operation=draw(_name),
        object_id=draw(_name),
        component=draw(_name),
        process=draw(_name),
        pid=draw(st.integers(0, 2**31)),
        host=draw(_name),
        thread_id=draw(st.integers(0, 2**40)),
        processor_type=draw(_name),
        platform=draw(_text),
        call_kind=draw(st.sampled_from(list(CallKind))),
        collocated=draw(st.booleans()),
        domain=draw(st.sampled_from(list(Domain))),
        wall_start=draw(_wall),
        wall_end=draw(_wall),
        cpu_start=draw(_cpu),
        cpu_end=draw(_cpu),
        child_chain_uuid=draw(st.one_of(st.none(), _name)),
        semantics=draw(_semantics),
    )


@settings(max_examples=60, deadline=None)
@given(records=st.lists(probe_records(), max_size=40))
def test_spool_segment_roundtrips_any_records(tmp_path_factory, records):
    path = str(tmp_path_factory.mktemp("seg") / "prop.spool.seg")
    writer = SegmentWriter(path, kind=KIND_SPOOL)
    writer.append(records)
    writer.seal()
    reader = SegmentReader(path)
    ranked = []
    reader.load_ranked(ranked)
    reader.close()
    assert [r for _k, r in sorted(ranked, key=lambda p: p[0])] == records


@settings(max_examples=25, deadline=None)
@given(
    records=st.lists(probe_records(), max_size=40),
    batches=st.integers(1, 5),
    compact=st.booleans(),
)
def test_segment_store_matches_sqlite(tmp_path_factory, records, batches, compact):
    # Duplicate (chain, event_seq) pairs are fine: both backends break
    # the tie by arrival order (SQLite's rowid, the store's ranks).
    meta = RunMetadata(run_id="prop", description="", monitor_mode="cpu")
    store = SegmentStore(str(tmp_path_factory.mktemp("store")), auto_compact=0)
    reference = MonitoringDatabase()
    store.create_run(meta)
    reference.create_run(meta)
    step = max(1, (len(records) + batches - 1) // batches)
    for lo in range(0, len(records), step):
        batch = records[lo:lo + step]
        with store.bulk_ingest():
            store.insert_records("prop", batch)
        with reference.bulk_ingest():
            reference.insert_records("prop", batch)
    if compact:
        store.compact("prop")

    assert store.record_count("prop") == reference.record_count("prop")
    assert store.unique_chain_uuids("prop") == reference.unique_chain_uuids("prop")
    assert list(store.chains_for_run("prop")) == list(reference.chains_for_run("prop"))
    assert list(store.all_records("prop")) == list(reference.all_records("prop"))
    assert store.population_stats("prop") == reference.population_stats("prop")
    store.close()
    reference.close()
