"""Property tests over the analysis extensions."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    CpuAnalysis,
    HyperbolicLayout,
    dscg_from_json,
    dscg_to_json,
    reconstruct_from_records,
)
from repro.analysis.impact import ImpactEstimator
from repro.core import MonitorMode
from tests.helpers import Call, simulate

_NAMES = ["X::a", "X::b", "Y::c"]


@st.composite
def call_trees(draw, depth=2):
    name = draw(st.sampled_from(_NAMES))
    children = ()
    if depth > 0:
        children = tuple(draw(st.lists(call_trees(depth=depth - 1), max_size=2)))
    return Call(name, cpu_ns=draw(st.integers(0, 500)), children=children)


def build_dscg(top_calls):
    sim = simulate(top_calls, mode=MonitorMode.FULL, fresh_chain_per_top_call=True)
    return reconstruct_from_records(sim.records)


@given(st.lists(call_trees(), min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_serialize_roundtrip_preserves_structure(top_calls):
    dscg = build_dscg(top_calls)
    restored = dscg_from_json(dscg_to_json(dscg))
    assert restored.stats()["nodes"] == dscg.stats()["nodes"]
    assert restored.stats()["chains"] == dscg.stats()["chains"]
    assert restored.stats()["max_depth"] == dscg.stats()["max_depth"]

    def shape(dscg_):
        return sorted(
            tuple((n.function, n.depth()) for n in tree.walk())
            for tree in dscg_.chains.values()
        )

    assert shape(restored) == shape(dscg)


@given(st.lists(call_trees(), min_size=1, max_size=3),
       st.sampled_from(_NAMES),
       st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_impact_estimation_is_consistent(top_calls, function, scale):
    dscg = build_dscg(top_calls)
    estimator = ImpactEstimator(dscg)
    report = estimator.estimate(function, scale=scale)
    system = report.system
    # Saving is bounded by the function's own self CPU and by the system.
    assert 0 <= system.saving_ns <= system.total_self_cpu_ns
    assert system.total_self_cpu_ns <= system.system_total_ns
    # Per-chain savings sum to the system saving (within int truncation).
    chain_saving = sum(chain.saving_ns for chain in report.chains)
    assert abs(chain_saving - system.saving_ns) <= len(report.chains)
    # scale=1 is a no-op.
    noop = estimator.estimate(function, scale=1.0)
    assert noop.system.saving_ns == 0


@given(st.lists(call_trees(), min_size=1, max_size=3),
       st.floats(0.2, 0.8))
@settings(max_examples=30, deadline=None)
def test_hyperbolic_layout_always_inside_disk(top_calls, step):
    dscg = build_dscg(top_calls)
    root = HyperbolicLayout(step=step).layout_dscg(dscg)
    nodes = list(root.walk())
    assert len(nodes) == dscg.node_count() + 1  # virtual root
    for node in nodes:
        assert math.hypot(node.x, node.y) < 1.0


@given(st.lists(call_trees(), min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_descendant_cpu_monotone_down_the_tree(top_calls):
    """A parent's inclusive CPU always >= any child's inclusive CPU."""
    dscg = build_dscg(top_calls)
    cpu = CpuAnalysis(dscg)
    for node in dscg.walk():
        parent_total = cpu.inclusive_cpu(node).total_ns()
        for child in node.children:
            assert parent_total >= cpu.inclusive_cpu(child).total_ns()
