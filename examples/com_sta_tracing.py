#!/usr/bin/env python3
"""COM apartments, nested pumping and the channel-hook fix (Section 2.2).

The paper's observation O1 — a thread never switches to another incoming
call mid-invocation — fails for COM single-threaded apartments: while a
call blocks on an outbound call, the STA thread pumps its message loop
and serves other chains. This demo runs two clients through a front STA
that calls into a back STA, twice:

1. with the causality channel hooks DISABLED — the thread-specific FTL is
   overwritten mid-pump and the analyzer reports mingled chains;
2. with the hooks ENABLED (the paper's "very limited amount of
   instrumentation before and after call sending and dispatching") — the
   chains reconstruct cleanly.

Run:  python examples/com_sta_tracing.py
"""

import threading
import time

from repro.analysis import reconstruct_from_records
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

IFront = ComInterface("IFront", ("handle",))
IBack = ComInterface("IBack", ("slow",))


def run(hooks: bool) -> None:
    label = "hooks ON " if hooks else "hooks OFF"
    process = SimProcess(
        f"com-{'on' if hooks else 'off'}",
        Host("host", PlatformKind.WINDOWS_NT, clock=VirtualClock()),
    )
    MonitoringRuntime(
        process,
        MonitorConfig(
            mode=MonitorMode.CAUSALITY,
            uuid_factory=SequentialUuidFactory("e1" if hooks else "e2"),
        ),
    )
    runtime = ComRuntime(process, causality_hooks=hooks)

    class Back(ComObject):
        implements = (IBack,)

        def slow(self, n):
            time.sleep(0.05)  # long enough for the front STA to pump
            return n * 10

    class Front(ComObject):
        implements = (IFront,)

        def __init__(self, back_factory):
            super().__init__()
            self.back_factory = back_factory

        def handle(self, n):
            return self.back_factory().slow(n) + 1

    sta_front = runtime.create_sta("front")
    sta_back = runtime.create_sta("back")
    back_identity = runtime.create_object(Back, sta_back)
    front_identity = runtime.create_object(
        Front, sta_front, lambda: runtime.proxy_for(back_identity, IBack)
    )
    front = runtime.proxy_for(front_identity, IFront)

    results = []
    threads = [
        threading.Thread(target=lambda i=i: results.append(front.handle(i)))
        for i in range(2)
    ]
    for thread in threads:
        thread.start()
        time.sleep(0.01)
    for thread in threads:
        thread.join()

    dscg = reconstruct_from_records(process.log_buffer.snapshot())
    stats = dscg.stats()
    print(f"{label}: results={sorted(results)}  chains={stats['chains']}"
          f"  abnormal events={stats['abnormal_events']}")
    if stats["abnormal_events"]:
        for anomaly in dscg.abnormal_events()[:3]:
            print(f"    mingled: {anomaly.reason}")
    process.shutdown()


def main() -> None:
    print("Two clients through a pumping STA (front -> back):")
    run(hooks=False)
    run(hooks=True)
    print()
    print("Application results are identical either way; only the hooks keep")
    print("the causal chains separable — exactly Section 2.2's conclusion.")


if __name__ == "__main__":
    main()
