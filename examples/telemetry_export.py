#!/usr/bin/env python3
"""Telemetry end to end: self-metrics, live pipeline, trace export.

Runs the PPS with framework self-metrics enabled and a live metrics
pipeline attached, prints a Prometheus scrape of the monitor's own hot
paths, then exports the reconstructed DSCG as both a Perfetto-loadable
Chrome trace and an OTLP-style span document.

Run:  python examples/telemetry_export.py
Then: load /tmp/repro_trace.json at https://ui.perfetto.dev
"""

import json

from repro import telemetry
from repro.analysis import reconstruct
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.collector import LogCollector
from repro.core import MonitorMode
from repro.telemetry.pipeline import LiveMetricsPipeline

CHROME_PATH = "/tmp/repro_trace.json"
OTLP_PATH = "/tmp/repro_spans.json"


def main() -> None:
    registry = telemetry.enable()
    pps = PpsSystem(four_process_deployment(), mode=MonitorMode.LATENCY)
    try:
        pipeline = LiveMetricsPipeline(
            pps.processes.values(),
            registry=registry,
            latency_slo_ns=5_000_000,  # 5 ms SLO feeds the breach counter
        )
        pipeline.start(interval_s=0.02)
        pps.run(njobs=3, pages=3, complexity=2)
        pps.quiesce()
        pipeline.stop()

        collector = LogCollector()
        run_id = collector.collect(pps.processes.values(),
                                   description="telemetry example")
        dscg = reconstruct(collector.database, run_id)
    finally:
        pps.shutdown()

    print("=== Prometheus scrape of the monitor's self-metrics ===")
    scrape = telemetry.render_prometheus(registry)
    for line in scrape.splitlines():
        if line.startswith(("repro_orb_dispatch_total",
                            "repro_probe_records_total",
                            "repro_collector_",
                            "repro_online_completed")):
            print(f"  {line}")
    telemetry.disable()

    with open(CHROME_PATH, "w") as handle:
        handle.write(telemetry.render_chrome_trace(dscg, run_id=run_id))
    with open(OTLP_PATH, "w") as handle:
        handle.write(telemetry.render_otlp(dscg, run_id=run_id, indent=2))

    document = json.loads(open(CHROME_PATH).read())
    print()
    print(f"=== Trace export for run {run_id!r} ===")
    print(f"  chrome trace: {CHROME_PATH}"
          f" ({document['otherData']['slices']} slices,"
          f" {document['otherData']['chains']} chains"
          " — open in ui.perfetto.dev)")
    print(f"  otlp spans  : {OTLP_PATH}")
    primary = next(e for e in document["traceEvents"]
                   if e.get("args", {}).get("primary"))
    print(f"  sample slice: {primary['name']}"
          f" dur={primary['dur']:.1f}us"
          f" overhead={primary['args']['probe_overhead_ns']}ns"
          f" L(F)={primary['args'].get('latency_compensated_ns')}ns")


if __name__ == "__main__":
    main()
