#!/usr/bin/env python3
"""The large-scale embedded system — the Figure-5 subject.

Builds the synthetic stand-in for the paper's commercial system (176
components, 155 interfaces, 801 methods, 4 processes, pooled dispatch
threads), drives a seeded workload, reconstructs the DSCG and reports the
same population statistics the paper quotes. Scale the run with the
CALLS environment variable (default 5000; the paper's largest run was
~195,000 calls).

Run:  CALLS=5000 python examples/embedded_system.py
"""

import os
import pathlib
import time

from repro.analysis import HyperbolicLayout, layout_to_json, reconstruct
from repro.analysis.report import dscg_summary
from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem


def main() -> None:
    calls = int(os.environ.get("CALLS", "5000"))
    config = EmbeddedConfig()
    print(
        f"Population: {config.components} components, {config.interfaces} interfaces,"
        f" {config.methods} methods, {config.processes} processes,"
        f" {config.processes * config.pool_threads_per_process} dispatch threads"
    )

    system = EmbeddedSystem(config)
    started = time.perf_counter()
    system.run(total_calls=calls, roots=8)
    print(f"Drove {calls} calls in {time.perf_counter() - started:.1f}s")

    database, run_id = system.collect()
    stats = database.population_stats(run_id)
    print("Observed population:", stats)

    started = time.perf_counter()
    dscg = reconstruct(database, run_id)
    analysis_time = time.perf_counter() - started
    print(f"DSCG reconstructed in {analysis_time:.2f}s "
          f"(the paper's 2003 Java analyzer took 28 minutes at 195k calls)")
    print(dscg_summary(dscg))

    layout = HyperbolicLayout().layout_dscg(dscg)
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "embedded_dscg.json").write_text(layout_to_json(layout))
    print(f"Hyperbolic layout JSON written to {out_dir / 'embedded_dscg.json'}")

    system.shutdown()


if __name__ == "__main__":
    main()
