#!/usr/bin/env python3
"""The Printing Pipeline Simulator (PPS) — the paper's CORBA example.

Runs the 11-component pipeline in the paper's single-processor 4-process
configuration in CPU monitoring mode, then:

- reconstructs the DSCG,
- computes self/descendent CPU per invocation (Section 3.2),
- synthesizes and prints the CCSG XML document (Figure 6),
- writes a hyperbolic-layout SVG of the DSCG (Figure 5's view).

Run:  python examples/printing_pipeline.py
"""

import pathlib

from repro.analysis import (
    CpuAnalysis,
    HyperbolicLayout,
    build_ccsg,
    layout_to_svg,
    reconstruct,
    render_ccsg_xml,
)
from repro.analysis.report import cpu_table, dscg_summary
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.core import MonitorMode


def main() -> None:
    pps = PpsSystem(four_process_deployment(), mode=MonitorMode.CPU)
    print("Deployment:", pps.deployment.name)
    for component, process in sorted(pps.deployment.placement.items()):
        print(f"  {component:16s} -> {process}")

    pps.run(njobs=3, pages=4, complexity=2)
    database, run_id = pps.collect()
    print()
    print("Collected records:", database.record_count(run_id))

    dscg = reconstruct(database, run_id)
    print(dscg_summary(dscg))

    cpu = CpuAnalysis(dscg)
    print()
    print("=== Per-function self CPU ===")
    print(cpu_table(dscg, cpu))
    print()
    print("Total self CPU:", cpu.total_by_processor())

    ccsg = build_ccsg(dscg, cpu)
    xml = render_ccsg_xml(ccsg, description="PPS single-processor 4-process (Figure 6)")
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "pps_ccsg.xml").write_text(xml)
    print()
    print("=== CCSG XML (Figure 6; first 40 lines) ===")
    print("\n".join(xml.splitlines()[:40]))
    print(f"... full document in {out_dir / 'pps_ccsg.xml'}")

    layout = HyperbolicLayout().layout_dscg(dscg)
    svg = layout_to_svg(layout)
    (out_dir / "pps_dscg.svg").write_text(svg)
    print(f"Hyperbolic DSCG layout written to {out_dir / 'pps_dscg.svg'}")

    pps.shutdown()


if __name__ == "__main__":
    main()
