#!/usr/bin/env python3
"""A hybrid CORBA/COM application with seamless causality bridging.

Section 2.3: "as long as the bi-directional CORBA-COM bridge is aware of
the extra FTL data hidden in the instrumented calls, and delivers it from
the caller's domain to the callee's domain, causality will seamlessly
propagate across the boundary, and continue to advance in the other
domain."

Topology:
    CORBA client ──> CORBA servant (bridge process)
                        └─ forwards through the bridge ──> COM object (STA)
                                                              └─ calls back out to a CORBA worker

The printed chain shows one Function UUID crossing CORBA → COM → CORBA.

Run:  python examples/corba_com_bridge.py
"""

from repro.analysis import reconstruct_from_records
from repro.bridge import com_facade_for_corba, corba_facade_for_com
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import Orb
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

IDL = """
module Hybrid {
  interface Render {
    long render(in long frame);
  };
  interface Encode {
    long encode(in long frame);
  };
};
"""

IRender = ComInterface("IRender", ("render",))


def main() -> None:
    compiled = compile_idl(IDL, instrument=True)
    clock = VirtualClock()
    network = Network()
    host = Host("hybrid-host", PlatformKind.WINDOWS_NT, clock=clock)
    uuid_factory = SequentialUuidFactory("ff")

    def make_process(name: str) -> SimProcess:
        process = SimProcess(name, host)
        MonitoringRuntime(
            process, MonitorConfig(mode=MonitorMode.CAUSALITY, uuid_factory=uuid_factory)
        )
        return process

    client_proc = make_process("corba-client")
    bridge_proc = make_process("bridge")
    worker_proc = make_process("corba-worker")

    client_orb = Orb(client_proc, network)
    bridge_orb = Orb(bridge_proc, network)
    worker_orb = Orb(worker_proc, network)
    com_runtime = ComRuntime(bridge_proc, causality_hooks=True)

    # -- CORBA worker at the far end ------------------------------------
    class EncodeImpl(compiled.Encode):
        def encode(self, frame):
            clock.consume(30_000)
            return frame * 10

    encode_ref = worker_orb.activate(EncodeImpl())

    # -- COM object in an STA; it calls back out to CORBA ---------------
    encode_stub = bridge_orb.resolve(encode_ref)
    com_to_corba = com_facade_for_corba(
        ComInterface("IEncode", ("encode",)), encode_stub
    )

    class RenderObj(ComObject):
        implements = (IRender,)

        def render(self, frame):
            clock.consume(20_000)
            return com_to_corba.encode(frame) + 1

    sta = com_runtime.create_sta("render")
    render_identity = com_runtime.create_object(RenderObj, sta)
    render_proxy = com_runtime.proxy_for(render_identity, IRender)

    # -- CORBA facade over the COM proxy (the bridge) --------------------
    bridge_servant = corba_facade_for_com(compiled.Render, render_proxy)
    render_ref = bridge_orb.activate(bridge_servant, interface="Hybrid::Render")

    # -- CORBA client drives the hybrid chain ----------------------------
    stub = client_orb.resolve(render_ref)
    result = stub.render(7)
    print("render(7) =", result)

    records = []
    for process in (client_proc, bridge_proc, worker_proc):
        records.extend(process.log_buffer.drain())
    records.sort(key=lambda r: (r.chain_uuid, r.event_seq))

    print()
    print("=== One causal chain across both domains ===")
    for record in records:
        print(
            f"  seq={record.event_seq:2d}  {record.event_label:42s}"
            f" domain={record.domain.value:5s} process={record.process}"
        )

    dscg = reconstruct_from_records(records)
    assert len(dscg.chains) == 1, "the whole hybrid call is one chain"
    assert not dscg.abnormal_events()
    print()
    print("Chains:", len(dscg.chains), " abnormal events:", len(dscg.abnormal_events()))
    print("Causality propagated CORBA -> COM -> CORBA under one Function UUID.")

    for process in (client_proc, bridge_proc, worker_proc):
        process.shutdown()


if __name__ == "__main__":
    main()
