#!/usr/bin/env python3
"""Causality under advanced server threading policies (Section 2.2).

Runs the same concurrent workload against servers using each of the three
policies the paper names — thread-per-request, thread-per-connection and
thread pooling — and shows that the reconstructed chains are identical
and never intertwined (observations O1/O2): recycled threads hold stale
FTLs between calls, but every skeleton start probe refreshes them.

Run:  python examples/threading_policies.py
"""

import threading

from repro.analysis import reconstruct_from_records
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb, ThreadPerConnection, ThreadPerRequest, ThreadPool
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

IDL = """
module Policies {
  interface Service {
    long step(in long depth);
  };
};
"""


def run_with_policy(policy_factory, label: str, clients: int = 6, calls: int = 5):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    clock = VirtualClock()
    network = Network()
    host = Host("host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory()

    server = SimProcess(f"server-{label}", host)
    MonitoringRuntime(server, MonitorConfig(mode=MonitorMode.CAUSALITY,
                                            uuid_factory=uuid_factory))
    server_orb = Orb(server, network, policy=policy_factory(), registry=registry)

    class ServiceImpl(compiled.Service):
        def __init__(self):
            self.self_stub = None

        def step(self, depth):
            clock.consume(1_000)
            if depth > 0:
                return self.self_stub.step(depth - 1) + 1
            return 0

    impl = ServiceImpl()
    ref = server_orb.activate(impl)
    impl.self_stub = server_orb.resolve(ref)

    client_processes = []
    threads = []
    for index in range(clients):
        client = SimProcess(f"client-{label}-{index}", host)
        MonitoringRuntime(client, MonitorConfig(mode=MonitorMode.CAUSALITY,
                                                uuid_factory=uuid_factory))
        orb = Orb(client, network, registry=registry)
        stub = orb.resolve(ref)
        client_processes.append(client)

        def work(stub=stub):
            for _ in range(calls):
                assert stub.step(3) == 3

        threads.append(threading.Thread(target=work))

    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    records = []
    for process in [server] + client_processes:
        records.extend(process.log_buffer.drain())
    dscg = reconstruct_from_records(records)
    stats = dscg.stats()
    for process in [server] + client_processes:
        process.shutdown()
    return stats


def main() -> None:
    policies = [
        (ThreadPerRequest, "thread-per-request"),
        (ThreadPerConnection, "thread-per-connection"),
        (lambda: ThreadPool(size=3), "thread-pool(3)"),
    ]
    print(f"{'policy':24s} {'chains':>7s} {'nodes':>6s} {'depth':>6s} {'abnormal':>9s}")
    for factory, label in policies:
        stats = run_with_policy(factory, label)
        print(
            f"{label:24s} {stats['chains']:7d} {stats['nodes']:6d}"
            f" {stats['max_depth']:6d} {stats['abnormal_events']:9d}"
        )
    print()
    print("All policies yield identical, untangled causal chains (O1/O2).")


if __name__ == "__main__":
    main()
