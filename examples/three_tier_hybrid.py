#!/usr/bin/env python3
"""End-to-end tracing across THREE remote-invocation infrastructures.

The paper closes with: "We strive for the monitoring framework capable of
monitoring the end-to-end application that consists of different
subsystems, each of which is built upon a different remote invocation
infrastructure" (Section 6). This demo is that application:

    CORBA client
      └─> CORBA servant  (order gateway, ORB + IDL-generated stubs)
            └─> COM object in an STA  (pricing engine, ORPC channel)
                  └─> J2EE stateless session bean  (tax service,
                      container + reflective dynamic proxy)

One Function UUID follows the request through all three domains; the
analyzer reconstructs the full chain and attributes CPU per domain.

Run:  python examples/three_tier_hybrid.py
"""

from repro.analysis import CpuAnalysis, reconstruct_from_records
from repro.analysis.report import format_sec_usec
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.j2ee import Container, Jndi, stateless
from repro.orb import Orb
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

IDL = """
module Shop {
  interface OrderGateway {
    long place_order(in long amount);
  };
};
"""

IPricing = ComInterface("IPricing", ("price",))


def main() -> None:
    compiled = compile_idl(IDL, instrument=True)
    clock = VirtualClock()
    network = Network()
    host = Host("host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("3d")

    def make_process(name):
        process = SimProcess(name, host)
        MonitoringRuntime(
            process, MonitorConfig(mode=MonitorMode.CPU, uuid_factory=uuid_factory)
        )
        return process

    driver = make_process("driver")
    web = make_process("web-corba")
    pricing = make_process("pricing-com")
    backend = make_process("backend-j2ee")

    driver_orb = Orb(driver, network)
    web_orb = Orb(web, network)
    pricing_com = ComRuntime(pricing)
    web_com = ComRuntime(web)  # client-side COM runtime for the gateway
    container = Container(backend, "backend")
    jndi = Jndi()

    # --- tier 3: J2EE tax service --------------------------------------
    @stateless
    class TaxService:
        def compute_tax(self, amount):
            clock.consume(400_000)
            return amount // 5

    jndi.bind("tax", container, container.deploy(TaxService))

    # --- tier 2: COM pricing engine ------------------------------------
    class PricingEngine(ComObject):
        implements = (IPricing,)

        def price(self, amount):
            clock.consume(250_000)
            tax = jndi.lookup("tax", pricing).compute_tax(amount)
            return amount + tax

    sta = pricing_com.create_sta("pricing")
    pricing_identity = pricing_com.create_object(PricingEngine, sta)

    # --- tier 1: CORBA order gateway ------------------------------------
    class OrderGatewayImpl(compiled.OrderGateway):
        def place_order(self, amount):
            clock.consume(120_000)
            proxy = web_com.proxy_for(pricing_identity, IPricing)
            return proxy.price(amount)

    gateway_ref = web_orb.activate(OrderGatewayImpl())
    gateway = driver_orb.resolve(gateway_ref)

    total = gateway.place_order(100)
    print(f"place_order(100) -> {total}  (100 + 20 tax)")

    processes = [driver, web, pricing, backend]
    records = []
    for process in processes:
        records.extend(process.log_buffer.drain())
    records.sort(key=lambda r: r.event_seq)

    print()
    print("=== One chain, three infrastructures ===")
    for record in records:
        print(f"  seq={record.event_seq:2d}  [{record.domain.value:5s}]"
              f"  {record.event_label:44s} process={record.process}")

    dscg = reconstruct_from_records(records)
    assert len(dscg.chains) == 1 and not dscg.abnormal_events()
    cpu = CpuAnalysis(dscg)
    (tree,) = dscg.chains.values()
    print()
    print("=== CPU propagation across domains ===")
    for node in tree.walk():
        indent = "  " * node.depth()
        self_cpu = cpu.self_cpu(node)
        inclusive = cpu.inclusive_cpu(node).total_ns()
        print(f"  {indent}[{node.domain.value:5s}] {node.function:28s}"
              f" self={format_sec_usec(self_cpu or 0)}"
              f" inclusive={format_sec_usec(inclusive)}")

    for process in processes:
        process.shutdown()


if __name__ == "__main__":
    main()
