#!/usr/bin/env python3
"""Quickstart: instrument an IDL interface and trace a call chain.

Reproduces the paper's core workflow end to end:

1. compile IDL with the instrumentation back-end flag (Figure 3 shows the
   internal interface translation the compiler performs);
2. deploy a client and a server in two simulated processes;
3. run calls — the instrumented stubs/skeletons propagate the FTL through
   the virtual tunnel (Figures 1 and 2);
4. collect the scattered per-process logs into the relational database;
5. reconstruct the Dynamic System Call Graph with the Figure-4 state
   machine and print per-function latency.

Run:  python examples/quickstart.py
"""

from repro.analysis import annotate_latency, reconstruct
from repro.analysis.report import dscg_summary, format_ns, latency_table
from repro.collector import collect_run
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import Orb
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

IDL = """
module Example {
  interface Foo {
    void funcA(in long x);
    string funcB(in float y);
  };
};
"""


def main() -> None:
    # --- 1. compile with the instrumentation flag ----------------------
    compiled = compile_idl(IDL, instrument=True)
    print("=== Internal interface translation (paper Figure 3) ===")
    print(compiled.internal_idl)

    # --- 2. a two-process deployment on one simulated host -------------
    clock = VirtualClock()
    network = Network()
    host = Host("hpux1", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory()

    client = SimProcess("client", host)
    server = SimProcess("server", host)
    for process in (client, server):
        MonitoringRuntime(
            process,
            MonitorConfig(mode=MonitorMode.LATENCY, uuid_factory=uuid_factory),
        )
    client_orb = Orb(client, network)
    server_orb = Orb(server, network)

    # --- 3. a servant, a stub, some calls ------------------------------
    class FooImpl(compiled.Foo):
        def funcA(self, x):
            clock.consume(150_000)  # 150 us of work

        def funcB(self, y):
            clock.consume(400_000)
            return f"transformed({y})"

    ref = server_orb.activate(FooImpl())
    stub = client_orb.resolve(ref)
    stub.funcA(42)
    print("funcB returned:", stub.funcB(2.5))

    # --- 4. collect, 5. analyze ----------------------------------------
    database, run_id = collect_run([client, server], description="quickstart")
    dscg = reconstruct(database, run_id)
    annotate_latency(dscg)

    print()
    print("=== DSCG ===")
    print(dscg_summary(dscg))
    for tree in dscg.root_chains():
        for node in tree.walk():
            indent = "  " * node.depth()
            latency = format_ns(node.latency_ns) if node.latency_ns is not None else "-"
            print(f"  {indent}{node.function}  latency={latency}")

    print()
    print("=== Per-function latency ===")
    print(latency_table(dscg))

    for process in (client, server):
        process.shutdown()


if __name__ == "__main__":
    main()
