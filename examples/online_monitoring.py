#!/usr/bin/env python3
"""On-line causality monitoring (the paper's future-work direction).

Section 6 lists "apply[ing] the global causality capturing technique from
the on-line perspective for application-level system management" as
future work. This example runs the PPS while an :class:`OnlineMonitor`
polls the live per-process log buffers: it watches in-flight invocations,
accumulates running latency statistics and raises SLO alerts — the
management hook an adaptive runtime would subscribe to.

Run:  python examples/online_monitoring.py
"""

import threading
import time

from repro.analysis import OnlineMonitor
from repro.analysis.report import format_ns
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.core import MonitorMode
from repro.platform import RealClock


def main() -> None:
    pps = PpsSystem(
        four_process_deployment(),
        mode=MonitorMode.LATENCY,
        clock=RealClock(),
        cost_scale=200_000,  # 0.2 ms per work unit: visible latencies
    )
    alerts = []
    monitor = OnlineMonitor(
        latency_slo_ns=3_000_000,  # 3 ms SLO
        on_alert=alerts.append,
    )

    stop = threading.Event()
    snapshots = []

    def poller():
        while not stop.is_set():
            monitor.poll(list(pps.processes.values()))
            open_calls = monitor.open_invocations()
            if open_calls:
                deepest = max(open_calls, key=lambda c: c.depth)
                snapshots.append(
                    f"live: {len(open_calls)} call(s) in flight,"
                    f" deepest {deepest.function} at depth {deepest.depth}"
                )
            time.sleep(0.002)

    thread = threading.Thread(target=poller)
    thread.start()
    try:
        pps.run(njobs=4, pages=3, complexity=2)
        pps.quiesce()
        monitor.poll(list(pps.processes.values()))
    finally:
        stop.set()
        thread.join()
        pps.shutdown()

    print("=== Live snapshots (sampled while the pipeline ran) ===")
    for line in snapshots[:8]:
        print(" ", line)
    if len(snapshots) > 8:
        print(f"  ... {len(snapshots) - 8} more")

    print()
    print("=== Running latency statistics ===")
    stats = sorted(
        monitor.latency_stats().items(), key=lambda kv: kv[1][1], reverse=True
    )
    for function, (count, mean_ns, max_ns) in stats[:8]:
        print(f"  {function:42s} n={count:3d} mean={format_ns(mean_ns):>9s}"
              f" max={format_ns(max_ns):>9s}")

    print()
    print(f"=== Alerts (SLO 3 ms) — {len(alerts)} raised ===")
    for alert in alerts[:5]:
        print(f"  [{alert.kind}] {alert.function}: {alert.detail}")
    print()
    print(f"completed calls observed on-line: {monitor.completed_calls()}")


if __name__ == "__main__":
    main()
