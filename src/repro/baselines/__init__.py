"""Related-work baselines: trace object, interceptor-only, gprof-like."""

from repro.baselines.gprof_like import GprofProfile, gprof_profile, path_loss
from repro.baselines.interceptor_only import (
    Anchor,
    CorrelationComparison,
    anchors_from_records,
    compare_correlation,
    recover_same_thread_edges,
)
from repro.baselines.trace_object import (
    DEFAULT_MESSAGE_CAP_BYTES,
    TraceObject,
    TraceObjectOverflow,
    ftl_size_at,
    growth_series,
    max_chain_events,
    trace_object_size_at,
)

__all__ = [
    "Anchor",
    "CorrelationComparison",
    "DEFAULT_MESSAGE_CAP_BYTES",
    "GprofProfile",
    "TraceObject",
    "TraceObjectOverflow",
    "anchors_from_records",
    "compare_correlation",
    "ftl_size_at",
    "gprof_profile",
    "growth_series",
    "max_chain_events",
    "path_loss",
    "recover_same_thread_edges",
    "trace_object_size_at",
]
