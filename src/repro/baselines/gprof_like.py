"""GPROF-style depth-1 profiling baseline.

GPROF [3] "merely reports the callee-caller propagation of CPU
utilization within the same thread context" and keeps relationships at
call-depth 1 (like QUANTIFY [16]). This module builds that view from our
monitoring records so the benchmarks can quantify what the DSCG adds:
full multi-hop call paths versus flattened caller/callee rows, and
system-wide CPU propagation versus same-thread-only attribution.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.callpath import call_path_profiles
from repro.analysis.cpu import CpuAnalysis
from repro.analysis.dscg import Dscg


@dataclass
class GprofRow:
    """One caller/callee row of a flat depth-1 profile."""

    caller: str
    callee: str
    calls: int = 0
    self_cpu_ns: int = 0


@dataclass
class GprofProfile:
    """Depth-1, same-thread-context profile."""

    rows: dict[tuple[str, str], GprofRow] = field(default_factory=dict)

    def add(self, caller: str, callee: str, self_cpu_ns: int | None) -> None:
        key = (caller, callee)
        row = self.rows.get(key)
        if row is None:
            row = GprofRow(caller=caller, callee=callee)
            self.rows[key] = row
        row.calls += 1
        if self_cpu_ns is not None:
            row.self_cpu_ns += self_cpu_ns

    def edge_count(self) -> int:
        return len(self.rows)

    def callers_of(self, callee: str) -> list[GprofRow]:
        return [row for row in self.rows.values() if row.callee == callee]


def gprof_profile(dscg: Dscg, cpu: CpuAnalysis | None = None) -> GprofProfile:
    """Flatten the DSCG into a depth-1 profile, same-thread edges only.

    Edges whose caller and callee executed on different threads are
    attributed to ``<spontaneous>`` — GPROF cannot see across the thread
    boundary, so remote children appear as fresh roots.
    """
    if cpu is None:
        cpu = CpuAnalysis(dscg)
    profile = GprofProfile()
    for node in dscg.walk():
        if node.parent is None:
            caller = "<spontaneous>"
        else:
            parent_entity = node.parent.server_thread
            child_entity = node.server_thread
            same_thread = (
                parent_entity is not None
                and child_entity is not None
                and parent_entity == child_entity
            )
            caller = node.parent.function if same_thread else "<spontaneous>"
        profile.add(caller, node.function, cpu.self_cpu(node))
    return profile


@dataclass
class PathLossReport:
    """How many distinct call paths collapse in the depth-1 view."""

    distinct_call_paths: int
    depth1_edges: int
    spontaneous_roots: int

    @property
    def collapse_ratio(self) -> float:
        if not self.depth1_edges:
            return 1.0
        return self.distinct_call_paths / self.depth1_edges


def path_loss(dscg: Dscg) -> PathLossReport:
    """Quantify the DSCG-vs-GPROF information gap."""
    paths = call_path_profiles(dscg)
    profile = gprof_profile(dscg)
    spontaneous = sum(
        1 for (caller, _), row in profile.rows.items() if caller == "<spontaneous>"
    )
    return PathLossReport(
        distinct_call_paths=len(paths),
        depth1_edges=profile.edge_count(),
        spontaneous_roots=spontaneous,
    )
