"""Trace-Object baseline (Universal Delegator [2] / RSS trace records [21]).

The related-work carrier appends ("concatenates") a log entry to the
in-flight trace record at every probe activation, so the transported
payload grows linearly with the call chain and "unavoidably introduces
the barrier for the call chains that exceed tens of thousands calls".
The FTL, by contrast, is updated in place and stays constant-size.

This module implements the concatenating carrier faithfully enough to
measure the growth curve and the barrier, which the
``bench_ftl_vs_trace_object`` benchmark reproduces.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.ftl import FTL_WIRE_SIZE

#: A realistic per-entry payload: event kind (1), function name (~32),
#: object id (~16), timestamp (8), thread id (4). See _entry_size.
_ENTRY_HEADER = struct.Struct(">BIQ")

#: Default transport cap. ORPC/GIOP implementations of the era degraded
#: or refused messages in the single-digit-megabyte range; at ~230 bytes
#: of concatenated trace per call this puts the barrier at "the call
#: chains that exceed tens of thousands calls", as the paper states.
DEFAULT_MESSAGE_CAP_BYTES = 8 * 1024 * 1024


class TraceObjectOverflow(RuntimeError):
    """The concatenated trace record exceeded the transport cap."""


@dataclass
class TraceEntry:
    """One appended probe entry."""

    event: int
    function: str
    object_id: str
    timestamp_ns: int
    thread_id: int

    def encoded_size(self) -> int:
        return (
            _ENTRY_HEADER.size
            + 4 + len(self.function.encode("utf-8"))
            + 4 + len(self.object_id.encode("utf-8"))
        )

    def encode(self) -> bytes:
        function = self.function.encode("utf-8")
        object_id = self.object_id.encode("utf-8")
        return (
            _ENTRY_HEADER.pack(self.event, self.thread_id & 0xFFFFFFFF, self.timestamp_ns)
            + struct.pack(">I", len(function))
            + function
            + struct.pack(">I", len(object_id))
            + object_id
        )


@dataclass
class TraceObject:
    """The concatenating carrier: every probe appends, nothing is dropped."""

    cap_bytes: int = DEFAULT_MESSAGE_CAP_BYTES
    entries: list[TraceEntry] = field(default_factory=list)
    _size: int = 8  # fixed header

    def append(self, entry: TraceEntry) -> None:
        grown = self._size + entry.encoded_size()
        if grown > self.cap_bytes:
            raise TraceObjectOverflow(
                f"trace object would reach {grown} bytes (> cap {self.cap_bytes});"
                f" chain length {len(self.entries)}"
            )
        self.entries.append(entry)
        self._size = grown

    @property
    def wire_size(self) -> int:
        return self._size

    def encode(self) -> bytes:
        body = b"".join(entry.encode() for entry in self.entries)
        return struct.pack(">Q", len(self.entries)) + body


def _entry_for_depth(depth: int) -> TraceEntry:
    return TraceEntry(
        event=1 + (depth % 4),
        function=f"Module::Interface{depth % 16}::op{depth % 8}",
        object_id=f"proc-{depth % 4}.obj-{depth % 32}",
        timestamp_ns=depth * 1_000,
        thread_id=depth % 64,
    )


def trace_object_size_at(chain_events: int, cap_bytes: int | None = None) -> int:
    """Wire size of the trace object after ``chain_events`` probe events."""
    trace = TraceObject(cap_bytes=cap_bytes or 1 << 62)
    for depth in range(chain_events):
        trace.append(_entry_for_depth(depth))
    return trace.wire_size


def ftl_size_at(chain_events: int) -> int:
    """Wire size of the FTL after any number of events — constant."""
    return FTL_WIRE_SIZE


def max_chain_events(cap_bytes: int = DEFAULT_MESSAGE_CAP_BYTES) -> int:
    """How many probe events fit before the trace object hits the barrier."""
    trace = TraceObject(cap_bytes=cap_bytes)
    depth = 0
    try:
        while True:
            trace.append(_entry_for_depth(depth))
            depth += 1
    except TraceObjectOverflow:
        return depth


def growth_series(depths: list[int]) -> list[tuple[int, int, int]]:
    """(chain events, trace-object bytes, FTL bytes) rows for the bench."""
    return [
        (depth, trace_object_size_at(depth), ftl_size_at(depth)) for depth in depths
    ]
