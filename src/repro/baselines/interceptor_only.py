"""Interceptor-only monitoring baseline (OVATION [15]).

OVATION's interceptors provide "four different timing anchors: client
pre-invoke and post-invoke, servant pre-invoke and post-invoke" plus the
execution entity (thread, process, host) — but **no global causality
capture**: "for each method invocation ever happens between two
distributed objects, the tool cannot determine how this particular
invocation is related to the rest of method invocations."

This module strips our probe records down to what such a monitor sees
(timing + locality, no chain UUID and no event numbers) and then tries
its best to correlate: within one thread, invocation nesting is
recoverable from time containment; across threads, processes and
processors it is not. The correlation benchmark quantifies the gap.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.events import TracingEvent
from repro.core.records import ProbeRecord
from repro.analysis.dscg import Dscg


@dataclass(frozen=True)
class Anchor:
    """What an interceptor records: timing + locality, nothing causal."""

    function: str
    object_id: str
    kind: str  # "client_pre" | "client_post" | "servant_pre" | "servant_post"
    process: str
    host: str
    thread_id: int
    timestamp_ns: int


_KIND_FOR_EVENT = {
    TracingEvent.STUB_START: "client_pre",
    TracingEvent.STUB_END: "client_post",
    TracingEvent.SKEL_START: "servant_pre",
    TracingEvent.SKEL_END: "servant_post",
}


def anchors_from_records(records: list[ProbeRecord]) -> list[Anchor]:
    """Degrade full probe records into interceptor anchors."""
    anchors = []
    for record in records:
        if record.wall_start is None:
            continue
        anchors.append(
            Anchor(
                function=record.function,
                object_id=record.object_id,
                kind=_KIND_FOR_EVENT[record.event],
                process=record.process,
                host=record.host,
                thread_id=record.thread_id,
                timestamp_ns=record.wall_start,
            )
        )
    anchors.sort(key=lambda a: a.timestamp_ns)
    return anchors


def recover_same_thread_edges(anchors: list[Anchor]) -> set[tuple[str, str]]:
    """Best-effort caller/callee edges from per-thread time nesting.

    A ``client_pre`` observed on a thread while a ``servant_pre`` of
    another function is open on the *same thread* implies a nesting edge.
    This is all an interceptor-only monitor can infer; every cross-thread
    hop (i.e. every remote dispatch) is invisible.
    """
    edges: set[tuple[str, str]] = set()
    open_servants: dict[tuple[str, int], list[str]] = defaultdict(list)
    for anchor in anchors:
        key = (anchor.process, anchor.thread_id)
        if anchor.kind == "servant_pre":
            open_servants[key].append(anchor.function)
        elif anchor.kind == "servant_post":
            stack = open_servants[key]
            if stack and stack[-1] == anchor.function:
                stack.pop()
        elif anchor.kind == "client_pre":
            stack = open_servants[key]
            if stack:
                edges.add((stack[-1], anchor.function))
    return edges


def true_edges(dscg: Dscg) -> set[tuple[str, str]]:
    """Ground-truth caller/callee function edges from the DSCG."""
    edges: set[tuple[str, str]] = set()
    for node in dscg.walk():
        if node.parent is not None:
            edges.add((node.parent.function, node.function))
    return edges


def cross_entity_edges(dscg: Dscg) -> set[tuple[str, str]]:
    """True edges whose callee executed on a different thread/process."""
    edges: set[tuple[str, str]] = set()
    for node in dscg.walk():
        if node.parent is None:
            continue
        parent_entity = node.parent.server_thread
        child_entity = node.server_thread
        if parent_entity is None or child_entity is None or parent_entity != child_entity:
            edges.add((node.parent.function, node.function))
    return edges


def instance_attribution(dscg: Dscg) -> tuple[int, int]:
    """(attributable, total) parent→child *instance* attributions.

    Function-name edges are recoverable by a per-thread interceptor when
    the child's client-side span nests inside the parent's servant span —
    but attributing the child's actual *execution* (its servant-side span
    on another thread, process or host) to the parent instance requires a
    causal marker: timestamps cannot do it across unsynchronized hosts,
    and identical concurrent calls make time-matching ambiguous even on
    one host. This metric counts a child instance as attributable by an
    interceptor-only monitor only when its execution shares the parent's
    thread (the collocated case).
    """
    total = 0
    attributable = 0
    for node in dscg.walk():
        if node.parent is None:
            continue
        total += 1
        parent_entity = node.parent.server_thread
        child_entity = node.server_thread
        if parent_entity is not None and parent_entity == child_entity:
            attributable += 1
    return attributable, total


@dataclass
class CorrelationComparison:
    """How much causal structure each approach recovers."""

    true_edge_count: int
    ours_recovered: int
    interceptor_recovered: int

    @property
    def ours_rate(self) -> float:
        return self.ours_recovered / self.true_edge_count if self.true_edge_count else 1.0

    @property
    def interceptor_rate(self) -> float:
        return (
            self.interceptor_recovered / self.true_edge_count
            if self.true_edge_count
            else 1.0
        )


def compare_correlation(
    dscg: Dscg, records: list[ProbeRecord]
) -> CorrelationComparison:
    """Ground truth vs. interceptor-only edge recovery."""
    truth = true_edges(dscg)
    anchors = anchors_from_records(records)
    recovered = recover_same_thread_edges(anchors) & truth
    return CorrelationComparison(
        true_edge_count=len(truth),
        ours_recovered=len(truth),  # the DSCG is the ground truth we built
        interceptor_recovered=len(recovered),
    )
