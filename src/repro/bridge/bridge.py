"""Bi-directional CORBA/COM bridging (Section 2.3).

"In a heterogeneous environment like a CORBA/COM application where
different subsystems are flexibly built upon either CORBA or COM, as long
as the bi-directional CORBA-COM bridge is aware of the extra FTL data
hidden in the instrumented calls, and delivers it from the caller's
domain to the callee's domain, causality will seamlessly propagate across
the boundary, and continue to advance in the other domain."

Our bridge is a process hosting both runtimes. Within it the FTL crosses
domains through thread-specific storage: the inbound skeleton start probe
binds the FTL to the bridging thread, and the outbound stub start probe
of the *other* domain picks it up — the exact mechanism the paper's
tunnel uses between a function implementation and its child calls. The
facades below forward every operation one-to-one.
"""

from __future__ import annotations

from typing import Any

from repro.com.interfaces import ComInterface, ComObject
from repro.com.orpc import Proxy
from repro.errors import BridgeError


def corba_facade_for_com(servant_base: type, com_proxy: Proxy) -> Any:
    """Build a CORBA servant that forwards each operation to a COM proxy.

    ``servant_base`` is a generated servant base class (from
    :func:`repro.idl.compile_idl`); the returned instance implements every
    IDL operation by invoking the method of the same name on
    ``com_proxy``. Operation names must match between the IDL interface
    and the COM interface.
    """
    interface = getattr(servant_base, "_repro_interface", None)
    if interface is None:
        raise BridgeError("servant_base is not a generated IDL servant base")

    operations = [
        name
        for name in dir(servant_base)
        if not name.startswith("_") and callable(getattr(servant_base, name))
    ]
    missing = [op for op in operations if op not in com_proxy.interface.methods]
    if missing:
        raise BridgeError(
            f"COM interface {com_proxy.interface.name} lacks operations {missing}"
            f" required to bridge {interface}"
        )

    namespace: dict[str, Any] = {}
    for op_name in operations:

        def forward(self, *args, _op=op_name, **kwargs):
            return getattr(com_proxy, _op)(*args, **kwargs)

        forward.__name__ = op_name
        forward.__doc__ = f"Bridged to COM {com_proxy.interface.name}.{op_name}"
        namespace[op_name] = forward

    bridged = type(f"CorbaToCom_{servant_base.__name__}", (servant_base,), namespace)
    return bridged()


def com_facade_for_corba(interface: ComInterface, corba_stub: Any) -> ComObject:
    """Build a COM object that forwards each method to a CORBA stub.

    The returned object implements ``interface``; every method delegates
    to the method of the same name on ``corba_stub`` (a generated stub).
    """
    missing = [m for m in interface.methods if not callable(getattr(corba_stub, m, None))]
    if missing:
        raise BridgeError(
            f"CORBA stub {type(corba_stub).__name__} lacks methods {missing}"
            f" required to bridge {interface.name}"
        )

    namespace: dict[str, Any] = {"implements": (interface,)}
    for method_name in interface.methods:

        def forward(self, *args, _m=method_name, **kwargs):
            return getattr(corba_stub, _m)(*args, **kwargs)

        forward.__name__ = method_name
        forward.__doc__ = f"Bridged to CORBA {type(corba_stub).__name__}.{method_name}"
        namespace[method_name] = forward

    bridged = type(f"ComToCorba_{interface.name}", (ComObject,), namespace)
    return bridged()
