"""Bi-directional CORBA/COM bridge."""

from repro.bridge.bridge import com_facade_for_corba, corba_facade_for_com

__all__ = ["com_facade_for_corba", "corba_facade_for_com"]
