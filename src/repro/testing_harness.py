"""Replay-harness generation from recorded DSCGs (future work, Section 6).

"...to automate or semi-automate test harness generation for
multithreaded and distributed systems testing."

Given a reconstructed DSCG, this module derives a *replay plan*: the
sequence of root invocations, their call trees and (when semantics
capture was on) their recorded arguments. The plan can be

- rendered as a standalone, human-editable pytest-style script
  (:func:`render_harness_script`), or
- replayed directly against live stubs (:class:`ReplayRunner`), after
  which the replayed run's DSCG can be structurally compared with the
  recording (:func:`compare_structures`) — a regression test for the
  system's interaction topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dscg import CallNode, Dscg
from repro.core.events import TracingEvent


@dataclass
class ReplayCall:
    """One invocation in the replay plan."""

    interface: str
    operation: str
    object_id: str
    args_repr: list[str] = field(default_factory=list)
    children: list["ReplayCall"] = field(default_factory=list)

    @property
    def function(self) -> str:
        return f"{self.interface}::{self.operation}"

    def signature(self):
        return (
            self.function,
            self.object_id,
            tuple(child.signature() for child in self.children),
        )


@dataclass
class ReplayPlan:
    """Root calls plus expectations derived from one recorded run."""

    roots: list[ReplayCall] = field(default_factory=list)
    total_calls: int = 0

    def signatures(self):
        return [root.signature() for root in self.roots]


def _args_of(node: CallNode) -> list[str]:
    record = node.records.get(TracingEvent.STUB_START)
    if record is not None and record.semantics and "args" in record.semantics:
        return list(record.semantics["args"])
    return []


def _plan_node(node: CallNode) -> ReplayCall:
    call = ReplayCall(
        interface=node.interface,
        operation=node.operation,
        object_id=node.object_id,
        args_repr=_args_of(node),
    )
    for child in node.children:
        call.children.append(_plan_node(child))
    return call


def derive_plan(dscg: Dscg) -> ReplayPlan:
    """Extract the replay plan from a reconstructed DSCG."""
    plan = ReplayPlan()
    for tree in dscg.root_chains():
        for root in tree.roots:
            plan.roots.append(_plan_node(root))
    plan.total_calls = dscg.node_count()
    return plan


def render_harness_script(plan: ReplayPlan, module_docstring: str = "") -> str:
    """Emit a human-editable replay script skeleton.

    Only *root* invocations are driven (interior calls replay themselves
    through the system under test); the recorded tree is kept as the
    structural expectation.
    """
    lines = [
        '"""Generated replay harness. Fill in any unrecorded arguments.',
        "",
        module_docstring or "Derived from a recorded monitoring run.",
        '"""',
        "",
        "EXPECTED_TOTAL_CALLS = %d" % plan.total_calls,
        "",
        "EXPECTED_STRUCTURE = [",
    ]
    for root in plan.roots:
        lines.append(f"    {root.signature()!r},")
    lines.append("]")
    lines.append("")
    lines.append("")
    lines.append("def drive(resolve_stub):")
    lines.append('    """Replay the recorded root invocations.')
    lines.append("")
    lines.append("    resolve_stub(object_id) must return a live stub for the")
    lines.append('    recorded object id."""')
    for root in plan.roots:
        args = ", ".join(root.args_repr) if root.args_repr else ""
        todo = "" if root.args_repr else "  # TODO: arguments not recorded"
        lines.append(
            f"    resolve_stub({root.object_id!r}).{root.operation}({args}){todo}"
        )
    lines.append("")
    return "\n".join(lines)


class ReplayRunner:
    """Replays a plan's root calls against live stubs."""

    def __init__(self, resolve_stub, eval_args=None):
        """``resolve_stub(object_id)`` returns a stub; ``eval_args`` maps
        recorded arg reprs to live values (defaults to ``eval``-free
        literal parsing via :func:`ast.literal_eval`)."""
        import ast

        self._resolve_stub = resolve_stub
        self._eval_args = eval_args or (lambda text: ast.literal_eval(text))

    def run(self, plan: ReplayPlan) -> int:
        """Drive every root call; returns the number of roots replayed."""
        for root in plan.roots:
            stub = self._resolve_stub(root.object_id)
            args = [self._eval_args(text) for text in root.args_repr]
            getattr(stub, root.operation)(*args)
        return len(plan.roots)


def compare_structures(recorded: Dscg, replayed: Dscg) -> list[str]:
    """Structural diff between two runs' DSCGs (empty list == identical).

    Compares the multiset of root call-tree signatures, ignoring chain
    UUIDs and timing — the regression contract a replay harness checks.
    """
    def signatures(dscg: Dscg):
        plan = derive_plan(dscg)
        return sorted(repr(s) for s in plan.signatures())

    before = signatures(recorded)
    after = signatures(replayed)
    differences: list[str] = []
    for missing in set(before) - set(after):
        differences.append(f"missing in replay: {missing}")
    for extra in set(after) - set(before):
        differences.append(f"new in replay: {extra}")
    if len(before) != len(after) and not differences:
        differences.append(
            f"root count changed: {len(before)} recorded vs {len(after)} replayed"
        )
    return differences
