"""Multi-run catalog: cross-run queries and the data-lifecycle tier.

A monitoring deployment accumulates *runs* faster than anyone re-reads
them; the catalog is the layer that keeps that growth useful and
bounded:

- **per-run summaries** — one cached JSON per run (record/chain counts,
  anchor-timestamp bounds, and per-operation wall-interval statistics
  folded into deterministic log2 histograms), built from one predicated
  scan and invalidated by record count;
- **cross-run queries** — "p99 of operation X over the last 50 runs":
  per-run predicated scans fan out across a worker pool and merge
  deterministically (results are consumed in catalog order, never
  completion order), so ``workers=4`` answers bit-identically to
  ``workers=1``;
- **retention / TTL** — :meth:`RunCatalog.apply_retention` downsamples
  runs beyond a count or age budget: the summary is built (if missing),
  marked ``downsampled``, and the run's segment files are deleted.
  Cross-run queries keep answering over downsampled runs from their
  summaries — interface/operation filters exactly, time ranges at
  run-bounds granularity, latency quantiles at histogram (log2)
  resolution;
- **parallel compaction** — :meth:`RunCatalog.compact` drives the
  store's compactor pool over disjoint runs so sealing keeps up with
  sustained multi-run ingest.

Latency quantiles: when every selected run is scanned live the pooled
durations give exact nearest-rank percentiles
(``quantile_source="exact"``); as soon as a downsampled run contributes,
quantiles come from the merged histograms and report each bin's upper
bound (``quantile_source="histogram"``, ≤2x resolution) — deterministic
either way.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import StoreError
from repro.store.query import ScanPredicate, ScanStats, record_anchor

if TYPE_CHECKING:
    from repro.store.store import SegmentStore

SUMMARY_FILE = "summary.json"
SUMMARY_VERSION = 1

#: log2 histogram: bin b holds durations in [2**b, 2**(b+1)) ns
#: (non-positive durations land in bin 0). 64 bins cover any i64.
HIST_BINS = 64


def _hist_bin(ns: int) -> int:
    if ns <= 0:
        return 0
    return min(HIST_BINS - 1, ns.bit_length() - 1)


def _hist_quantile(hist: dict[int, int], q: float) -> int | None:
    """Nearest-rank quantile over a log2 histogram (bin upper bound)."""
    total = sum(hist.values())
    if total == 0:
        return None
    rank = max(0, min(total - 1, int(round(q * (total - 1)))))
    seen = 0
    for bin_index in sorted(hist):
        seen += hist[bin_index]
        if seen > rank:
            return (1 << (bin_index + 1)) - 1
    return (1 << HIST_BINS) - 1  # unreachable


def _exact_quantile(sorted_values: list[int], q: float) -> int:
    index = max(0, min(len(sorted_values) - 1,
                       int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


@dataclass
class _OpStats:
    """Per-operation accumulator, mergeable across runs."""

    records: int = 0
    timed: int = 0
    wall_sum: int = 0
    wall_min: int | None = None
    wall_max: int | None = None
    hist: dict[int, int] = field(default_factory=dict)
    durations: list[int] | None = None  # raw values (live scans only)

    def add(self, duration: int) -> None:
        self.timed += 1
        self.wall_sum += duration
        if self.wall_min is None or duration < self.wall_min:
            self.wall_min = duration
        if self.wall_max is None or duration > self.wall_max:
            self.wall_max = duration
        bin_index = _hist_bin(duration)
        self.hist[bin_index] = self.hist.get(bin_index, 0) + 1
        if self.durations is not None:
            self.durations.append(duration)

    def merge(self, other: "_OpStats") -> None:
        self.records += other.records
        self.timed += other.timed
        self.wall_sum += other.wall_sum
        for bound, pick in (("wall_min", min), ("wall_max", max)):
            theirs = getattr(other, bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(self, bound, theirs if ours is None else pick(ours, theirs))
        for bin_index, count in other.hist.items():
            self.hist[bin_index] = self.hist.get(bin_index, 0) + count
        if self.durations is not None and other.durations is not None:
            self.durations.extend(other.durations)
        else:
            self.durations = None

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "timed": self.timed,
            "wall_sum": self.wall_sum,
            "wall_min": self.wall_min,
            "wall_max": self.wall_max,
            "hist": {str(k): v for k, v in sorted(self.hist.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_OpStats":
        return cls(
            records=data["records"],
            timed=data["timed"],
            wall_sum=data["wall_sum"],
            wall_min=data["wall_min"],
            wall_max=data["wall_max"],
            hist={int(k): v for k, v in data["hist"].items()},
        )

    def render(self, exact: bool) -> dict:
        """JSON row: counts plus latency percentiles."""
        row: dict = {"records": self.records, "timed": self.timed}
        if self.timed:
            wall: dict = {
                "min": self.wall_min,
                "max": self.wall_max,
                "mean": round(self.wall_sum / self.timed, 1),
            }
            if exact and self.durations is not None:
                values = sorted(self.durations)
                for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                    wall[name] = _exact_quantile(values, q)
            else:
                for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                    wall[name] = _hist_quantile(self.hist, q)
            row["wall_ns"] = wall
        return row


@dataclass
class RunSummary:
    """The per-run footer summary the catalog caches (and keeps after
    downsampling, when it becomes the run's only representation)."""

    run_id: str
    records: int
    chains: int
    ts_min: int | None
    ts_max: int | None
    operations: dict[str, _OpStats]
    downsampled: bool = False
    #: record count at build time — the cache-invalidation token.
    source_records: int = 0

    def to_dict(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "run_id": self.run_id,
            "records": self.records,
            "chains": self.chains,
            "ts_min": self.ts_min,
            "ts_max": self.ts_max,
            "downsampled": self.downsampled,
            "source_records": self.source_records,
            "operations": {
                key: stats.to_dict() for key, stats in sorted(self.operations.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        return cls(
            run_id=data["run_id"],
            records=data["records"],
            chains=data["chains"],
            ts_min=data["ts_min"],
            ts_max=data["ts_max"],
            downsampled=data.get("downsampled", False),
            source_records=data.get("source_records", data["records"]),
            operations={
                key: _OpStats.from_dict(value)
                for key, value in data["operations"].items()
            },
        )


@dataclass(frozen=True)
class RetentionPolicy:
    """What the catalog keeps at full fidelity.

    ``max_runs`` — newest N runs keep their segments; older ones are
    downsampled. ``ttl_seconds`` — runs whose ``meta.json`` is older
    than this are downsampled regardless of count. Both optional;
    downsampling is summary-then-delete, never delete-only.
    """

    max_runs: int | None = None
    ttl_seconds: float | None = None


@dataclass
class CrossRunResult:
    """A deterministic cross-run aggregation."""

    predicate: dict
    runs: list[dict]
    operations: dict[str, dict]
    records: int
    quantile_source: str
    skipped: list[dict]

    def to_dict(self) -> dict:
        return {
            "predicate": self.predicate,
            "runs": self.runs,
            "operations": self.operations,
            "records": self.records,
            "quantile_source": self.quantile_source,
            "skipped": self.skipped,
        }


class RunCatalog:
    """Directory of runs over one :class:`~repro.store.SegmentStore`."""

    def __init__(self, store: "SegmentStore"):
        self.store = store

    # ------------------------------------------------------------------
    # Run enumeration (oldest → newest)

    def _run_dir(self, run_id: str) -> str:
        return os.path.join(self.store.path, "runs", run_id)

    def _run_age_key(self, run_id: str) -> tuple[float, str]:
        meta = os.path.join(self._run_dir(run_id), "meta.json")
        try:
            mtime = os.path.getmtime(meta)
        except OSError:
            mtime = 0.0
        return (mtime, run_id)

    def run_ids(self, last_n: int | None = None) -> list[str]:
        """Run ids oldest-first (by ``meta.json`` age, id tie-break);
        ``last_n`` keeps the newest N."""
        ids = sorted(
            (meta.run_id for meta in self.store.runs()), key=self._run_age_key
        )
        if last_n is not None:
            ids = ids[-last_n:] if last_n > 0 else []
        return ids

    # ------------------------------------------------------------------
    # Summaries

    def summary(self, run_id: str, refresh: bool = False) -> RunSummary:
        """The run's cached summary, rebuilt when the run grew."""
        path = os.path.join(self._run_dir(run_id), SUMMARY_FILE)
        if not refresh and os.path.exists(path):
            try:
                with open(path) as handle:
                    cached = RunSummary.from_dict(json.load(handle))
            except (ValueError, KeyError):
                cached = None
            if cached is not None and (
                cached.downsampled
                or cached.source_records == self.store.record_count(run_id)
            ):
                return cached
        summary = self._build_summary(run_id)
        self._write_summary(summary)
        return summary

    def summaries(self, refresh: bool = False) -> list[RunSummary]:
        return [self.summary(run_id, refresh=refresh) for run_id in self.run_ids()]

    def _build_summary(self, run_id: str) -> RunSummary:
        operations: dict[str, _OpStats] = {}
        chains = 0
        records = 0
        ts_min = ts_max = None
        for _chain, group in self.store.chains_for_run(run_id):
            chains += 1
            for record in group:
                records += 1
                key = f"{record.interface}::{record.operation}"
                stats = operations.get(key)
                if stats is None:
                    stats = operations[key] = _OpStats()
                stats.records += 1
                if record.wall_start is not None and record.wall_end is not None:
                    stats.add(record.wall_end - record.wall_start)
                anchor = record_anchor(record.wall_start, record.wall_end)
                if anchor is not None:
                    if ts_min is None or anchor < ts_min:
                        ts_min = anchor
                    if ts_max is None or anchor > ts_max:
                        ts_max = anchor
        return RunSummary(
            run_id=run_id, records=records, chains=chains,
            ts_min=ts_min, ts_max=ts_max, operations=operations,
            source_records=records,
        )

    def _write_summary(self, summary: RunSummary) -> None:
        run_dir = self._run_dir(summary.run_id)
        if not os.path.isdir(run_dir):
            raise StoreError(f"run {summary.run_id!r} has no directory to"
                             f" summarize into")
        path = os.path.join(run_dir, SUMMARY_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(summary.to_dict(), handle, sort_keys=True)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Cross-run queries

    def query(
        self,
        predicate: ScanPredicate | None = None,
        last_n: int | None = None,
        run_ids: Iterable[str] | None = None,
        workers: int = 1,
    ) -> CrossRunResult:
        """Aggregate per-operation stats across runs under one predicate.

        Live runs are scanned with full predicate pushdown; downsampled
        runs answer from their summaries (interface/operation filters
        exact, time range at run-bounds granularity — a partially
        overlapping downsampled run contributes whole and is flagged
        ``approximate``; chain-prefix predicates skip downsampled runs
        entirely, listed under ``skipped``). Per-run scans fan out over
        ``workers`` threads; the merge consumes results in catalog
        order, so the answer is independent of scheduling.
        """
        predicate = predicate or ScanPredicate()
        selected = list(run_ids) if run_ids is not None else self.run_ids(last_n)
        plans: list[tuple[str, RunSummary | None]] = []
        skipped: list[dict] = []
        for run_id in selected:
            summary = self._peek_summary(run_id)
            downsampled = summary is not None and summary.downsampled
            plans.append((run_id, summary if downsampled else None))

        def scan_run(run_id: str) -> tuple[dict[str, _OpStats], dict]:
            ops: dict[str, _OpStats] = {}
            stats = ScanStats()
            for _chain, group in self.store.chains_for_run(
                run_id, predicate=predicate, stats=stats
            ):
                for record in group:
                    key = f"{record.interface}::{record.operation}"
                    entry = ops.get(key)
                    if entry is None:
                        entry = ops[key] = _OpStats(durations=[])
                    entry.records += 1
                    if record.wall_start is not None and record.wall_end is not None:
                        entry.add(record.wall_end - record.wall_start)
            row = {
                "run_id": run_id,
                "source": "scan",
                "records": sum(op.records for op in ops.values()),
                "scan": stats.to_dict(),
            }
            return ops, row

        live_ids = [run_id for run_id, summary in plans if summary is None]
        workers = max(1, min(workers, len(live_ids) or 1))
        scanned: dict[str, tuple[dict, dict]] = {}
        if workers == 1 or len(live_ids) <= 1:
            for run_id in live_ids:
                scanned[run_id] = scan_run(run_id)
        else:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-catalog-query"
            ) as pool:
                futures = {
                    run_id: pool.submit(scan_run, run_id) for run_id in live_ids
                }
                for run_id in live_ids:  # catalog order, not completion order
                    scanned[run_id] = futures[run_id].result()

        merged: dict[str, _OpStats] = {}
        rows: list[dict] = []
        any_summary = False
        for run_id, summary in plans:
            if summary is None:
                ops, row = scanned[run_id]
                rows.append(row)
            else:
                ops, row, skip = self._summary_slice(summary, predicate)
                if skip is not None:
                    skipped.append(skip)
                    continue
                if ops:  # an empty slice shouldn't degrade quantiles
                    any_summary = True
                rows.append(row)
            for key, stats in ops.items():
                target = merged.get(key)
                if target is None:
                    merged[key] = target = _OpStats(durations=[])
                target.merge(stats)
        exact = not any_summary
        operations = {
            key: merged[key].render(exact=exact) for key in sorted(merged)
        }
        return CrossRunResult(
            predicate=predicate.to_dict(),
            runs=rows,
            operations=operations,
            records=sum(row["records"] for row in rows),
            quantile_source="exact" if exact else "histogram",
            skipped=skipped,
        )

    def _peek_summary(self, run_id: str) -> RunSummary | None:
        """The cached summary if one exists on disk (never builds)."""
        path = os.path.join(self._run_dir(run_id), SUMMARY_FILE)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return RunSummary.from_dict(json.load(handle))
        except (ValueError, KeyError):
            return None

    def _summary_slice(
        self, summary: RunSummary, predicate: ScanPredicate
    ) -> tuple[dict[str, _OpStats], dict, dict | None]:
        """Apply what a summary *can* of the predicate; else skip-report."""
        if predicate.chain_prefix is not None:
            return {}, {}, {
                "run_id": summary.run_id,
                "reason": "chain-prefix predicate cannot be answered from a"
                          " downsampled summary",
            }
        approximate = False
        if predicate.has_time_range:
            bounds = (
                (summary.ts_min, summary.ts_max)
                if summary.ts_min is not None else None
            )
            if bounds is None:
                return {}, {}, {
                    "run_id": summary.run_id,
                    "reason": "downsampled summary has no timestamp bounds",
                }
            lo, hi = predicate.ts_min, predicate.ts_max
            if (lo is not None and bounds[1] < lo) or (
                hi is not None and bounds[0] > hi
            ):
                # Entirely outside the window: contributes nothing.
                row = {"run_id": summary.run_id, "source": "summary",
                       "records": 0, "approximate": False}
                return {}, row, None
            approximate = not (
                (lo is None or bounds[0] >= lo) and (hi is None or bounds[1] <= hi)
            )
        ops: dict[str, _OpStats] = {}
        for key, stats in summary.operations.items():
            # Interfaces are themselves "Module::Name" qualified, so the
            # operation is everything after the LAST separator.
            interface, _, operation = key.rpartition("::")
            if predicate.interfaces is not None and interface not in predicate.interfaces:
                continue
            if predicate.operations is not None and operation not in predicate.operations:
                continue
            copy = _OpStats()
            copy.merge(stats)
            ops[key] = copy
        row = {
            "run_id": summary.run_id,
            "source": "summary",
            "records": sum(op.records for op in ops.values()),
            "approximate": approximate,
        }
        return ops, row, None

    # ------------------------------------------------------------------
    # Lifecycle

    def downsample_run(self, run_id: str) -> RunSummary:
        """Replace a run's segments with its summary (idempotent)."""
        summary = self.summary(run_id)
        if summary.downsampled:
            return summary
        summary.downsampled = True
        self._write_summary(summary)
        self.store.drop_segments(run_id)
        return summary

    def apply_retention(
        self, policy: RetentionPolicy, now: float | None = None
    ) -> dict:
        """Downsample every run outside the policy; returns a report."""
        now = time.time() if now is None else now
        ids = self.run_ids()  # oldest first
        expire: list[str] = []
        if policy.max_runs is not None and len(ids) > policy.max_runs:
            expire.extend(
                ids[: len(ids) - policy.max_runs] if policy.max_runs > 0 else ids
            )
        if policy.ttl_seconds is not None:
            for run_id in ids:
                age = now - self._run_age_key(run_id)[0]
                if age > policy.ttl_seconds and run_id not in expire:
                    expire.append(run_id)
        expire.sort(key=self._run_age_key)
        downsampled = []
        for run_id in expire:
            summary = self._peek_summary(run_id)
            if summary is not None and summary.downsampled:
                continue
            self.downsample_run(run_id)
            downsampled.append(run_id)
        return {
            "runs": len(ids),
            "downsampled": downsampled,
            "kept_full": len(ids) - sum(
                1 for run_id in ids
                if (s := self._peek_summary(run_id)) is not None and s.downsampled
            ),
        }

    def compact(self, workers: int | None = None) -> dict[str, bool]:
        """Parallel tiered compaction over disjoint runs (store pool)."""
        return self.store.compact_all(workers)

    # ------------------------------------------------------------------

    def catalog_info(self) -> dict:
        """The ``store-info --catalog`` payload."""
        runs = []
        for run_id in self.run_ids():
            summary = self._peek_summary(run_id)
            runs.append({
                "run_id": run_id,
                "records": self.store.record_count(run_id),
                "summary_cached": summary is not None,
                "downsampled": summary.downsampled if summary else False,
                "summary_records": summary.records if summary else None,
                "ts_min": summary.ts_min if summary else None,
                "ts_max": summary.ts_max if summary else None,
                "operations": len(summary.operations) if summary else None,
            })
        return {"runs": runs, "count": len(runs)}
