"""repro.store — the columnar segment store and the backend seam.

An append-only, log-structured storage backend for probe records: the
collector drain path spools binary frames (precompiled ``struct``
codecs, delta-encoded timestamps, dictionary-interned strings),
background compaction merges the spools into chain-sorted sealed
segments, and analyzer scans decode straight out of ``mmap``ed files —
no SQL on the hot path.

The :class:`StorageBackend` protocol is the seam: the SQLite-backed
:class:`repro.collector.MonitoringDatabase` and :class:`SegmentStore`
are interchangeable under it, and :func:`open_store` picks one from a
path (directory → segment store, file → SQLite).
"""

from repro.store.backend import StorageBackend, detect_backend, open_store
from repro.store.catalog import CrossRunResult, RetentionPolicy, RunCatalog
from repro.store.query import (
    ScanPredicate,
    ScanStats,
    fold_population_stats,
    run_query,
)
from repro.store.segment import SegmentReader, SegmentWriter, segment_info
from repro.store.store import SegmentStore

__all__ = [
    "StorageBackend",
    "SegmentStore",
    "SegmentReader",
    "SegmentWriter",
    "ScanPredicate",
    "ScanStats",
    "RunCatalog",
    "RetentionPolicy",
    "CrossRunResult",
    "detect_backend",
    "open_store",
    "run_query",
    "fold_population_stats",
    "segment_info",
]
