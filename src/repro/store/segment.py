"""Append-only segment files: the on-disk unit of the segment store.

Layout (little-endian throughout)::

    header   "RSG1" | u8 format | u8 kind | u16 schema_version | u64 arrival_base
    block*   u8 tag | u32 payload_len | payload
      tag 1  dict-delta: u32 first_id | u32 count | (u16 len | utf8)*
      tag 2  records:    u32 count | frame*          (see repro.store.codec)
    footer   u64 record_count | u8 has_ranks
             u32 n_strings | (u16 len | utf8)*
             u32 n_chains  | (u32 cid | u32 count | u64 start_off
                              | u64 rank * count if has_ranks)*
             ext?  "FXTS" | u8 flags | i64 ts_min | i64 ts_max
                   | (i64 gmin | i64 gmax) * n_chains
    trailer  u64 footer_off | "RSEGEND1"

The optional ``FXTS`` footer extension carries min/max *anchor*
timestamps (``wall_start``, else ``wall_end``) for the whole segment and
per chain group — the metadata predicate pushdown prunes on. An
inverted pair (min > max) means "no frame here carries an anchor", which
a time-range predicate may also prune. Readers that predate the
extension simply stop after the chain index, so the format version is
unchanged.

Two segment kinds share the format:

- *spool* segments are what the collector drain path appends: records in
  arrival order, chains interleaved, dict-delta blocks always written
  before the frames that reference them so a truncated file decodes
  front-to-back.
- *sealed* segments are produced by compaction: frames grouped by chain
  (uuid byte order), each group's first frame re-anchored so any
  chain-aligned byte range decodes independently — this is what lets
  analyzer shards read disjoint file ranges. The footer carries each
  group's start offset and the records' original arrival ranks.

A segment missing its trailer (a crash mid-drain) is *partial*: the
reader salvages every complete frame front-to-back, rebuilds the string
dictionary from the inline dict-delta blocks, and reports the bytes it
had to drop — loss accounting survives partial segments instead of the
whole file vanishing.
"""

from __future__ import annotations

import mmap
import os
import struct
from json import dumps as _dumps, loads as _loads

from repro.core.records import SCHEMA_VERSION, ProbeRecord
from repro.errors import StoreError
from repro.store.codec import (
    DOMAIN_BY_NUM,
    DOMAIN_NUM,
    EVENT_BY_NUM,
    FRAME_NARROW,
    FRAME_WIDE,
    ONEWAY,
    SYNC,
)
from repro.core.events import Domain

MAGIC = b"RSG1"
TRAILER_MAGIC = b"RSEGEND1"
FORMAT_VERSION = 1

KIND_SPOOL = 0
KIND_SEALED = 1

_HEADER = struct.Struct("<4sBBHQ")
_BLOCK = struct.Struct("<BI")
_TRAILER = struct.Struct("<Q8s")

_TAG_DICT = 1
_TAG_RECORDS = 2

_FXTS_MAGIC = b"FXTS"
_FXTS_SEGMENT = 1  # flags bit: segment-level bounds present
_FXTS_GROUPS = 2  # flags bit: one (gmin, gmax) pair per chain entry
#: Inverted bounds pair: "no anchored frames" (prunable under any
#: time-range predicate, unlike unknown bounds which never prune).
_TS_EMPTY = (1, 0)

_FN_SIZE = FRAME_NARROW.size
_FW_SIZE = FRAME_WIDE.size
_MISC_OFF = 13  # byte offset of the misc flag byte inside a frame
_SEMLEN_OFF = 67  # byte offset of the semantics length (last head field)

#: Flush the records block once it holds this many payload bytes.
_FLUSH_BYTES = 4 << 20

_I32_MIN = -(1 << 31)
_I32_MAX = (1 << 31) - 1

#: Frame head only (both widths share it) — the population-stats scan
#: unpacks this and skips the timestamp tail entirely.
_STAT_HEAD = struct.Struct("<IqBBBIIIIIqIqII")


class SegmentWriter:
    """Streams probe records into one segment file.

    The per-record encode loop is the collector's ingest fast path: it
    is deliberately flat — inlined dictionary interning, one fused
    ``struct.Struct`` pack per frame, delta state in locals.
    """

    def __init__(
        self,
        path: str,
        kind: int = KIND_SPOOL,
        arrival_base: int = 0,
        schema_version: int = SCHEMA_VERSION,
    ):
        self.path = path
        self.kind = kind
        self.arrival_base = arrival_base
        self.schema_version = schema_version
        self._file = open(path, "wb")
        self._file.write(
            _HEADER.pack(MAGIC, FORMAT_VERSION, kind, schema_version, arrival_base)
        )
        self._file_pos = _HEADER.size
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []
        self._pending_first_id = 0
        self._pending: list[str] = []
        self._rbuf = bytearray()
        self._rcount = 0
        self.record_count = 0
        # cid -> [count, start_off, ranks, ts_min, ts_max]; insertion
        # order == group order for sealed segments (one chain per group).
        # ts_min/ts_max bound the chain's anchor timestamps (None until
        # an anchored record lands) and feed the footer FXTS extension.
        self._index: dict[int, list] = {}
        # Delta anchors; None forces the next frame to carry raw readings.
        self._prev_ws: int | None = None
        self._prev_cs: int | None = None
        self._sealed_kind = kind == KIND_SEALED

    # ------------------------------------------------------------------

    def start_group(self) -> None:
        """Mark a chain-group boundary (sealed segments only).

        Re-anchors the timestamp deltas so the group decodes from its
        own start offset, and keeps a group's frames inside one records
        block so they are byte-contiguous in the file.
        """
        self._prev_ws = None
        self._prev_cs = None
        if len(self._rbuf) >= _FLUSH_BYTES:
            self._flush_records()
        if self._pending and not self._rbuf:
            self._flush_dict()

    def append(self, records, ranks: list[int] | None = None) -> int:
        """Encode and buffer ``records``; returns how many were written.

        ``ranks`` (compaction only) attaches the records' original
        arrival ranks to their chain's footer entry — all records of a
        ranked append must belong to one chain.
        """
        ids = self._ids
        ids_get = ids.get
        pending = self._pending
        pending_append = pending.append
        strings = self._strings
        strings_append = strings.append
        index = self._index
        rbuf = self._rbuf
        fn_pack = FRAME_NARROW.pack
        fw_pack = FRAME_WIDE.pack
        domain_num = DOMAIN_NUM
        dumps = _dumps
        sealed = self._sealed_kind
        file_pos = self._file_pos
        prev_ws = self._prev_ws
        prev_cs = self._prev_cs
        count = 0
        cid = -1

        def intern(s):
            i = ids_get(s)
            if i is None:
                i = ids[s] = len(strings)
                strings_append(s)
                pending_append(s)
            return i

        for r in records:
            chain = r.chain_uuid
            cid = ids_get(chain)
            if cid is None:
                cid = ids[chain] = len(strings)
                strings_append(chain)
                pending_append(chain)
            ifc = intern(r.interface)
            op = intern(r.operation)
            obj = intern(r.object_id)
            comp = intern(r.component)
            proc = intern(r.process)
            host = intern(r.host)
            ptype = intern(r.processor_type)
            plat = intern(r.platform)

            ws = r.wall_start
            we = r.wall_end
            cs = r.cpu_start
            ce = r.cpu_end
            pres = 0
            wsd = wed = csd = ced = 0
            if ws is not None:
                pres = 1
                wsd = ws if prev_ws is None else ws - prev_ws
                prev_ws = ws
                if we is not None:
                    pres = 3
                    wed = we - ws
            elif we is not None:
                pres = 2
                wed = we
            if cs is not None:
                pres |= 4
                csd = cs if prev_cs is None else cs - prev_cs
                prev_cs = cs
                if ce is not None:
                    pres |= 8
                    ced = ce - cs
            elif ce is not None:
                pres |= 8
                ced = ce

            child = r.child_chain_uuid
            if child is None:
                childid = 0
            else:
                pres |= 16
                childid = intern(child)

            sem = r.semantics
            if sem is None:
                semb = b""
                semlen = 0
            else:
                pres |= 32
                semb = dumps(sem).encode()
                semlen = len(semb)

            misc = 0
            if r.call_kind is ONEWAY:
                misc = 1
            if r.collocated:
                misc |= 2
            dom = r.domain
            if dom is not Domain.CORBA:
                misc |= domain_num[dom] << 2

            if (
                _I32_MIN <= wsd <= _I32_MAX
                and _I32_MIN <= wed <= _I32_MAX
                and _I32_MIN <= csd <= _I32_MAX
                and _I32_MIN <= ced <= _I32_MAX
            ):
                frame = fn_pack(
                    cid, r.event_seq, r.event, misc, pres, ifc, op, obj, comp,
                    proc, r.pid, host, r.thread_id, ptype, plat, childid,
                    semlen, wsd, wed, csd, ced,
                )
            else:
                frame = fw_pack(
                    cid, r.event_seq, r.event, misc | 16, pres, ifc, op, obj,
                    comp, proc, r.pid, host, r.thread_id, ptype, plat, childid,
                    semlen, wsd, wed, csd, ced,
                )

            try:
                entry = index[cid]
                entry[0] += 1
            except KeyError:
                # First frame of this chain; for sealed segments this is
                # the group start (one chain per group), and the +9
                # accounts for the pending records-block header and its
                # frame count word.
                entry = index[cid] = [
                    1, file_pos + 9 + len(rbuf) if sealed else 0, None, None, None,
                ]
            anchor = ws if ws is not None else we
            if anchor is not None:
                if entry[3] is None:
                    entry[3] = entry[4] = anchor
                elif anchor < entry[3]:
                    entry[3] = anchor
                elif anchor > entry[4]:
                    entry[4] = anchor
            rbuf += frame
            if semb:
                rbuf += semb
            count += 1

        self._prev_ws = prev_ws
        self._prev_cs = prev_cs
        self._rcount += count
        self.record_count += count
        if ranks is not None and count:
            if len(ranks) != count:
                raise StoreError("ranks must align one-to-one with records")
            entry = self._index[cid]
            entry[2] = list(ranks) if entry[2] is None else entry[2] + list(ranks)
        if not sealed and len(self._rbuf) >= _FLUSH_BYTES:
            self._flush_dict()
            self._flush_records()
        return count

    # ------------------------------------------------------------------

    def _flush_dict(self) -> None:
        if not self._pending:
            return
        payload = bytearray(struct.pack("<II", self._pending_first_id, len(self._pending)))
        for s in self._pending:
            raw = s.encode("utf-8", "surrogatepass")
            payload += struct.pack("<H", len(raw))
            payload += raw
        self._file.write(_BLOCK.pack(_TAG_DICT, len(payload)))
        self._file.write(payload)
        self._file_pos += _BLOCK.size + len(payload)
        self._pending_first_id += len(self._pending)
        self._pending.clear()

    def _flush_records(self) -> None:
        if not self._rcount:
            return
        payload_len = 4 + len(self._rbuf)
        self._file.write(_BLOCK.pack(_TAG_RECORDS, payload_len))
        self._file.write(struct.pack("<I", self._rcount))
        self._file.write(self._rbuf)
        self._file_pos += _BLOCK.size + payload_len
        self._rbuf.clear()
        self._rcount = 0
        # The reader resets its delta state per records block, so each
        # block must be self-anchored: the first frame of the next block
        # carries raw readings, not deltas against the flushed block.
        self._prev_ws = None
        self._prev_cs = None

    def seal(self) -> None:
        """Write the footer + trailer and close the file."""
        if self._sealed_kind:
            # Offsets were computed against the current block layout, so
            # frames flush first; the footer dictionary is authoritative.
            self._flush_records()
            self._flush_dict()
        else:
            self._flush_dict()
            self._flush_records()
        footer_off = self._file_pos
        has_ranks = any(entry[2] is not None for entry in self._index.values())
        out = bytearray(struct.pack("<QB", self.record_count, 1 if has_ranks else 0))
        out += struct.pack("<I", len(self._strings))
        for s in self._strings:
            raw = s.encode("utf-8", "surrogatepass")
            out += struct.pack("<H", len(raw))
            out += raw
        out += struct.pack("<I", len(self._index))
        for cid, (count, start_off, ranks, _tmin, _tmax) in self._index.items():
            out += struct.pack("<IIQ", cid, count, start_off)
            if has_ranks:
                ranks = ranks if ranks is not None else range(count)
                if len(ranks) != count:
                    raise StoreError("segment footer ranks out of sync")
                out += struct.pack(f"<{count}Q", *ranks)
        # Timestamp-bounds extension: segment-level + per-group anchor
        # (wall_start, else wall_end) min/max — what predicate pushdown
        # prunes on without decoding a single frame.
        anchored = [e for e in self._index.values() if e[3] is not None]
        seg_min, seg_max = (
            (min(e[3] for e in anchored), max(e[4] for e in anchored))
            if anchored else _TS_EMPTY
        )
        out += _FXTS_MAGIC
        out += struct.pack("<Bqq", _FXTS_SEGMENT | _FXTS_GROUPS, seg_min, seg_max)
        for _cid, (_count, _off, _ranks, tmin, tmax) in self._index.items():
            out += struct.pack(
                "<qq", *(_TS_EMPTY if tmin is None else (tmin, tmax))
            )
        self._file.write(out)
        self._file.write(_TRAILER.pack(footer_off, TRAILER_MAGIC))
        self._file.flush()
        self._file.close()

    def abort(self) -> None:
        """Close and delete the (unsealed) file."""
        self._file.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class SegmentReader:
    """mmap-backed zero-copy reads of one (possibly partial) segment."""

    def __init__(self, path: str):
        self.path = path
        self.size_bytes = os.path.getsize(path)
        with open(path, "rb") as handle:
            if self.size_bytes == 0:
                raise StoreError(f"empty segment file: {path}")
            self._mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        if self.size_bytes < _HEADER.size:
            raise StoreError(f"segment too short for a header: {path}")
        magic, fmt, kind, schema_version, arrival_base = _HEADER.unpack_from(self._mm, 0)
        if magic != MAGIC:
            raise StoreError(f"not a segment file (bad magic): {path}")
        if fmt != FORMAT_VERSION:
            raise StoreError(f"unsupported segment format {fmt}: {path}")
        if schema_version != SCHEMA_VERSION:
            raise StoreError(
                f"segment {path} uses record schema v{schema_version}, "
                f"this build reads v{SCHEMA_VERSION}"
            )
        self.kind = kind
        self.sealed = kind == KIND_SEALED
        self.schema_version = schema_version
        self.arrival_base = arrival_base
        self.partial = False
        self.dropped_bytes = 0
        self.strings: list[str] = []
        #: list of (cid, count, start_off, ranks-or-None) in group order.
        self.chains: list[tuple[int, int, int, list | None]] = []
        #: anchor-timestamp (min, max) over the whole segment; ``None``
        #: = unknown (salvaged / pre-extension file — never prune),
        #: inverted = no anchored frames (prunable).
        self.ts_bounds: tuple[int, int] | None = None
        #: per-chain-group (min, max) pairs aligned with ``chains``.
        self.chain_ts: list[tuple[int, int]] | None = None
        self.record_count = 0
        #: frame byte ranges of the records blocks, in file order.
        self._regions: list[tuple[int, int]] = []
        if not self._load_with_footer():
            self._salvage()

    def close(self) -> None:
        self._mm.close()

    # ------------------------------------------------------------------
    # Loading

    def _load_with_footer(self) -> bool:
        mm = self._mm
        if self.size_bytes < _HEADER.size + _TRAILER.size:
            return False
        footer_off, magic = _TRAILER.unpack_from(mm, self.size_bytes - _TRAILER.size)
        if magic != TRAILER_MAGIC or not _HEADER.size <= footer_off <= self.size_bytes:
            return False
        try:
            return self._parse_footer(footer_off)
        except (struct.error, ValueError, MemoryError, OverflowError, StoreError):
            # A valid trailer over a corrupt footer body (bad counts,
            # lengths past the mmap, unknown block tags): salvage the
            # record blocks instead of losing the whole segment.
            return False

    def _parse_footer(self, footer_off: int) -> bool:
        mm = self._mm
        # Footer: counts, dictionary, chain index.
        pos = footer_off
        self.record_count, has_ranks = struct.unpack_from("<QB", mm, pos)
        pos += 9
        (n_strings,) = struct.unpack_from("<I", mm, pos)
        pos += 4
        strings = []
        for _ in range(n_strings):
            (slen,) = struct.unpack_from("<H", mm, pos)
            pos += 2
            strings.append(mm[pos:pos + slen].decode("utf-8", "surrogatepass"))
            pos += slen
        self.strings = strings
        (n_chains,) = struct.unpack_from("<I", mm, pos)
        pos += 4
        chains = []
        for _ in range(n_chains):
            cid, count, start_off = struct.unpack_from("<IIQ", mm, pos)
            pos += 16
            ranks = None
            if has_ranks:
                ranks = list(struct.unpack_from(f"<{count}Q", mm, pos))
                pos += 8 * count
            chains.append((cid, count, start_off, ranks))
        self.chains = chains
        # Optional timestamp-bounds extension (absent in files written
        # before predicate pushdown landed; scans then never prune).
        footer_end = self.size_bytes - _TRAILER.size
        if pos + 4 <= footer_end and mm[pos:pos + 4] == _FXTS_MAGIC:
            (flags, seg_min, seg_max) = struct.unpack_from("<Bqq", mm, pos + 4)
            pos += 4 + 17
            if flags & _FXTS_SEGMENT:
                self.ts_bounds = (seg_min, seg_max)
            if flags & _FXTS_GROUPS:
                pairs = struct.unpack_from(f"<{2 * n_chains}q", mm, pos)
                pos += 16 * n_chains
                self.chain_ts = [
                    (pairs[i], pairs[i + 1]) for i in range(0, len(pairs), 2)
                ]
        # Hop the block headers to map the frame regions.
        pos = _HEADER.size
        regions = []
        while pos < footer_off:
            tag, plen = _BLOCK.unpack_from(mm, pos)
            if tag == _TAG_RECORDS:
                regions.append((pos + _BLOCK.size + 4, pos + _BLOCK.size + plen))
            elif tag != _TAG_DICT:
                raise StoreError(f"unknown block tag {tag} in {self.path}")
            pos += _BLOCK.size + plen
        self._regions = regions
        return True

    def _salvage(self) -> None:
        """Partial segment: decode what survives, account what doesn't."""
        mm = self._mm
        end = self.size_bytes
        pos = _HEADER.size
        strings: list[str] = []
        regions: list[tuple[int, int]] = []
        while pos + _BLOCK.size <= end:
            tag, plen = _BLOCK.unpack_from(mm, pos)
            payload_end = pos + _BLOCK.size + plen
            if tag == _TAG_DICT:
                if payload_end > end:
                    break  # truncated mid-dictionary: nothing after is decodable
                dpos = pos + _BLOCK.size
                first_id, count = struct.unpack_from("<II", mm, dpos)
                dpos += 8
                if first_id != len(strings):
                    break  # dictionary gap: stop before mis-decoding ids
                for _ in range(count):
                    (slen,) = struct.unpack_from("<H", mm, dpos)
                    dpos += 2
                    strings.append(mm[dpos:dpos + slen].decode("utf-8", "surrogatepass"))
                    dpos += slen
            elif tag == _TAG_RECORDS:
                frame_start = pos + _BLOCK.size + 4
                if frame_start > end:
                    break
                regions.append((frame_start, min(payload_end, end)))
                if payload_end > end:
                    pos = payload_end  # truncated: the region scan stops itself
                    break
            else:
                break  # unrecognized bytes: treat the rest as lost
            pos = payload_end
        self.partial = True
        self.strings = strings
        self._regions = regions
        # One lean pass to count what actually decodes; frames referring
        # past the salvaged dictionary (or cut mid-frame) are dropped.
        counts: dict[int, int] = {}
        n_strings = len(strings)
        record_count = 0
        decoded_end = regions[-1][0] if regions else pos
        for start, region_end in regions:
            off = start
            while off + _FN_SIZE <= region_end:
                misc = mm[off + _MISC_OFF]
                size = _FW_SIZE if misc & 16 else _FN_SIZE
                if off + size > region_end:
                    break
                cid, _seq = struct.unpack_from("<Iq", mm, off)
                (semlen,) = struct.unpack_from("<I", mm, off + _SEMLEN_OFF)
                if off + size + semlen > region_end or cid >= n_strings:
                    break
                counts[cid] = counts.get(cid, 0) + 1
                record_count += 1
                off += size + semlen
            decoded_end = off
        self.dropped_bytes = max(0, end - decoded_end)
        self.record_count = record_count
        self.chains = [(cid, count, 0, None) for cid, count in counts.items()]
        # Clamp the last region to the decodable prefix so the decode
        # loops below never trip over the truncated tail.
        if regions:
            last_start, _ = regions[-1]
            regions[-1] = (last_start, max(last_start, decoded_end))

    # ------------------------------------------------------------------
    # Decoding

    def _decode_span(self, off: int, end: int, limit: int, sink) -> int:
        """Decode up to ``limit`` frames from ``[off, end)`` into ``sink``.

        ``sink(cid, record)`` is called per record. This is the scan fast
        path: one fused unpack per frame, tuple-indexed enum lookups,
        delta state in locals. Returns the number of records decoded.
        """
        mm = self._mm
        strings = self.strings
        fn_unpack = FRAME_NARROW.unpack_from
        fw_unpack = FRAME_WIDE.unpack_from
        fn_size = _FN_SIZE
        fw_size = _FW_SIZE
        loads = _loads
        record = ProbeRecord
        event_by_num = EVENT_BY_NUM
        domain_by_num = DOMAIN_BY_NUM
        sealed = self.sealed
        prev_ws = prev_cs = None
        last_cid = -1
        done = 0
        while off < end and done < limit:
            if mm[off + _MISC_OFF] & 16:
                (cid, seq, ev, misc, pres, ifc, op, obj, comp, proc, pid, host,
                 tid, ptype, plat, childid, semlen, wsd, wed, csd, ced,
                 ) = fw_unpack(mm, off)
                off += fw_size
            else:
                (cid, seq, ev, misc, pres, ifc, op, obj, comp, proc, pid, host,
                 tid, ptype, plat, childid, semlen, wsd, wed, csd, ced,
                 ) = fn_unpack(mm, off)
                off += fn_size
            if sealed and cid != last_cid:
                prev_ws = prev_cs = None
                last_cid = cid
            if pres & 1:
                ws = wsd if prev_ws is None else prev_ws + wsd
                prev_ws = ws
                we = ws + wed if pres & 2 else None
            else:
                ws = None
                we = wed if pres & 2 else None
            if pres & 4:
                cs = csd if prev_cs is None else prev_cs + csd
                prev_cs = cs
                ce = cs + ced if pres & 8 else None
            else:
                cs = None
                ce = ced if pres & 8 else None
            if semlen:
                sem = loads(mm[off:off + semlen]) if pres & 32 else None
                off += semlen
            else:
                sem = None
            sink(cid, record(
                strings[cid], seq, event_by_num[ev], strings[ifc], strings[op],
                strings[obj], strings[comp], strings[proc], pid, strings[host],
                tid, strings[ptype], strings[plat],
                ONEWAY if misc & 1 else SYNC, True if misc & 2 else False,
                domain_by_num[(misc >> 2) & 3], ws, we, cs, ce,
                strings[childid] if pres & 16 else None, sem,
            ))
            done += 1
        return done

    def _decode_span_filtered(
        self, off: int, end: int, limit: int, sink, flt
    ) -> tuple[int, int]:
        """Predicated twin of :meth:`_decode_span`.

        Walks up to ``limit`` frames of ``[off, end)``, maintaining the
        delta chain for every frame, but only materializes (and sinks) a
        :class:`ProbeRecord` for frames matching ``flt`` — the
        per-segment integer-id filter compiled by
        :func:`repro.store.query.segment_filter`. ``sink(cid, record,
        frame_index)`` receives the frame's position within the span so
        callers can recover arrival ranks without decoding non-matches.
        Returns ``(frames_scanned, records_matched)``.
        """
        mm = self._mm
        strings = self.strings
        fn_unpack = FRAME_NARROW.unpack_from
        fw_unpack = FRAME_WIDE.unpack_from
        fn_size = _FN_SIZE
        fw_size = _FW_SIZE
        loads = _loads
        record = ProbeRecord
        event_by_num = EVENT_BY_NUM
        domain_by_num = DOMAIN_BY_NUM
        sealed = self.sealed
        cids = flt.cids
        ifc_ids = flt.ifc_ids
        op_ids = flt.op_ids
        ts_lo = flt.ts_lo
        ts_hi = flt.ts_hi
        timed = ts_lo is not None or ts_hi is not None
        prev_ws = prev_cs = None
        last_cid = -1
        scanned = matched = 0
        while off < end and scanned < limit:
            if mm[off + _MISC_OFF] & 16:
                (cid, seq, ev, misc, pres, ifc, op, obj, comp, proc, pid, host,
                 tid, ptype, plat, childid, semlen, wsd, wed, csd, ced,
                 ) = fw_unpack(mm, off)
                off += fw_size
            else:
                (cid, seq, ev, misc, pres, ifc, op, obj, comp, proc, pid, host,
                 tid, ptype, plat, childid, semlen, wsd, wed, csd, ced,
                 ) = fn_unpack(mm, off)
                off += fn_size
            if sealed and cid != last_cid:
                prev_ws = prev_cs = None
                last_cid = cid
            # Timestamps decode unconditionally: the delta chain must
            # advance even across skipped frames.
            if pres & 1:
                ws = wsd if prev_ws is None else prev_ws + wsd
                prev_ws = ws
                we = ws + wed if pres & 2 else None
            else:
                ws = None
                we = wed if pres & 2 else None
            if pres & 4:
                cs = csd if prev_cs is None else prev_cs + csd
                prev_cs = cs
                ce = cs + ced if pres & 8 else None
            else:
                cs = None
                ce = ced if pres & 8 else None
            keep = (
                (cids is None or cid in cids)
                and (op_ids is None or op in op_ids)
                and (ifc_ids is None or ifc in ifc_ids)
            )
            if keep and timed:
                anchor = ws if ws is not None else we
                keep = anchor is not None and (
                    (ts_lo is None or anchor >= ts_lo)
                    and (ts_hi is None or anchor <= ts_hi)
                )
            if keep:
                if semlen:
                    sem = loads(mm[off:off + semlen]) if pres & 32 else None
                else:
                    sem = None
                sink(cid, record(
                    strings[cid], seq, event_by_num[ev], strings[ifc],
                    strings[op], strings[obj], strings[comp], strings[proc],
                    pid, strings[host], tid, strings[ptype], strings[plat],
                    ONEWAY if misc & 1 else SYNC, True if misc & 2 else False,
                    domain_by_num[(misc >> 2) & 3], ws, we, cs, ce,
                    strings[childid] if pres & 16 else None, sem,
                ), scanned)
                matched += 1
            off += semlen
            scanned += 1
        return scanned, matched

    def load_groups(self, groups) -> None:
        """Append every record to ``groups[chain_uuid]`` in file order.

        ``groups`` should be a ``defaultdict(list)`` keyed by chain uuid
        string; callers merge several segments into one mapping.
        """
        strings = self.strings
        sink = lambda cid, rec, _g=groups: _g[strings[cid]].append(rec)
        for start, end in self._regions:
            self._decode_span(start, end, 1 << 62, sink)

    def load_ranked(self, out: list) -> None:
        """Append ``(arrival_rank, record)`` pairs to ``out``.

        Spool ranks are the arrival base plus the frame position; sealed
        segments carry the original ranks per chain group in the footer.
        """
        if not self.sealed or self.partial:
            # Spools, and salvaged sealed segments whose footer (and with
            # it the group offsets/ranks) was lost: file order is the
            # best arrival order available.
            base = self.arrival_base
            pairs = []
            sink = lambda cid, rec, _p=pairs: _p.append(rec)
            for start, end in self._regions:
                self._decode_span(start, end, 1 << 62, sink)
            out.extend((base + i, rec) for i, rec in enumerate(pairs))
            return
        next_rank = self.arrival_base
        for cid, count, start_off, ranks in self.chains:
            group: list[ProbeRecord] = []
            sink = lambda _cid, rec, _g=group: _g.append(rec)
            self._decode_span(start_off, self.size_bytes, count, sink)
            if ranks is None:
                # No recorded arrival order (sealed segment written
                # directly, not by compaction): file order stands in.
                ranks = range(next_rank, next_rank + count)
            next_rank += count
            out.extend(zip(ranks, group))

    def decode_group(self, start_off: int, count: int) -> list[ProbeRecord]:
        """Decode one sealed chain group from its byte range (zero-copy)."""
        group: list[ProbeRecord] = []
        sink = lambda _cid, rec, _g=group: _g.append(rec)
        self._decode_span(start_off, self.size_bytes, count, sink)
        return group

    # ------------------------------------------------------------------
    # Predicated decoding (see repro.store.query)

    def load_groups_filtered(self, groups, flt) -> tuple[int, int]:
        """Filtered :meth:`load_groups`; returns (scanned, matched)."""
        strings = self.strings
        sink = lambda cid, rec, _idx, _g=groups: _g[strings[cid]].append(rec)
        scanned = matched = 0
        for start, end in self._regions:
            s, m = self._decode_span_filtered(start, end, 1 << 62, sink, flt)
            scanned += s
            matched += m
        return scanned, matched

    def decode_group_filtered(
        self, start_off: int, count: int, flt
    ) -> list[ProbeRecord]:
        """Filtered :meth:`decode_group` (scans exactly ``count`` frames)."""
        group: list[ProbeRecord] = []
        sink = lambda _cid, rec, _idx, _g=group: _g.append(rec)
        self._decode_span_filtered(start_off, self.size_bytes, count, sink, flt)
        return group

    def load_ranked_filtered(self, out: list, flt) -> tuple[int, int]:
        """Filtered :meth:`load_ranked`; returns (scanned, matched).

        Arrival ranks are positional over *all* frames — matched or not —
        so a predicated ``all_records`` merge interleaves identically
        with (a subsequence of) the unpredicated order: skipping a frame
        must never compact the rank space.
        """
        scanned = matched = 0
        if not self.sealed or self.partial:
            base = self.arrival_base
            for start, end in self._regions:
                span_base = base + scanned
                sink = (
                    lambda _cid, rec, idx, _b=span_base, _o=out:
                    _o.append((_b + idx, rec))
                )
                s, m = self._decode_span_filtered(start, end, 1 << 62, sink, flt)
                scanned += s
                matched += m
            return scanned, matched
        next_rank = self.arrival_base
        chain_ts = self.chain_ts
        group_flt = flt.without_chain_test()
        timed = flt.ts_lo is not None or flt.ts_hi is not None
        for gi, (cid, count, start_off, ranks) in enumerate(self.chains):
            group_base = next_rank
            next_rank += count
            if flt.cids is not None and cid not in flt.cids:
                continue
            if timed and chain_ts is not None and not _ts_overlaps(
                chain_ts[gi], flt.ts_lo, flt.ts_hi
            ):
                continue
            pairs: list[tuple[int, ProbeRecord]] = []
            sink = lambda _cid, rec, idx, _p=pairs: _p.append((idx, rec))
            s, m = self._decode_span_filtered(
                start_off, self.size_bytes, count, sink, group_flt
            )
            scanned += s
            matched += m
            if ranks is None:
                out.extend((group_base + idx, rec) for idx, rec in pairs)
            else:
                out.extend((ranks[idx], rec) for idx, rec in pairs)
        return scanned, matched

    def stat_scan(self, stats: dict) -> None:
        """Fold this segment into population statistics.

        A lean pass: no ProbeRecords are built, only the head integers
        are unpacked and the distinct sets collect strings/tuples, which
        merge across segments in the store's ``population_stats``.
        """
        mm = self._mm
        strings = self.strings
        head_unpack = _STAT_HEAD.unpack_from
        calls = stats["calls"]
        methods = stats["methods"]
        interfaces = stats["interfaces"]
        components = stats["components"]
        objects = stats["objects"]
        processes = stats["processes"]
        threads = stats["threads"]
        chains = stats["chains"]
        fn_size = _FN_SIZE
        fw_size = _FW_SIZE
        for start, end in self._regions:
            off = start
            while off < end:
                size = fw_size if mm[off + _MISC_OFF] & 16 else fn_size
                (cid, _seq, ev, _misc, _pres, ifc, op, obj, comp, proc, _pid,
                 _host, tid, _ptype, _plat) = head_unpack(mm, off)
                (semlen,) = struct.unpack_from("<I", mm, off + _SEMLEN_OFF)
                if ev == 1:
                    calls += 1
                methods.add((strings[ifc], strings[op]))
                interfaces.add(strings[ifc])
                components.add(strings[comp])
                objects.add(strings[obj])
                process = strings[proc]
                processes.add(process)
                threads.add((process, tid))
                chains.add(strings[cid])
                off += size + semlen
        stats["calls"] = calls


def _ts_overlaps(bounds: tuple[int, int], lo: int | None, hi: int | None) -> bool:
    """Group-bounds overlap test (inverted pair = no anchors = prune)."""
    bmin, bmax = bounds
    if bmin > bmax:
        return False
    if lo is not None and bmax < lo:
        return False
    if hi is not None and bmin > hi:
        return False
    return True


def segment_info(reader: SegmentReader) -> dict:
    """Summary dict for ``store-info`` output.

    ``salvaged`` marks segments decoded without a (valid) footer; their
    chain index is rebuilt from the frames, so ``index`` reports
    ``"salvaged"`` coverage and timestamp bounds are unknown — predicate
    pushdown can never prune them, only frame-filter.
    """
    bounds = reader.ts_bounds
    has_bounds = bounds is not None and bounds[0] <= bounds[1]
    return {
        "path": os.path.basename(reader.path),
        "kind": "sealed" if reader.sealed else "spool",
        "records": reader.record_count,
        "chains": len(reader.chains),
        "bytes": reader.size_bytes,
        "dictionary_strings": len(reader.strings),
        "partial": reader.partial,
        "salvaged": reader.partial,
        "dropped_bytes": reader.dropped_bytes,
        "ts_min": bounds[0] if has_bounds else None,
        "ts_max": bounds[1] if has_bounds else None,
        "index": {
            "coverage": "salvaged" if reader.partial else "footer",
            "chains": len(reader.chains),
            "group_ts_bounds": reader.chain_ts is not None,
        },
    }
