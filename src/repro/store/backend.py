"""The pluggable storage-backend seam.

:class:`StorageBackend` is the structural (``Protocol``) contract the
collector, CLI and analyzers program against. Two implementations ship:

- :class:`repro.collector.MonitoringDatabase` — the SQLite default;
- :class:`repro.store.SegmentStore` — the columnar segment store.

:func:`open_store` autodetects which one a path holds: a directory (or a
path ending in the store marker) is a segment store, a file is SQLite.
"""

from __future__ import annotations

import os
from typing import ContextManager, Iterable, Iterator, Protocol, runtime_checkable

from repro.core.records import ProbeRecord, RunMetadata
from repro.store.query import ScanPredicate
from repro.store.store import MARKER_FILE, SegmentStore


@runtime_checkable
class StorageBackend(Protocol):
    """What a probe-record store must provide.

    The ordering contract matters as much as the signatures: every
    implementation must yield ``chains_for_run`` groups ascending by
    chain uuid (UTF-8 byte order) with records sorted by ``event_seq``
    (arrival order breaking ties), and ``all_records`` in arrival order —
    :func:`repro.analysis.reconstruct` output is bit-identical across
    backends because of it.
    """

    path: str

    def create_run(self, meta: RunMetadata) -> None: ...

    def insert_records(self, run_id: str, records: Iterable[ProbeRecord]) -> int: ...

    def bulk_ingest(self) -> ContextManager: ...

    def unique_chain_uuids(self, run_id: str) -> list[str]: ...

    def events_for_chain(self, run_id: str, chain_uuid: str) -> list[ProbeRecord]: ...

    def chains_for_run(
        self,
        run_id: str,
        first_chain: str | None = None,
        last_chain: str | None = None,
        predicate: ScanPredicate | None = None,
    ) -> Iterator[tuple[str, list[ProbeRecord]]]: ...

    def record_count(self, run_id: str) -> int: ...

    def all_records(
        self, run_id: str, predicate: ScanPredicate | None = None
    ) -> Iterator[ProbeRecord]: ...

    def population_stats(
        self, run_id: str, predicate: ScanPredicate | None = None
    ) -> dict[str, int]: ...

    def runs(self) -> list[RunMetadata]: ...

    def close(self) -> None: ...


def detect_backend(path: str) -> str:
    """Classify ``path`` as ``"segment"`` or ``"sqlite"``.

    A directory (existing or marked by a trailing separator) holds a
    segment store; anything else is a SQLite database file. ``:memory:``
    is SQLite by definition.
    """
    if path == ":memory:":
        return "sqlite"
    if os.path.isdir(path) or os.path.basename(path) == MARKER_FILE:
        return "segment"
    if not os.path.exists(path) and path.endswith(os.sep):
        return "segment"
    return "sqlite"


def open_store(path: str, backend: str | None = None, **kwargs) -> StorageBackend:
    """Open (or create) the storage backend at ``path``.

    ``backend`` forces ``"sqlite"`` or ``"segment"``; ``None``
    autodetects via :func:`detect_backend`. Extra keyword arguments pass
    through to the backend constructor.
    """
    if backend is None:
        backend = detect_backend(path)
    if backend == "segment":
        if os.path.basename(path) == MARKER_FILE:
            path = os.path.dirname(path) or "."
        return SegmentStore(path, **kwargs)
    if backend == "sqlite":
        from repro.collector.database import MonitoringDatabase

        return MonitoringDatabase(path, **kwargs)
    raise ValueError(f"unknown storage backend {backend!r}")
