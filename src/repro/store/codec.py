"""Binary probe-record frame codec for the segment store.

One :class:`~repro.core.records.ProbeRecord` becomes one *frame*:

- a fused fixed head packed by a single precompiled :class:`struct.Struct`
  (the same precompiled-codec discipline as :mod:`repro.orb.fastcdr`):
  dictionary ids for the eight interned strings, raw integers for
  ``event_seq``/``pid``/``thread_id``, and three packed bytes for the
  event number, call kind / collocation / domain / frame-width flags and
  the field-presence bitmap;
- a timestamp tail holding the four probe clock readings
  **delta-encoded**: ``wall_start`` and ``cpu_start`` are stored relative
  to the previous frame's values (per the encoder's delta policy),
  ``wall_end``/``cpu_end`` relative to their own start reading. Deltas
  are small, so the tail is four ``i32`` words for most frames and only
  widens to ``i64`` (the ``_MISC_WIDE`` flag) when a delta overflows —
  chiefly the raw re-anchor frames;
- an optional JSON payload for captured application semantics.

Interned strings are *dictionary-encoded*: each segment carries one
string table, ids are assigned in first-appearance order, and new
entries are spooled into dict-delta blocks ahead of the frames that
reference them (so a truncated segment can still be decoded
front-to-back without its footer).

The field layout is derived from — and import-time-checked against —
the single 23-field schema table :data:`repro.core.records.RECORD_SCHEMA`
shared with the SQLite row codecs.
"""

from __future__ import annotations

import struct

from repro.core.events import CallKind, Domain, TracingEvent
from repro.core.records import RECORD_SCHEMA

#: Fields the frame head covers, in the order they are packed. The
#: timestamp tail covers the four clock readings; ``semantics`` rides as
#: the variable-length payload after the tail.
_HEAD_FIELDS = (
    "chain_uuid", "event_seq", "event",
    # misc byte: call_kind, collocated, domain, (frame width flag)
    "call_kind", "collocated", "domain",
    # presence byte tracks which optional fields are materialized
    "interface", "operation", "object_id", "component", "process",
    "pid", "host", "thread_id", "processor_type", "platform",
    "child_chain_uuid", "semantics",
)
_TAIL_FIELDS = ("wall_start", "wall_end", "cpu_start", "cpu_end")

if set(_HEAD_FIELDS) | set(_TAIL_FIELDS) != {f.name for f in RECORD_SCHEMA}:
    raise AssertionError(
        "segment frame codec is out of sync with RECORD_SCHEMA: "
        f"{sorted(set(_HEAD_FIELDS) | set(_TAIL_FIELDS))} != "
        f"{sorted(f.name for f in RECORD_SCHEMA)}"
    )

# Head layout (little-endian):
#   I  chain_uuid dict id          B  event (probe number 1..4)
#   q  event_seq                   B  misc flag byte
#                                  B  presence byte
#   I  interface id    I operation id    I object_id id   I component id
#   I  process id      q pid             I host id        q thread_id
#   I  processor_type id              I  platform id
#   I  child_chain_uuid id          I  semantics byte length
# followed by the four-word timestamp tail (i32 narrow / i64 wide).
FRAME_NARROW = struct.Struct("<IqBBBIIIIIqIqIIIIiiii")
FRAME_WIDE = struct.Struct("<IqBBBIIIIIqIqIIIIqqqq")
HEAD_SIZE = FRAME_NARROW.size - 16  # head bytes shared by both widths

_MISC_ONEWAY = 1
_MISC_COLLOCATED = 2
_MISC_DOMAIN_SHIFT = 2  # two bits
_MISC_WIDE = 16

_PRES_WALL_START = 1
_PRES_WALL_END = 2
_PRES_CPU_START = 4
_PRES_CPU_END = 8
_PRES_CHILD = 16
_PRES_SEMANTICS = 32

_I32_MIN = -(1 << 31)
_I32_MAX = (1 << 31) - 1

#: Enum round-trips by position; tuple indexing beats Enum constructors
#: (and dict lookups) on the million-record decode path.
EVENT_BY_NUM = (None,) + tuple(TracingEvent)
DOMAIN_BY_NUM = (Domain.CORBA, Domain.COM, Domain.J2EE, Domain.LOCAL)
DOMAIN_NUM = {domain: num for num, domain in enumerate(DOMAIN_BY_NUM)}

SYNC = CallKind.SYNC
ONEWAY = CallKind.ONEWAY
