"""Predicate-pushdown scanning for the record stores.

A :class:`ScanPredicate` narrows a scan along three axes the paper's
Section-3 analyses actually ask about:

- a **time range** over the record's anchor timestamp (``wall_start``,
  falling back to ``wall_end`` when the probe only captured the end
  reading) — "what happened between t0 and t1";
- **interface / operation sets** — "only calls to ``Printer::print``";
- a **chain-uuid prefix** — "only the chains of this tenant / shard".

The predicate is *pushed down* into the segment store so filtering
happens before decode, at three pruning levels:

1. **segment level** — the footer's timestamp bounds skip segments whose
   time range cannot overlap; the per-segment string dictionary proves
   an interface/operation was never interned (so no frame can match);
   the footer chain index proves no chain carries the prefix;
2. **chain-group level** (sealed segments) — the chain index plus the
   per-group timestamp bounds skip whole byte ranges without touching
   them;
3. **frame level** — inside the fused decode loop, string predicates are
   resolved to this segment's interned integer ids once
   (:func:`segment_filter`), so the per-frame test is set membership on
   ints and no :class:`~repro.core.records.ProbeRecord` is built for a
   non-matching frame.

The SQLite backend accepts the same predicate and compiles it to indexed
``WHERE`` clauses; both backends return bit-identical results for any
predicate (the cross-backend identity suite asserts it), because the
record-level semantics live in exactly one place:
:meth:`ScanPredicate.matches`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import StoreError

if TYPE_CHECKING:
    from repro.core.records import ProbeRecord
    from repro.store.segment import SegmentReader


def record_anchor(wall_start: int | None, wall_end: int | None) -> int | None:
    """The timestamp a time-range predicate tests a record against.

    ``wall_start`` when the probe captured it, else ``wall_end``; records
    with neither never match a time-range predicate. Both backends and
    the segment footer bounds use this one definition.
    """
    return wall_start if wall_start is not None else wall_end


@dataclass(frozen=True)
class ScanPredicate:
    """A conjunction of record filters a scan can push below decode.

    All parts are optional and AND-ed; an all-``None`` predicate matches
    every record. ``ts_min``/``ts_max`` are inclusive nanosecond bounds
    on the record anchor timestamp (see :func:`record_anchor`).
    """

    ts_min: int | None = None
    ts_max: int | None = None
    interfaces: frozenset[str] | None = None
    operations: frozenset[str] | None = None
    chain_prefix: str | None = None

    def __post_init__(self):
        # Normalize iterables to frozensets so predicates hash/compare
        # and an empty set is rejected early (it would match nothing
        # silently — almost always a caller bug).
        for name in ("interfaces", "operations"):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, str):
                value = (value,)
            value = frozenset(value)
            if not value:
                raise StoreError(f"predicate {name} must not be an empty set")
            object.__setattr__(self, name, value)
        if (
            self.ts_min is not None
            and self.ts_max is not None
            and self.ts_min > self.ts_max
        ):
            raise StoreError(
                f"predicate time range is empty: ts_min {self.ts_min} >"
                f" ts_max {self.ts_max}"
            )

    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when every part is None — the scan needs no filtering."""
        return (
            self.ts_min is None
            and self.ts_max is None
            and self.interfaces is None
            and self.operations is None
            and self.chain_prefix is None
        )

    @property
    def has_time_range(self) -> bool:
        return self.ts_min is not None or self.ts_max is not None

    def matches(self, record: "ProbeRecord") -> bool:
        """Record-level semantics — the single source of truth.

        Every pushdown level (segment pruning, group pruning, the
        integer-id frame filter, the SQLite WHERE clauses) must accept
        exactly the records this accepts.
        """
        if self.chain_prefix is not None and not record.chain_uuid.startswith(
            self.chain_prefix
        ):
            return False
        if self.interfaces is not None and record.interface not in self.interfaces:
            return False
        if self.operations is not None and record.operation not in self.operations:
            return False
        if self.has_time_range:
            anchor = record_anchor(record.wall_start, record.wall_end)
            if anchor is None:
                return False
            if self.ts_min is not None and anchor < self.ts_min:
                return False
            if self.ts_max is not None and anchor > self.ts_max:
                return False
        return True

    def matches_chain(self, chain_uuid: str) -> bool:
        return self.chain_prefix is None or chain_uuid.startswith(self.chain_prefix)

    def to_dict(self) -> dict:
        """JSON-friendly form (sorted sets), also the CLI echo format."""
        return {
            "ts_min": self.ts_min,
            "ts_max": self.ts_max,
            "interfaces": sorted(self.interfaces) if self.interfaces else None,
            "operations": sorted(self.operations) if self.operations else None,
            "chain_prefix": self.chain_prefix,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanPredicate":
        return cls(
            ts_min=data.get("ts_min"),
            ts_max=data.get("ts_max"),
            interfaces=(
                frozenset(data["interfaces"]) if data.get("interfaces") else None
            ),
            operations=(
                frozenset(data["operations"]) if data.get("operations") else None
            ),
            chain_prefix=data.get("chain_prefix"),
        )


@dataclass
class ScanStats:
    """Where a predicated scan spent (and saved) its work.

    ``frames_decoded`` counts frames the decode loop actually walked —
    the honest pushdown figure: a predicated scan must never decode more
    frames than the unpredicated scan of the same data (the CI gate).
    """

    segments: int = 0
    segments_pruned: int = 0
    groups: int = 0
    groups_pruned: int = 0
    frames_decoded: int = 0
    records_matched: int = 0

    def to_dict(self) -> dict:
        return {
            "segments": self.segments,
            "segments_pruned": self.segments_pruned,
            "groups": self.groups,
            "groups_pruned": self.groups_pruned,
            "frames_decoded": self.frames_decoded,
            "records_matched": self.records_matched,
        }


class SegmentFilter:
    """A :class:`ScanPredicate` resolved against one segment's dictionary.

    String predicates become integer id sets (``None`` = that axis needs
    no per-frame test), so the decode loop filters on ints only. Built
    by :func:`segment_filter`; consumed by the ``*_filtered`` decode
    methods of :class:`~repro.store.segment.SegmentReader`.
    """

    __slots__ = ("cids", "ifc_ids", "op_ids", "ts_lo", "ts_hi")

    def __init__(self, cids, ifc_ids, op_ids, ts_lo, ts_hi):
        self.cids = cids
        self.ifc_ids = ifc_ids
        self.op_ids = op_ids
        self.ts_lo = ts_lo
        self.ts_hi = ts_hi

    @property
    def is_pass(self) -> bool:
        """True when no per-frame test remains (decode everything)."""
        return (
            self.cids is None
            and self.ifc_ids is None
            and self.op_ids is None
            and self.ts_lo is None
            and self.ts_hi is None
        )

    def without_chain_test(self) -> "SegmentFilter":
        """The same filter minus the chain-id test (for decoding one
        already-matched sealed chain group, where cid is constant)."""
        if self.cids is None:
            return self
        return SegmentFilter(None, self.ifc_ids, self.op_ids, self.ts_lo, self.ts_hi)


def bounds_overlap(
    bounds: tuple[int, int] | None, lo: int | None, hi: int | None
) -> bool:
    """Can any anchor inside ``bounds`` fall within ``[lo, hi]``?

    ``bounds`` is a footer (min, max) pair over anchor timestamps;
    ``None`` means unknown (salvaged or pre-extension segment — never
    prune), and an inverted pair (min > max) means *no frame carries an
    anchor* — nothing can match a time-range predicate, so prune.
    """
    if bounds is None:
        return True
    bmin, bmax = bounds
    if bmin > bmax:
        return False
    if lo is not None and bmax < lo:
        return False
    if hi is not None and bmin > hi:
        return False
    return True


def segment_filter(
    reader: "SegmentReader", predicate: ScanPredicate
) -> SegmentFilter | None:
    """Resolve ``predicate`` against one segment; ``None`` prunes it.

    Segment-level pruning uses only footer metadata — the string
    dictionary, the chain index, and the timestamp-bounds extension —
    so a pruned segment costs zero frame decodes.
    """
    ts_lo = ts_hi = None
    if predicate.has_time_range:
        ts_lo, ts_hi = predicate.ts_min, predicate.ts_max
        if not bounds_overlap(reader.ts_bounds, ts_lo, ts_hi):
            return None

    ifc_ids = op_ids = None
    strings = reader.strings
    if predicate.interfaces is not None:
        want = predicate.interfaces
        ifc_ids = {i for i, s in enumerate(strings) if s in want}
        if not ifc_ids:
            return None
    if predicate.operations is not None:
        want = predicate.operations
        op_ids = {i for i, s in enumerate(strings) if s in want}
        if not op_ids:
            return None

    cids = None
    if predicate.chain_prefix is not None:
        prefix = predicate.chain_prefix
        cids = {cid for cid, _c, _o, _r in reader.chains
                if strings[cid].startswith(prefix)}
        if not cids:
            return None
        if len(cids) == len(reader.chains):
            cids = None  # every chain matches: no per-frame test needed

    return SegmentFilter(cids, ifc_ids, op_ids, ts_lo, ts_hi)


def fold_population_stats(records: Iterable["ProbeRecord"]) -> dict[str, int]:
    """Figure-5 population statistics folded from a record stream.

    The record-level definition both backends' ``population_stats`` must
    agree with: ``calls`` counts STUB_START events, the ``unique_*``
    figures count distinct values using the same string identities the
    SQLite aggregation uses (``interface || '::' || operation``,
    ``process || '/' || thread_id``). The segment store routes its
    *predicated* stats through this fold (over the pushed-down scan);
    SQLite compiles the identical semantics to WHERE clauses.
    """
    calls = 0
    methods: set[str] = set()
    interfaces: set[str] = set()
    components: set[str] = set()
    objects: set[str] = set()
    processes: set[str] = set()
    threads: set[str] = set()
    chains: set[str] = set()
    for record in records:
        if record.event == 1:
            calls += 1
        methods.add(f"{record.interface}::{record.operation}")
        interfaces.add(record.interface)
        components.add(record.component)
        objects.add(record.object_id)
        processes.add(record.process)
        threads.add(f"{record.process}/{record.thread_id}")
        chains.add(record.chain_uuid)
    return {
        "calls": calls,
        "unique_methods": len(methods),
        "unique_interfaces": len(interfaces),
        "unique_components": len(components),
        "unique_objects": len(objects),
        "processes": len(processes),
        "threads": len(threads),
        "chains": len(chains),
    }


# ----------------------------------------------------------------------
# Query execution over a StorageBackend (the CLI `repro query` engine)


def _nearest_rank(sorted_values: list[int], q: float) -> int:
    """Deterministic nearest-rank percentile of a non-empty sorted list."""
    index = max(0, min(len(sorted_values) - 1,
                       int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


def run_query(
    backend,
    run_id: str,
    predicate: ScanPredicate | None = None,
    stats: ScanStats | None = None,
) -> dict:
    """Execute a predicated scan and aggregate per-operation latency.

    Works against any :class:`~repro.store.StorageBackend`; the segment
    store additionally fills ``stats`` with its pruning counters. The
    result is JSON-ready and deterministic for a given store.

    Per-operation ``wall_ns`` aggregates the record's own probe interval
    (``wall_end - wall_start``) — the store-level latency figure that
    needs no chain reconstruction.
    """
    predicate = predicate or ScanPredicate()
    durations: dict[str, list[int]] = {}
    counts: dict[str, int] = {}
    chains: set[str] = set()
    records = 0
    kwargs = {"predicate": predicate}
    if stats is not None:
        kwargs["stats"] = stats
    stats_filled = stats is not None
    try:
        groups = backend.chains_for_run(run_id, **kwargs)
    except TypeError:
        # Backend without stats plumbing (SQLite): predicate only, and
        # the result carries no (all-zero) pruning counters.
        groups = backend.chains_for_run(run_id, predicate=predicate)
        stats_filled = False
    for chain_uuid, group in groups:
        chains.add(chain_uuid)
        for record in group:
            records += 1
            key = f"{record.interface}::{record.operation}"
            counts[key] = counts.get(key, 0) + 1
            if record.wall_start is not None and record.wall_end is not None:
                durations.setdefault(key, []).append(
                    record.wall_end - record.wall_start
                )
    operations = {}
    for key in sorted(counts):
        entry: dict = {"records": counts[key]}
        values = durations.get(key)
        if values:
            values.sort()
            entry["wall_ns"] = {
                "count": len(values),
                "min": values[0],
                "max": values[-1],
                "mean": round(sum(values) / len(values), 1),
                "p50": _nearest_rank(values, 0.50),
                "p95": _nearest_rank(values, 0.95),
                "p99": _nearest_rank(values, 0.99),
            }
        operations[key] = entry
    result = {
        "run_id": run_id,
        "predicate": predicate.to_dict(),
        "records": records,
        "chains": len(chains),
        "operations": operations,
    }
    if stats_filled:
        result["scan"] = stats.to_dict()
    return result
