"""The columnar segment store: a log-structured storage backend.

A store is a directory::

    <root>/repro-store.json          marker + format/schema version
    <root>/runs/<run_id>/meta.json   RunMetadata (+ schema_version)
    <root>/runs/<run_id>/NNNNNN.spool.seg    drain increments
    <root>/runs/<run_id>/NNNNNN.sealed.seg   compacted, chain-sorted

The collector drain path appends *spool* segments (one per collection
transaction); *background compaction* merges them into one *sealed*
segment whose frames are grouped by chain and sorted — after which
``chains_for_run`` is a grouped zero-copy scan over the ``mmap``ed file
with no SQL and no sort step, and analyzer shards read disjoint byte
ranges.

Ordering contract (kept bit-identical to the SQLite backend so the two
are interchangeable under ``reconstruct()``):

- ``chains_for_run`` yields chains ascending by uuid (UTF-8 byte order,
  matching SQLite's BINARY collation), each chain's records sorted by
  ``event_seq`` with arrival order breaking ties;
- ``all_records`` yields a run's records in arrival (insert) order,
  which sealed segments preserve via per-record arrival ranks.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from contextlib import contextmanager
from heapq import merge as _heapq_merge
from typing import Iterable, Iterator

from repro.core.records import SCHEMA_VERSION, ProbeRecord, RunMetadata
from repro.errors import StoreError
from repro.store.query import (
    ScanPredicate,
    ScanStats,
    bounds_overlap,
    fold_population_stats,
    segment_filter,
)
from repro.store.segment import (
    KIND_SEALED,
    KIND_SPOOL,
    SegmentReader,
    SegmentWriter,
    segment_info,
)

MARKER_FILE = "repro-store.json"
_RUNS_DIR = "runs"

logger = logging.getLogger(__name__)


def _uuid_key(uuid: str) -> bytes:
    """Sort key matching SQLite's BINARY collation (UTF-8 byte order)."""
    return uuid.encode("utf-8", "surrogatepass")


class _Run:
    """In-memory state for one run directory."""

    __slots__ = (
        "run_id", "path", "lock", "readers", "writer", "next_seg",
        "compact_error",
    )

    def __init__(self, run_id: str, path: str):
        self.run_id = run_id
        self.path = path
        self.lock = threading.RLock()
        self.readers: list[SegmentReader] = []
        self.writer: SegmentWriter | None = None
        self.next_seg = 1
        #: last background-compaction failure, cleared on the next success.
        self.compact_error: str | None = None


class SegmentStore:
    """Log-structured, append-only storage backend for probe records.

    Drop-in for :class:`repro.collector.MonitoringDatabase` behind the
    :class:`repro.store.StorageBackend` protocol. ``auto_compact``
    (number of segments that triggers background compaction; 0 disables)
    keeps read amplification bounded without blocking the drain path.
    """

    def __init__(
        self,
        path: str,
        auto_compact: int = 8,
        compact_in_background: bool = True,
        max_compactors: int = 2,
    ):
        if max_compactors < 1:
            raise StoreError("max_compactors must be >= 1")
        self.path = path
        self.auto_compact = auto_compact
        self.compact_in_background = compact_in_background
        self.max_compactors = max_compactors
        self._lock = threading.RLock()
        self._runs: dict[str, _Run] = {}
        self._bulk_depth = 0
        # Bounded compactor pool: disjoint runs compact concurrently
        # (compact() serializes per run via run.lock), but the pool caps
        # how many merge passes contend with ingest for CPU/disk.
        self._compactor_pool = None
        self._compact_pending: set[str] = set()
        self._compact_running = 0
        self._closed = False
        os.makedirs(os.path.join(path, _RUNS_DIR), exist_ok=True)
        marker = os.path.join(path, MARKER_FILE)
        if os.path.exists(marker):
            with open(marker) as handle:
                meta = json.load(handle)
            if meta.get("schema_version") != SCHEMA_VERSION:
                raise StoreError(
                    f"store {path} has record schema "
                    f"v{meta.get('schema_version')}, this build uses "
                    f"v{SCHEMA_VERSION}"
                )
        else:
            with open(marker, "w") as handle:
                json.dump(
                    {"format": "repro-segment-store", "version": 1,
                     "schema_version": SCHEMA_VERSION},
                    handle,
                )
        self._discover()

    # ------------------------------------------------------------------
    # Run/segment discovery

    def _discover(self) -> None:
        runs_dir = os.path.join(self.path, _RUNS_DIR)
        for run_id in sorted(os.listdir(runs_dir)):
            run_path = os.path.join(runs_dir, run_id)
            if not os.path.isdir(run_path):
                continue
            run = _Run(run_id, run_path)
            numbers = [0]
            for name in sorted(os.listdir(run_path)):
                if not name.endswith(".seg") or name.startswith(".tmp"):
                    continue
                run.readers.append(SegmentReader(os.path.join(run_path, name)))
                try:
                    numbers.append(int(name.split(".", 1)[0]))
                except ValueError:
                    pass
            run.readers.sort(key=lambda r: r.arrival_base)
            run.next_seg = max(numbers) + 1
            self._runs[run_id] = run

    def _run(self, run_id: str, create: bool = False) -> _Run:
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                if not create:
                    raise StoreError(f"unknown run {run_id!r} in store {self.path}")
                if os.sep in run_id or run_id in (".", ".."):
                    raise StoreError(f"run id {run_id!r} is not filesystem-safe")
                run = _Run(run_id, os.path.join(self.path, _RUNS_DIR, run_id))
                os.makedirs(run.path, exist_ok=True)
                self._runs[run_id] = run
            return run

    def _segments(self, run: _Run) -> list[SegmentReader]:
        """Snapshot of the run's sealed+spool readers, arrival order."""
        with run.lock:
            return list(run.readers)

    # ------------------------------------------------------------------
    # Ingest

    def create_run(self, meta: RunMetadata) -> None:
        run = self._run(meta.run_id, create=True)
        with run.lock:
            with open(os.path.join(run.path, "meta.json"), "w") as handle:
                json.dump(
                    {
                        "run_id": meta.run_id,
                        "description": meta.description,
                        "monitor_mode": meta.monitor_mode,
                        "extra": meta.extra,
                        "schema_version": SCHEMA_VERSION,
                    },
                    handle,
                )

    def insert_records(self, run_id: str, records: Iterable[ProbeRecord]) -> int:
        """Append records to the run's open spool segment.

        Outside :meth:`bulk_ingest` every call seals its own segment
        (the records become immediately visible); inside, one segment
        spans the whole collection transaction.
        """
        run = self._run(run_id, create=True)
        # Snapshot the bulk depth under the store lock (bulk_ingest
        # mutates it there) *before* taking run.lock — the reverse
        # nesting would invite a lock-order inversion with close().
        with self._lock:
            in_bulk = self._bulk_depth > 0
        with run.lock:
            writer = run.writer
            if writer is None:
                writer = run.writer = self._open_spool(run)
            written = writer.append(records)
            if not in_bulk:
                self._seal(run)
        return written

    @contextmanager
    def bulk_ingest(self):
        """One collection = one spool segment per run touched."""
        with self._lock:
            self._bulk_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._bulk_depth -= 1
                done = self._bulk_depth == 0
            if done:
                for run in list(self._runs.values()):
                    with run.lock:
                        if run.writer is not None:
                            self._seal(run)

    def _open_spool(self, run: _Run) -> SegmentWriter:
        # Caller holds run.lock.
        base = sum(reader.record_count for reader in run.readers)
        path = os.path.join(run.path, f"{run.next_seg:06d}.spool.seg")
        run.next_seg += 1
        return SegmentWriter(path, kind=KIND_SPOOL, arrival_base=base)

    def _seal(self, run: _Run) -> None:
        # Caller holds run.lock.
        writer, run.writer = run.writer, None
        if writer is None:
            return
        if writer.record_count == 0:
            writer.abort()
            return
        writer.seal()
        run.readers.append(SegmentReader(writer.path))
        run.readers.sort(key=lambda r: r.arrival_base)
        if self.auto_compact and len(run.readers) >= self.auto_compact:
            self._schedule_compaction(run.run_id)

    # ------------------------------------------------------------------
    # Compaction

    def _schedule_compaction(self, run_id: str) -> None:
        if not self.compact_in_background:
            self.compact(run_id)
            return
        with self._lock:
            if self._closed or run_id in self._compact_pending:
                return  # already queued: one merge will cover the new spools
            self._compact_pending.add(run_id)
            if self._compactor_pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._compactor_pool = ThreadPoolExecutor(
                    max_workers=self.max_compactors,
                    thread_name_prefix="repro-store-compact",
                )
            self._compactor_pool.submit(self._compact_quietly, run_id)

    def _compact_quietly(self, run_id: str) -> None:
        with self._lock:
            # Un-queue before merging: spools landing while we merge may
            # legitimately re-schedule this run for another pass.
            self._compact_pending.discard(run_id)
            self._compact_running += 1
        try:
            try:
                self.compact(run_id)
            except Exception as exc:
                # Background compaction must never take down the host
                # process; the spool segments stay readable as they are.
                # But a failure must not be invisible either — repeated
                # ones quietly lose the sharded-scan fast path.
                logger.exception("background compaction of run %r failed", run_id)
                try:
                    run = self._run(run_id)
                except StoreError:
                    return
                with run.lock:
                    run.compact_error = f"{type(exc).__name__}: {exc}"
        finally:
            with self._lock:
                self._compact_running -= 1

    def compact(self, run_id: str) -> bool:
        """Merge the run's segments into one sorted sealed segment.

        Returns True if a new sealed segment was produced. Readers that
        started scanning before the swap keep their mmaps (POSIX unlink
        semantics); new scans see the sealed segment only.
        """
        run = self._run(run_id)
        with run.lock:
            sources = list(run.readers)
            if run.writer is not None or not sources:
                return False  # mid-transaction or nothing to do
            if len(sources) == 1 and sources[0].sealed and not sources[0].partial:
                return False
            seg_number = run.next_seg
            run.next_seg += 1
        # Merge outside the lock: sources are immutable once sealed.
        groups: dict[str, list] = {}
        for reader in sources:
            ranked: list = []
            reader.load_ranked(ranked)
            for rank, record in ranked:
                groups.setdefault(record.chain_uuid, []).append((rank, record))
        tmp_path = os.path.join(run.path, f".tmp-{seg_number:06d}.sealed.seg")
        writer = SegmentWriter(tmp_path, kind=KIND_SEALED)
        try:
            for uuid in sorted(groups, key=_uuid_key):
                entries = groups[uuid]
                entries.sort(key=lambda e: e[1].event_seq)  # stable: rank order kept
                writer.start_group()
                writer.append(
                    [record for _rank, record in entries],
                    ranks=[rank for rank, _record in entries],
                )
            writer.seal()
        except BaseException:
            writer.abort()
            raise
        final_path = os.path.join(run.path, f"{seg_number:06d}.sealed.seg")
        with run.lock:
            if run.readers != sources or run.writer is not None:
                # A drain landed while we merged; merging again later is
                # cheaper than reasoning about a partial swap.
                os.unlink(tmp_path)
                return False
            os.rename(tmp_path, final_path)
            run.readers = [SegmentReader(final_path)]
            run.compact_error = None
            for reader in sources:
                # Unlink only — do NOT close: scans that snapshotted the
                # old readers may still be decoding from their mmaps. The
                # unlinked file stays readable until the last reference
                # drops (POSIX semantics), and the mmap is released when
                # the final scan lets go of the reader object.
                try:
                    os.unlink(reader.path)
                except OSError:
                    pass
        return True

    def compact_all(self, workers: int | None = None) -> dict[str, bool]:
        """Compact every run, ``workers`` runs at a time (disjoint runs
        merge independently). Returns ``{run_id: produced_new_segment}``
        in sorted run order; the first failure propagates."""
        from concurrent.futures import ThreadPoolExecutor

        with self._lock:
            run_ids = sorted(self._runs, key=_uuid_key)
        if not run_ids:
            return {}
        workers = max(1, min(workers or self.max_compactors, len(run_ids)))
        if workers == 1:
            return {run_id: self.compact(run_id) for run_id in run_ids}
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-store-compact-all"
        ) as pool:
            futures = {
                run_id: pool.submit(self.compact, run_id) for run_id in run_ids
            }
            return {run_id: futures[run_id].result() for run_id in run_ids}

    def drop_segments(self, run_id: str) -> int:
        """Delete a run's segment files (the catalog's downsampling step).

        The run directory and ``meta.json`` survive — only record data
        goes; callers are expected to have written a summary first.
        Refuses mid-transaction. Returns the number of records dropped.
        """
        run = self._run(run_id)
        with run.lock:
            if run.writer is not None:
                raise StoreError(
                    f"run {run_id!r} has an open ingest transaction;"
                    " cannot drop its segments"
                )
            readers, run.readers = run.readers, []
            dropped = sum(r.record_count for r in readers)
            for reader in readers:
                # Unlink only (scans in flight keep their mmaps); the
                # readers are closed when the last scan releases them.
                try:
                    os.unlink(reader.path)
                except OSError:
                    pass
        return dropped

    def prepare_sharded_scan(self, run_id: str) -> None:
        """Hook for the parallel analyzer: make shard scans disjoint
        byte-range reads by compacting synchronously first."""
        self.compact(run_id)

    def compaction_state(self, run_id: str) -> dict:
        run = self._run(run_id)
        with self._lock:
            busy = bool(self._compact_pending) or self._compact_running > 0
        with run.lock:
            readers = list(run.readers)
            last_error = run.compact_error
        spool = sum(1 for r in readers if not r.sealed)
        return {
            "segments": len(readers),
            "spool_segments": spool,
            "sealed_segments": len(readers) - spool,
            "compacted": spool == 0 and len(readers) <= 1,
            "compaction_running": busy,
            "last_error": last_error,
        }

    # ------------------------------------------------------------------
    # The two standard analyzer queries

    def unique_chain_uuids(self, run_id: str) -> list[str]:
        """Every Function UUID ever created during the run (query 1) —
        straight out of the segment footers, no body scan."""
        uuids: set[str] = set()
        for reader in self._segments(self._run(run_id)):
            strings = reader.strings
            uuids.update(strings[cid] for cid, _c, _o, _r in reader.chains)
        return sorted(uuids, key=_uuid_key)

    def events_for_chain(self, run_id: str, chain_uuid: str) -> list[ProbeRecord]:
        """All events of one chain, ascending by event number (query 2)."""
        for uuid, records in self.chains_for_run(
            run_id, first_chain=chain_uuid, last_chain=chain_uuid
        ):
            return records
        return []

    def chains_for_run(
        self,
        run_id: str,
        first_chain: str | None = None,
        last_chain: str | None = None,
        predicate: ScanPredicate | None = None,
        stats: ScanStats | None = None,
    ) -> Iterator[tuple[str, list[ProbeRecord]]]:
        """Stream ``(chain_uuid, sorted records)`` groups.

        On a compacted run this is the zero-copy fast path: one sealed
        segment, chain groups already sorted and byte-contiguous, so each
        group is decoded straight out of the ``mmap`` at its footer
        offset — a bounded scan reads only its shard's byte range.
        Uncompacted runs take the merged path: every segment is decoded
        once and the groups are merged in memory (arrival order is
        preserved segment-by-segment, so the ``event_seq``-stable sort
        reproduces SQLite's ``event_seq, id`` order exactly).

        ``predicate`` pushes a :class:`~repro.store.query.ScanPredicate`
        below decode: footer metadata prunes whole segments and (sealed)
        chain groups, and surviving segments frame-filter on interned
        integer ids — chains with no matching record are not yielded,
        matching the SQLite backend bit-for-bit. ``stats`` (a
        :class:`~repro.store.query.ScanStats`) collects the pruning
        counters.
        """
        if predicate is not None and predicate.is_empty:
            predicate = None
        readers = self._segments(self._run(run_id))
        if not readers:
            return
        lo = _uuid_key(first_chain) if first_chain is not None else None
        hi = _uuid_key(last_chain) if last_chain is not None else None

        if len(readers) == 1 and readers[0].sealed and not readers[0].partial:
            reader = readers[0]
            if stats is not None:
                stats.segments += 1
            flt = None
            if predicate is not None:
                flt = segment_filter(reader, predicate)
                if flt is None:
                    if stats is not None:
                        stats.segments_pruned += 1
                    return
            group_flt = flt.without_chain_test() if flt is not None else None
            timed = predicate is not None and predicate.has_time_range
            chain_ts = reader.chain_ts
            strings = reader.strings
            for gi, (cid, count, start_off, _ranks) in enumerate(reader.chains):
                uuid = strings[cid]
                key = _uuid_key(uuid)
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    # Groups are stored sorted; nothing further matches.
                    break
                if flt is None:
                    if stats is not None:
                        stats.frames_decoded += count
                        stats.records_matched += count
                    yield uuid, reader.decode_group(start_off, count)
                    continue
                if stats is not None:
                    stats.groups += 1
                if flt.cids is not None and cid not in flt.cids:
                    if stats is not None:
                        stats.groups_pruned += 1
                    continue
                if timed and chain_ts is not None and not bounds_overlap(
                    chain_ts[gi], flt.ts_lo, flt.ts_hi
                ):
                    if stats is not None:
                        stats.groups_pruned += 1
                    continue
                if group_flt.is_pass:
                    group = reader.decode_group(start_off, count)
                else:
                    group = reader.decode_group_filtered(
                        start_off, count, group_flt
                    )
                if stats is not None:
                    stats.frames_decoded += count
                    stats.records_matched += len(group)
                if group:
                    yield uuid, group
            return

        from collections import defaultdict

        groups: dict[str, list[ProbeRecord]] = defaultdict(list)
        for reader in readers:
            if stats is not None:
                stats.segments += 1
            if predicate is None:
                reader.load_groups(groups)
                if stats is not None:
                    stats.frames_decoded += reader.record_count
                    stats.records_matched += reader.record_count
                continue
            flt = segment_filter(reader, predicate)
            if flt is None:
                if stats is not None:
                    stats.segments_pruned += 1
                continue
            if flt.is_pass:
                reader.load_groups(groups)
                scanned = matched = reader.record_count
            else:
                scanned, matched = reader.load_groups_filtered(groups, flt)
            if stats is not None:
                stats.frames_decoded += scanned
                stats.records_matched += matched
        for uuid in sorted(groups, key=_uuid_key):
            key = _uuid_key(uuid)
            if lo is not None and key < lo:
                continue
            if hi is not None and key > hi:
                break
            records = groups[uuid]
            records.sort(key=_event_seq_key)  # stable → arrival breaks ties
            yield uuid, records

    # ------------------------------------------------------------------
    # Supporting queries

    def record_count(self, run_id: str) -> int:
        return sum(r.record_count for r in self._segments(self._run(run_id)))

    def all_records(
        self,
        run_id: str,
        predicate: ScanPredicate | None = None,
        stats: ScanStats | None = None,
    ) -> Iterator[ProbeRecord]:
        """Stream a run's records in arrival (insert) order.

        With a ``predicate``, yields the matching subsequence of the
        unpredicated order: arrival ranks are positional over all frames,
        so filtering can neither reorder nor double-count records.
        """
        if predicate is not None and predicate.is_empty:
            predicate = None
        readers = self._segments(self._run(run_id))
        streams = []
        for reader in readers:
            if stats is not None:
                stats.segments += 1
            ranked: list = []
            if predicate is None:
                reader.load_ranked(ranked)
                if stats is not None:
                    stats.frames_decoded += reader.record_count
                    stats.records_matched += reader.record_count
            else:
                flt = segment_filter(reader, predicate)
                if flt is None:
                    if stats is not None:
                        stats.segments_pruned += 1
                    continue
                if flt.is_pass:
                    reader.load_ranked(ranked)
                    if stats is not None:
                        stats.frames_decoded += reader.record_count
                        stats.records_matched += reader.record_count
                else:
                    scanned, matched = reader.load_ranked_filtered(ranked, flt)
                    if stats is not None:
                        stats.frames_decoded += scanned
                        stats.records_matched += matched
            ranked.sort(key=_rank_key)
            streams.append(ranked)
        if len(streams) == 1:
            for _rank, record in streams[0]:
                yield record
            return
        for _rank, record in _heapq_merge(*streams, key=_rank_key):
            yield record

    def population_stats(
        self, run_id: str, predicate: ScanPredicate | None = None
    ) -> dict[str, int]:
        """Unique methods/interfaces/components/processes — Figure-5 stats.

        Mirrors the SQLite backend's semantics exactly, including the
        string-concatenation identity of ``interface || '::' ||
        operation`` and ``process || '/' || thread_id``. A predicate
        narrows the population via the pushed-down filtered scan; the
        unpredicated path keeps the lean no-record stat scan.
        """
        if predicate is not None and not predicate.is_empty:
            return fold_population_stats(
                self.all_records(run_id, predicate=predicate)
            )
        state = {
            "calls": 0,
            "methods": set(), "interfaces": set(), "components": set(),
            "objects": set(), "processes": set(), "threads": set(),
            "chains": set(),
        }
        for reader in self._segments(self._run(run_id)):
            reader.stat_scan(state)
        return {
            "calls": state["calls"],
            "unique_methods": len({f"{i}::{o}" for i, o in state["methods"]}),
            "unique_interfaces": len(state["interfaces"]),
            "unique_components": len(state["components"]),
            "unique_objects": len(state["objects"]),
            "processes": len(state["processes"]),
            "threads": len({f"{p}/{t}" for p, t in state["threads"]}),
            "chains": len(state["chains"]),
        }

    def runs(self) -> list[RunMetadata]:
        metas = []
        with self._lock:
            runs = list(self._runs.values())
        for run in runs:
            meta_path = os.path.join(run.path, "meta.json")
            if not os.path.exists(meta_path):
                continue
            with open(meta_path) as handle:
                data = json.load(handle)
            metas.append(
                RunMetadata(
                    run_id=data["run_id"],
                    description=data.get("description", ""),
                    monitor_mode=data.get("monitor_mode", ""),
                    extra=data.get("extra", {}),
                )
            )
        metas.sort(key=lambda m: _uuid_key(m.run_id))
        return metas

    # ------------------------------------------------------------------

    def store_info(self) -> dict:
        """Runs, record counts, segment and dictionary sizes, compaction
        state — the ``repro store-info`` payload."""
        with self._lock:
            runs = list(self._runs.values())
        info_runs = []
        for run in sorted(runs, key=lambda r: _uuid_key(r.run_id)):
            readers = self._segments(run)
            segments = [segment_info(reader) for reader in readers]
            ts_mins = [s["ts_min"] for s in segments if s["ts_min"] is not None]
            ts_maxs = [s["ts_max"] for s in segments if s["ts_max"] is not None]
            info_runs.append({
                "run_id": run.run_id,
                "records": sum(r.record_count for r in readers),
                "ts_min": min(ts_mins) if ts_mins else None,
                "ts_max": max(ts_maxs) if ts_maxs else None,
                "chains": len({
                    reader.strings[cid]
                    for reader in readers
                    for cid, _c, _o, _r in reader.chains
                }),
                "segments": segments,
                "bytes": sum(r.size_bytes for r in readers),
                "dictionary_strings": sum(len(r.strings) for r in readers),
                "partial_segments": sum(1 for r in readers if r.partial),
                "compaction": self.compaction_state(run.run_id),
            })
        return {
            "backend": "segment",
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "runs": info_runs,
        }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._compactor_pool = self._compactor_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._lock:
            runs = list(self._runs.values())
        # Take run locks without holding the store lock: sealing paths
        # nest run.lock -> self._lock, so nesting the other way here
        # would deadlock against a concurrent drain.
        for run in runs:
            with run.lock:
                if run.writer is not None:
                    self._seal_for_close(run)
                for reader in run.readers:
                    reader.close()
                run.readers = []

    def _seal_for_close(self, run: _Run) -> None:
        # Close with an open transaction: seal so the data is durable.
        writer, run.writer = run.writer, None
        if writer.record_count:
            writer.seal()
        else:
            writer.abort()


def _event_seq_key(record: ProbeRecord) -> int:
    return record.event_seq


def _rank_key(pair) -> int:
    return pair[0]
