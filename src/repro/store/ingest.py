"""Remote spool ingest: shipped ``.seg`` spools into the central store.

The coordinator side of the cluster's shipping protocol
(:mod:`repro.cluster.shipping`). Each worker ships its sealed spool
segments as exact file bytes; this module decodes them with the
ordinary :class:`~repro.store.SegmentReader` and re-inserts the records
into the central :class:`~repro.store.backend.StorageBackend` in worker
order, under one run whose merged metadata is what a single
:class:`~repro.collector.LogCollector` pass over the concatenated
process list would have written — that equality is what makes a cluster
run's DSCG/CCSG output bit-identical to the single-process reference.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

from repro.core.records import SCHEMA_VERSION, ProbeRecord, RunMetadata
from repro.errors import StoreError
from repro.store.segment import SegmentReader


@dataclass
class Shipment:
    """One worker's decoded shipment, ready for central re-ingest."""

    run_id: str
    processes: list[str]
    loss: dict
    monitor_mode: str
    record_count: int
    #: Records in the worker's local arrival order.
    records: list[ProbeRecord] = field(default_factory=list)


def receive_shipment(channel, begin: dict, workdir: str | None = None) -> Shipment:
    """Decode one shipment from ``channel`` (after its ``ship-begin``).

    ``begin`` is the already-received ``ship-begin`` message. Segment
    bytes are staged to ``workdir`` (a private temp dir by default) so
    :class:`SegmentReader` can mmap them, then decoded to records in the
    worker's arrival order. Raises :class:`StoreError` on protocol or
    schema mismatch.
    """
    if begin.get("type") != "ship-begin":
        raise StoreError(f"expected ship-begin, got {begin.get('type')!r}")
    if begin.get("schema_version") != SCHEMA_VERSION:
        raise StoreError(
            f"shipment has record schema v{begin.get('schema_version')}, "
            f"this build uses v{SCHEMA_VERSION}"
        )
    shipment = Shipment(
        run_id=str(begin["run_id"]),
        processes=list(begin.get("processes", [])),
        loss=dict(begin.get("loss", {})),
        monitor_mode=str(begin.get("monitor_mode", "")),
        record_count=int(begin.get("record_count", 0)),
    )
    ranked: list[tuple[int, ProbeRecord]] = []
    with tempfile.TemporaryDirectory(dir=workdir) as staging:
        for index in range(int(begin.get("segments", 0))):
            header = channel.recv_json()
            if header.get("type") != "segment":
                raise StoreError(
                    f"expected segment header, got {header.get('type')!r}"
                )
            data = channel.recv()
            if len(data) != int(header.get("bytes", -1)):
                raise StoreError(
                    f"segment {header.get('name')}: expected "
                    f"{header.get('bytes')} bytes, received {len(data)}"
                )
            path = os.path.join(staging, f"{index:06d}.seg")
            with open(path, "wb") as handle:
                handle.write(data)
            reader = SegmentReader(path)
            try:
                reader.load_ranked(ranked)
            finally:
                reader.close()
    end = channel.recv_json()
    if end.get("type") != "ship-end":
        raise StoreError(f"expected ship-end, got {end.get('type')!r}")
    ranked.sort(key=lambda pair: pair[0])
    shipment.records = [record for _rank, record in ranked]
    if len(shipment.records) != shipment.record_count:
        raise StoreError(
            f"shipment {shipment.run_id}: manifest promised "
            f"{shipment.record_count} records, decoded {len(shipment.records)}"
        )
    return shipment


def merge_loss(parts: list[dict]) -> dict:
    """Merge per-worker loss dicts the way one collector pass would."""
    merged = {
        "drain_retries": 0,
        "failed_drains": [],
        "records_dropped_at_probe": 0,
        "records_lost_in_delivery": 0,
        "records_uncollected": 0,
    }
    for part in parts:
        merged["drain_retries"] += int(part.get("drain_retries", 0))
        merged["failed_drains"].extend(part.get("failed_drains", []))
        merged["records_dropped_at_probe"] += int(
            part.get("records_dropped_at_probe", 0)
        )
        merged["records_lost_in_delivery"] += int(
            part.get("records_lost_in_delivery", 0)
        )
        merged["records_uncollected"] += int(part.get("records_uncollected", 0))
    merged["failed_drains"] = sorted(merged["failed_drains"])
    return merged


def merge_monitor_modes(modes: list[str]) -> str:
    """Union of per-worker monitor-mode strings, collector formatting."""
    values: set[str] = set()
    for part in modes:
        values.update(m for m in part.split(",") if m)
    return ",".join(sorted(values))


def ingest_shipments(
    backend,
    run_id: str,
    shipments: list[Shipment],
    description: str = "",
    extra_loss: list[dict] | None = None,
    dead_processes: list[str] | None = None,
) -> int:
    """Write ``shipments`` (in worker order) as one central run.

    ``extra_loss``/``dead_processes`` let the coordinator charge workers
    that died before shipping (kill -9): their process names join the
    run's process list and ``failed_drains``, and their last-reported
    buffer occupancy joins ``records_uncollected`` — so the balance
    ``stored + lost + uncollected == produced`` holds cluster-wide.

    Returns the number of records inserted.
    """
    processes: list[str] = []
    for shipment in shipments:
        processes.extend(shipment.processes)
    processes.extend(dead_processes or [])
    loss = merge_loss(
        [s.loss for s in shipments] + list(extra_loss or [])
    )
    monitor_mode = merge_monitor_modes([s.monitor_mode for s in shipments])
    inserted = 0
    with backend.bulk_ingest():
        backend.create_run(
            RunMetadata(
                run_id=run_id,
                description=description,
                monitor_mode=monitor_mode,
                extra={
                    "processes": processes,
                    "loss": loss,
                    "schema_version": SCHEMA_VERSION,
                },
            )
        )
        for shipment in shipments:
            inserted += backend.insert_records(run_id, shipment.records)
    return inserted
