"""Server-side threading policies.

Section 2.2 argues causality tracing survives every ORB threading
architecture because of two observations:

O1. A physical thread is dedicated to an incoming call until that call
    finishes — it is never suspended mid-call to serve another request.
O2. When a recycled thread is re-activated for a new call, the skeleton
    start probe refreshes the thread-specific storage with that call's
    FTL, so stale FTLs are harmless.

The three policies named in the paper (after Schmidt [18]) are
implemented over the same dispatch interface: the endpoint hands each
decoded request plus a reply callback to the policy, and the policy
decides which thread executes it.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import Callable

DispatchFn = Callable[[], None]


class ThreadingPolicy:
    """Strategy deciding which thread runs a request dispatch."""

    name = "abstract"
    #: When true, the endpoint dispatches inline on the connection's
    #: reader thread — the defining behaviour of thread-per-connection.
    inline_per_connection = False

    def start(self, process) -> None:
        """Bind to the owning process (called once by the ORB)."""
        self._process = process

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Stop worker threads, if the policy owns any."""


class ThreadPerRequest(ThreadingPolicy):
    """Spawn a fresh thread for every incoming request.

    After the call finishes the thread is reclaimed by the operating
    system (paper O1) — in our simulation it simply exits.
    """

    name = "thread-per-request"

    def __init__(self):
        self._counter = 0
        self._lock = threading.Lock()

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        with self._lock:
            self._counter += 1
            serial = self._counter
        self._process.spawn_thread(dispatch, name=f"req-{serial}")


class ThreadPerConnection(ThreadingPolicy):
    """One dedicated dispatcher thread per client connection.

    Requests from the same connection execute sequentially on the same
    (recycled) thread — the connection's reader thread itself, which the
    endpoint uses directly when ``inline_per_connection`` is set. This is
    the configuration that exercises observation O2: the thread holds a
    stale FTL between calls and must be refreshed by the next skeleton
    start probe.
    """

    name = "thread-per-connection"
    inline_per_connection = True

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        # Fallback for endpoints that ignore the inline flag: still run
        # sequentially on the calling (reader) thread.
        dispatch()


class ThreadPool(ThreadingPolicy):
    """A fixed pool of worker threads sharing one request queue.

    The classic "variant of thread pooling": threads are reclaimed by the
    ORB between calls (paper O1/O2).
    """

    name = "thread-pool"

    def __init__(self, size: int = 4):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        # SimpleQueue: the pool queue is crossed once per dispatched
        # request, so the cheaper C-level put/get matters under load.
        self._work: queue.SimpleQueue = queue.SimpleQueue()
        self._started = False

    def start(self, process) -> None:
        super().start(process)
        if not self._started:
            self._started = True
            for index in range(self.size):
                process.spawn_thread(self._worker, name=f"pool-{index}")

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        self._work.put(dispatch)

    def _worker(self) -> None:
        while True:
            dispatch = self._work.get()
            if dispatch is None:
                return
            dispatch()

    def shutdown(self) -> None:
        for _ in range(self.size):
            self._work.put(None)


class AsyncioDispatch(ThreadingPolicy):
    """Run every dispatch on one dedicated asyncio event-loop thread.

    The asyncio analogue of :class:`ThreadPool` with size 1 — except
    each dispatched call that reaches an *async* skeleton becomes its own
    Task, so thousands of calls can be suspended at ``await`` points
    concurrently while costing zero parked OS threads. Observation O1
    bends here (a call *is* suspended mid-flight), but causality capture
    survives because the FTL carrier is execution-context-local
    (:class:`~repro.platform.tss.ContextVarStorage`): each Task runs in
    its own context copy, so a resumed call still sees its own FTL, and
    O2's refresh-on-dispatch happens per task instead of per thread.

    Sync skeletons dispatched under this policy simply run inline on the
    loop thread (sequentially, like a size-1 pool).
    """

    name = "asyncio"

    def __init__(self):
        self.loop: asyncio.AbstractEventLoop | None = None
        self._started = False
        self._ready = threading.Event()

    def start(self, process) -> None:
        super().start(process)
        if not self._started:
            self._started = True
            process.spawn_thread(self._run_loop, name="aio-dispatch")
            self._ready.wait(timeout=5.0)

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        loop.call_soon(self._ready.set)
        try:
            loop.run_forever()
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        loop = self.loop
        if loop is None or loop.is_closed():
            return  # shutting down; the client will observe the close
        try:
            loop.call_soon_threadsafe(dispatch)
        except RuntimeError:
            pass  # loop stopped between the check and the post

    def shutdown(self) -> None:
        loop = self.loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:
                pass
