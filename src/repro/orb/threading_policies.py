"""Server-side threading policies.

Section 2.2 argues causality tracing survives every ORB threading
architecture because of two observations:

O1. A physical thread is dedicated to an incoming call until that call
    finishes — it is never suspended mid-call to serve another request.
O2. When a recycled thread is re-activated for a new call, the skeleton
    start probe refreshes the thread-specific storage with that call's
    FTL, so stale FTLs are harmless.

The three policies named in the paper (after Schmidt [18]) are
implemented over the same dispatch interface: the endpoint hands each
decoded request plus a reply callback to the policy, and the policy
decides which thread executes it.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

DispatchFn = Callable[[], None]


class ThreadingPolicy:
    """Strategy deciding which thread runs a request dispatch."""

    name = "abstract"
    #: When true, the endpoint dispatches inline on the connection's
    #: reader thread — the defining behaviour of thread-per-connection.
    inline_per_connection = False

    def start(self, process) -> None:
        """Bind to the owning process (called once by the ORB)."""
        self._process = process

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Stop worker threads, if the policy owns any."""


class ThreadPerRequest(ThreadingPolicy):
    """Spawn a fresh thread for every incoming request.

    After the call finishes the thread is reclaimed by the operating
    system (paper O1) — in our simulation it simply exits.
    """

    name = "thread-per-request"

    def __init__(self):
        self._counter = 0
        self._lock = threading.Lock()

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        with self._lock:
            self._counter += 1
            serial = self._counter
        self._process.spawn_thread(dispatch, name=f"req-{serial}")


class ThreadPerConnection(ThreadingPolicy):
    """One dedicated dispatcher thread per client connection.

    Requests from the same connection execute sequentially on the same
    (recycled) thread — the connection's reader thread itself, which the
    endpoint uses directly when ``inline_per_connection`` is set. This is
    the configuration that exercises observation O2: the thread holds a
    stale FTL between calls and must be refreshed by the next skeleton
    start probe.
    """

    name = "thread-per-connection"
    inline_per_connection = True

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        # Fallback for endpoints that ignore the inline flag: still run
        # sequentially on the calling (reader) thread.
        dispatch()


class ThreadPool(ThreadingPolicy):
    """A fixed pool of worker threads sharing one request queue.

    The classic "variant of thread pooling": threads are reclaimed by the
    ORB between calls (paper O1/O2).
    """

    name = "thread-pool"

    def __init__(self, size: int = 4):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        # SimpleQueue: the pool queue is crossed once per dispatched
        # request, so the cheaper C-level put/get matters under load.
        self._work: queue.SimpleQueue = queue.SimpleQueue()
        self._started = False

    def start(self, process) -> None:
        super().start(process)
        if not self._started:
            self._started = True
            for index in range(self.size):
                process.spawn_thread(self._worker, name=f"pool-{index}")

    def submit(self, dispatch: DispatchFn, connection_id: str) -> None:
        self._work.put(dispatch)

    def _worker(self) -> None:
        while True:
            dispatch = self._work.get()
            if dispatch is None:
                return
            dispatch()

    def shutdown(self) -> None:
        for _ in range(self.size):
            self._work.put(None)
