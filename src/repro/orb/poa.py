"""Portable-object-adapter equivalent: the per-process servant registry."""

from __future__ import annotations

import itertools
import threading

from repro.errors import ObjectNotFound
from repro.orb.refs import ObjectRef


class ObjectAdapter:
    """Maps object keys to activated skeletons within one process.

    Lookups are copy-on-write: activation-time writers replace the
    table wholesale under the lock, while ``find``/``try_find`` — one
    per dispatched request, and under :class:`AsyncioDispatch` all on
    the single loop thread — read the published snapshot with a
    GIL-atomic dict get, never acquiring anything.
    """

    def __init__(self, address: str):
        self.address = address
        #: Immutable snapshot, replaced (never mutated) by writers.
        self._skeletons: dict[str, object] = {}
        self._key_counter = itertools.count(1)
        self._lock = threading.Lock()

    def reserve(self, object_key: str | None) -> str:
        """Reserve an object key (minting one if not given)."""
        with self._lock:
            if object_key is None:
                # Object ids are universal identifiers (paper, Fig. 6), so
                # the minted key embeds the process address.
                object_key = f"{self.address}.obj-{next(self._key_counter)}"
            if object_key in self._skeletons:
                raise ObjectNotFound(f"object key {object_key!r} already active")
            table = dict(self._skeletons)
            table[object_key] = None  # reserved, not yet installed
            self._skeletons = table
        return object_key

    def install(self, object_key: str, skeleton) -> None:
        """Install the skeleton for a previously reserved key."""
        with self._lock:
            if object_key not in self._skeletons:
                raise ObjectNotFound(f"object key {object_key!r} was never reserved")
            table = dict(self._skeletons)
            table[object_key] = skeleton
            self._skeletons = table

    def activate(
        self, skeleton, object_key: str | None, interface: str, component: str
    ) -> ObjectRef:
        """Register a skeleton and mint the object reference for it."""
        object_key = self.reserve(object_key)
        self.install(object_key, skeleton)
        return ObjectRef(
            address=self.address,
            object_key=object_key,
            interface=interface,
            component=component,
        )

    def deactivate(self, object_key: str) -> None:
        with self._lock:
            table = dict(self._skeletons)
            table.pop(object_key, None)
            self._skeletons = table

    def find(self, object_key: str):
        skeleton = self._skeletons.get(object_key)
        if skeleton is None:
            raise ObjectNotFound(f"no active object with key {object_key!r}")
        return skeleton

    def try_find(self, object_key: str):
        return self._skeletons.get(object_key)

    def active_keys(self) -> list[str]:
        return sorted(self._skeletons)
