"""Fused per-operation marshalling plans (the CDR fast path).

The slow path walks the IDL type tree per field per call — a Python-level
dispatch (``idl_type.marshal(encoder, value)``) plus an align/pack pair
for every primitive. A :class:`MarshalPlan` compiles an operation's
parameter (or result) type list **once**, at first use, into:

- *fused runs*: maximal stretches of fixed-size fields (primitives and
  enums) collapsed into a single precompiled :class:`struct.Struct`
  whose ``x`` pad bytes reproduce CDR natural alignment exactly, and
- *fallback steps*: variable-size types (strings, sequences, structs,
  object references) that keep using the slow-path codec object.

Because CDR alignment is relative to the encapsulation start, the inner
padding of a run depends on the byte offset at which the run begins.
Every fixed CDR size divides 8, so the offset **mod 8** fully determines
the padding; plans compile one Struct variant per starting mod actually
observed (at most 8) and cache them.

Byte-identity and error parity with the slow path are contractual (the
property suite in ``tests/unit/orb/test_fastcdr_equivalence.py`` holds
both paths to it): each fused field carries a precheck mirroring the
slow path's type validation, and any residual ``struct.error`` replays
the run through the slow codec so the exact slow-path exception
surfaces.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Sequence

from repro.errors import MarshalError
from repro.orb.cdr import CdrDecoder, CdrEncoder

_FIXED_FORMATS = {
    "octet": ("B", 1),
    "boolean": ("B", 1),
    "char": ("B", 1),
    "short": ("h", 2),
    "unsigned short": ("H", 2),
    "long": ("i", 4),
    "unsigned long": ("I", 4),
    "long long": ("q", 8),
    "unsigned long long": ("Q", 8),
    "float": ("f", 4),
    "double": ("d", 8),
}

_INT_KINDS = frozenset(
    ("octet", "short", "unsigned short", "long", "unsigned long", "long long", "unsigned long long")
)


class _Field:
    """One fixed-size field inside a fused run."""

    __slots__ = ("kind", "fmt", "size", "precheck", "enc_conv", "dec_post")

    def __init__(self, kind, fmt, size, precheck, enc_conv, dec_post):
        self.kind = kind
        self.fmt = fmt
        self.size = size
        #: Slow-path type validation, run before packing (parity).
        self.precheck = precheck
        #: Python value -> packable value (char -> ord, enum -> index).
        self.enc_conv = enc_conv
        #: Unpacked value -> Python value for non-builtin mappings (enum).
        self.dec_post = dec_post


def _precheck_int(kind: str) -> Callable[[Any], None]:
    def check(value):
        if not isinstance(value, int) or isinstance(value, bool):
            raise MarshalError(f"{kind} expects an int, got {value!r}")

    return check


def _precheck_float(kind: str) -> Callable[[Any], None]:
    def check(value):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise MarshalError(f"{kind} expects a number, got {value!r}")

    return check


def _precheck_boolean(value):
    if not isinstance(value, (bool, int)):
        raise MarshalError(f"boolean expects a bool, got {value!r}")


def _precheck_char(value):
    if not isinstance(value, str) or len(value) != 1:
        raise MarshalError(f"char expects a 1-char string, got {value!r}")


def _field_for(idl_type) -> _Field | None:
    """Compile one IDL type into a fused field, or None if not fixed-size."""
    kind = getattr(idl_type, "kind", None)
    if kind in _FIXED_FORMATS:
        fmt, size = _FIXED_FORMATS[kind]
        if kind in _INT_KINDS:
            return _Field(kind, fmt, size, _precheck_int(kind), None, None)
        if kind in ("float", "double"):
            return _Field(kind, fmt, size, _precheck_float(kind), None, None)
        if kind == "boolean":
            return _Field(kind, fmt, size, _precheck_boolean, lambda v: 1 if v else 0, None)
        if kind == "char":
            return _Field(kind, fmt, size, _precheck_char, ord, None)
    labels = getattr(idl_type, "labels", None)
    py_enum = getattr(idl_type, "py_enum", None)
    if labels is not None and py_enum is not None:
        idl_name = idl_type.idl_name
        label_list = list(labels)

        def enc_conv(value):
            # Mirrors EnumType.marshal's acceptance rules exactly.
            if isinstance(value, py_enum):
                return label_list.index(value.name)
            if isinstance(value, str) and value in label_list:
                return label_list.index(value)
            if isinstance(value, int) and 0 <= value < len(label_list):
                return value
            raise MarshalError(f"{value!r} is not a member of enum {idl_name}")

        def dec_post(index):
            if index >= len(label_list):
                raise MarshalError(f"enum {idl_name} index {index} out of range")
            return py_enum[label_list[index]]

        return _Field("unsigned long", "I", 4, None, enc_conv, dec_post)
    return None


class _FusedRun:
    """A maximal stretch of fixed-size fields packed by one Struct."""

    __slots__ = ("fields", "_variants")

    def __init__(self, fields: list[_Field]):
        self.fields = fields
        self._variants: dict[int, struct.Struct] = {}

    def _variant(self, start_mod: int) -> struct.Struct:
        compiled = self._variants.get(start_mod)
        if compiled is None:
            fmt = [">"]
            pos = start_mod
            for field in self.fields:
                pad = -pos % field.size
                if pad:
                    fmt.append("x" * pad)
                fmt.append(field.fmt)
                pos += pad + field.size
            compiled = self._variants[start_mod] = struct.Struct("".join(fmt))
        return compiled

    def pack_into(self, encoder: CdrEncoder, values: Sequence, index: int) -> int:
        chunks = encoder._chunks
        compiled = self._variant(len(chunks) % 8)
        converted = []
        for field in self.fields:
            value = values[index]
            index += 1
            if field.precheck is not None:
                field.precheck(value)
            converted.append(field.enc_conv(value) if field.enc_conv is not None else value)
        try:
            chunks.extend(compiled.pack(*converted))
        except struct.error:
            # A range error the prechecks can't see (e.g. long = 2**40).
            # Replay through the slow codec so the exact slow-path
            # MarshalError (naming the offending field) surfaces.
            for field, value in zip(self.fields, converted):
                encoder.write_primitive(field.kind, value)
            raise MarshalError("fused pack failed but slow-path replay succeeded")
        return index

    def unpack_into(self, decoder: CdrDecoder, out: list) -> None:
        payload = decoder._payload
        pos = decoder._pos
        compiled = self._variant(pos % 8)
        if pos + compiled.size > len(payload):
            # Underrun: replay field-by-field for the exact slow-path error.
            for field in self.fields:
                value = decoder.read_primitive(field.kind)
                out.append(field.dec_post(value) if field.dec_post is not None else value)
            return
        raw = compiled.unpack_from(payload, pos)
        decoder._pos = pos + compiled.size
        for field, value in zip(self.fields, raw):
            kind = field.kind
            if kind == "boolean":
                value = bool(value)
            elif kind == "char":
                value = chr(value)
            if field.dec_post is not None:
                value = field.dec_post(value)
            out.append(value)


class MarshalPlan:
    """Compiled encoder/decoder for one ordered list of IDL types."""

    __slots__ = ("arity", "_steps")

    def __init__(self, types: Sequence):
        self.arity = len(types)
        steps: list = []
        run: list[_Field] = []
        for idl_type in types:
            field = _field_for(idl_type)
            if field is not None:
                run.append(field)
                continue
            if run:
                steps.append(_FusedRun(run))
                run = []
            steps.append(idl_type)
        if run:
            steps.append(_FusedRun(run))
        self._steps = steps

    def marshal(self, values: Sequence) -> bytearray:
        """Encode ``values`` into a fresh encapsulation (no final copy)."""
        encoder = CdrEncoder()
        index = 0
        for step in self._steps:
            if type(step) is _FusedRun:
                index = step.pack_into(encoder, values, index)
            else:
                step.marshal(encoder, values[index])
                index += 1
        return encoder.getbuffer()

    def marshal_into(self, encoder: CdrEncoder, values: Sequence) -> None:
        """Encode onto an existing encoder (alignment follows its offset)."""
        index = 0
        for step in self._steps:
            if type(step) is _FusedRun:
                index = step.pack_into(encoder, values, index)
            else:
                step.marshal(encoder, values[index])
                index += 1

    def unmarshal(self, payload) -> tuple:
        """Decode a full encapsulation; enforces exhaustion like the slow path."""
        decoder = CdrDecoder(payload)
        values: list = []
        for step in self._steps:
            if type(step) is _FusedRun:
                step.unpack_into(decoder, values)
            else:
                values.append(step.unmarshal(decoder))
        decoder.expect_exhausted()
        return tuple(values)
