"""Awaitable multiplexed client channel for the asyncio data plane.

The threaded :class:`~repro.orb.channel.MuxChannel` parks one OS thread
per in-flight call; an :class:`AsyncMuxChannel` parks one *future* per
call instead, so tens of thousands of pipelined invocations cost one
asyncio Task each. Same demux contract as the threaded mux — request ids
are unique per client ORB, replies complete out of order, stale reply
ids are counted and dropped, transport loss fails every outstanding
caller — with two event-loop twists:

- **Coalesced pipelined writes.** Frames queued within one loop tick are
  joined into a single transport send (flushed by a ``call_soon``
  callback), so 8k concurrent callers cost ~1 transport crossing per
  tick instead of 8k. Fault-injecting connections are the exception:
  they take one plan decision (and one latency charge) per transport
  send, so the flush degrades to frame-by-frame sends there — keeping
  injected delays, drops and corruption attributed per *request*, byte
  and charge compatible with the threaded plane.
- **Thread-to-loop demux.** The in-memory transport blocks in
  ``recv``, so one reader thread per channel re-slices the byte stream
  (:class:`~repro.orb.aio.framing.StreamFrameParser`) and hands decoded
  reply batches to the loop via ``call_soon_threadsafe``; futures are
  only ever touched on the loop.
"""

from __future__ import annotations

import asyncio

from repro.errors import TransportError
from repro.orb.aio.framing import (
    ASYNC_STREAM_PRELUDE,
    StreamFrameParser,
    frame_message,
)
from repro.orb.giop import ReplyMessage, decode_message
from repro.platform.network import Connection
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE
from repro.telemetry.runtime import metrics_binder

_PENDING = NULL_GAUGE
_STALE_REPLIES = NULL_COUNTER
_MALFORMED = NULL_COUNTER
_FLUSHES = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    global _PENDING, _STALE_REPLIES, _MALFORMED, _FLUSHES
    if registry is None:
        _PENDING = NULL_GAUGE
        _STALE_REPLIES = NULL_COUNTER
        _MALFORMED = NULL_COUNTER
        _FLUSHES = NULL_COUNTER
        return
    _PENDING = registry.gauge(
        "repro_orb_async_pending_requests",
        "Requests pipelined on asyncio channels, awaiting demux.",
    )
    _STALE_REPLIES = registry.counter(
        "repro_orb_async_stale_replies_total",
        "Async-plane replies whose request id matched no waiter.",
    )
    _MALFORMED = registry.counter(
        "repro_orb_async_malformed_replies_total",
        "Async-plane payloads that failed to decode (dropped).",
    )
    _FLUSHES = registry.counter(
        "repro_orb_async_write_flushes_total",
        "Coalesced write flushes on asyncio channels.",
    )


class AsyncMuxChannel:
    """One shared stream-mode connection, demultiplexed by request id.

    Must be constructed, called, and closed on ``loop``; only the demux
    reader thread lives off-loop, and it re-enters via
    ``call_soon_threadsafe``.
    """

    def __init__(self, conn: Connection, process, loop: asyncio.AbstractEventLoop):
        self._conn = conn
        self._loop = loop
        self._pending: dict[int, asyncio.Future] = {}
        self._failure: TransportError | None = None
        self._write_buf: list[bytes] = []
        self._flush_scheduled = False
        self._sender_host = None
        #: High-water mark of concurrent in-flight calls — the honesty
        #: figure the throughput bench records as effective concurrency.
        self.peak_pending = 0
        # Announce stream mode before any framed bytes; legacy readers
        # drop the prelude as one malformed message.
        conn.send(ASYNC_STREAM_PRELUDE, sender_host=getattr(process, "host", None))
        process.spawn_thread(
            self._demux_loop, name=f"aiomux-{conn.peer_label}", args=()
        )

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The event loop this channel's futures belong to."""
        return self._loop

    @property
    def closed(self) -> bool:
        return self._conn.closed or self._failure is not None

    def close(self) -> None:
        """Tear the channel down; outstanding futures fail promptly.

        Safe from any thread: futures are only touched on the loop, so a
        foreign-thread close posts the failure instead of applying it.
        """
        self._conn.close()
        exc = TransportError(f"connection {self._conn.local_label} closed by peer")
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            self._fail_all(exc)
        else:
            self._post(self._fail_all, exc)

    # -- caller side (on the loop) --------------------------------------

    async def call(
        self,
        request_id: int,
        payload: bytes,
        sender_host,
        oneway: bool,
        timeout: float | None,
    ) -> ReplyMessage | None:
        """Queue one framed request; await its own reply unless oneway."""
        if self._failure is not None:
            raise TransportError(str(self._failure))
        if oneway:
            self._queue_write(frame_message(payload), sender_host)
            return None
        future = self._loop.create_future()
        self._pending[request_id] = future
        depth = len(self._pending)
        if depth > self.peak_pending:
            self.peak_pending = depth
        _PENDING.inc()
        try:
            self._queue_write(frame_message(payload), sender_host)
            try:
                if timeout is None:
                    reply = await future
                else:
                    reply = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                self._pending.pop(request_id, None)
                raise TransportError(
                    f"recv timed out on {self._conn.local_label}"
                    f"<-{self._conn.peer_label}"
                ) from None
            except asyncio.CancelledError:
                self._pending.pop(request_id, None)
                raise
        finally:
            _PENDING.dec()
        return reply

    def _queue_write(self, frame: bytes, sender_host) -> None:
        self._write_buf.append(frame)
        self._sender_host = sender_host
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._write_buf:
            return
        frames = self._write_buf[:]
        self._write_buf.clear()
        _FLUSHES.inc()
        try:
            if getattr(self._conn, "_injector", None) is not None:
                # Fault-injecting connections take one plan decision and
                # one latency charge per transport send. Coalescing would
                # charge an injected delay once per *batch* and land
                # drop/corrupt faults on whole batches — per-request
                # latency attribution would depend on flush timing. Send
                # frame-by-frame so the seeded fault schedule and the
                # latency accounting stay per-request, matching the
                # threaded plane.
                for frame in frames:
                    self._conn.send(frame, sender_host=self._sender_host)
            else:
                self._conn.send(b"".join(frames), sender_host=self._sender_host)
        except TransportError as exc:
            # The shared connection is gone: every pipelined caller's loss.
            self._fail_all(exc)

    # -- demux reader (its own thread) ----------------------------------

    def _demux_loop(self) -> None:
        conn = self._conn
        parser = StreamFrameParser()
        while True:
            try:
                chunk = conn.recv(timeout=None)
            except TransportError as exc:
                self._post(self._fail_all, exc)
                return
            try:
                frames = parser.feed(chunk)
            except Exception as exc:
                self._post(
                    self._fail_all,
                    TransportError(f"corrupt reply stream: {exc}"),
                )
                return
            replies: list[ReplyMessage] = []
            undecodable: Exception | None = None
            for frame in frames:
                try:
                    message = decode_message(frame)
                except Exception as exc:
                    # Framing is intact (the length prefix still bounds
                    # the bad message), so the channel survives — mirror
                    # MuxChannel: fail current waiters, keep going.
                    _MALFORMED.inc()
                    undecodable = exc
                    continue
                if isinstance(message, ReplyMessage):
                    replies.append(message)
            if replies or undecodable is not None:
                self._post(self._deliver, replies, undecodable)

    def _post(self, callback, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            # Loop already closed during shutdown; nobody is waiting.
            pass

    # -- loop-side delivery ---------------------------------------------

    def _deliver(self, replies: list[ReplyMessage], undecodable) -> None:
        for message in replies:
            future = self._pending.pop(message.request_id, None)
            if future is None:
                _STALE_REPLIES.inc()
                continue
            if not future.done():
                future.set_result(message)
        if undecodable is not None:
            self._fail_pending(
                TransportError(f"undecodable reply payload: {undecodable}")
            )

    def _fail_pending(self, exc: TransportError) -> None:
        """Fail current waiters but keep the channel open for new calls."""
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(TransportError(str(exc)))

    def _fail_all(self, exc: TransportError) -> None:
        """Mark the channel dead and fail every outstanding waiter."""
        if self._failure is None:
            self._failure = exc
        self._fail_pending(exc)
