"""Asyncio-native invocation data plane.

Event-loop GIOP framing (:mod:`repro.orb.aio.framing`) and the awaitable
multiplexed channel (:mod:`repro.orb.aio.channel`). The ORB mounts this
plane when constructed with ``channel="asyncio"``; servers dispatch on
an event loop via
:class:`~repro.orb.threading_policies.AsyncioDispatch`.
"""

from repro.orb.aio.channel import AsyncMuxChannel
from repro.orb.aio.framing import (
    ASYNC_STREAM_PRELUDE,
    MAX_FRAME_BYTES,
    FramedConnectionWriter,
    StreamFrameParser,
    frame_message,
    parse_frames_blocking,
)

__all__ = [
    "ASYNC_STREAM_PRELUDE",
    "AsyncMuxChannel",
    "FramedConnectionWriter",
    "MAX_FRAME_BYTES",
    "StreamFrameParser",
    "frame_message",
    "parse_frames_blocking",
]
