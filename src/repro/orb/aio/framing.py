"""Stream framing for the asyncio data plane.

The in-memory transport is message-oriented (one ``Connection.send`` is
one ``recv``), but the asyncio plane is written against *stream*
semantics so pipelined writes can be coalesced: many GIOP frames ride in
one transport send, and the receiver re-slices the byte stream with an
incremental parser — the same shape an asyncio ``StreamReader`` protocol
would take over TCP, where message boundaries are never preserved.

Each GIOP message is prefixed with a 4-byte big-endian length. A
connection announces stream mode by sending :data:`ASYNC_STREAM_PRELUDE`
as its very first transport message; a server that predates the asyncio
plane decodes the prelude as a malformed GIOP frame and drops it, so the
handshake degrades safely instead of corrupting the legacy reader.

Two parsers implement the same framing:

- :class:`StreamFrameParser` — incremental, fed arbitrary chunk
  fragmentation (1-byte splits, header/body straddles), used by the
  event-loop reader;
- :func:`parse_frames_blocking` — the one-shot reference over a complete
  buffer, kept as the oracle for the fragmentation property test.
"""

from __future__ import annotations

import struct

from repro.errors import MarshalError
from repro.platform.network import Connection

#: First transport message on an asyncio-plane connection. Deliberately
#: not a valid GIOP frame (wrong magic) so pre-asyncio readers drop it as
#: malformed instead of misparsing subsequent stream bytes.
ASYNC_STREAM_PRELUDE = b"RPAS\x01"

_LEN = struct.Struct(">I")

#: Upper bound on one framed message; a length prefix beyond this is
#: treated as stream corruption rather than an allocation request.
MAX_FRAME_BYTES = 1 << 26


def frame_message(payload: bytes) -> bytes:
    """Prefix one GIOP message with its 4-byte big-endian length."""
    size = len(payload)
    if size > MAX_FRAME_BYTES:
        raise MarshalError(f"frame of {size} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(size) + payload


class StreamFrameParser:
    """Incremental length-prefixed frame re-slicer.

    ``feed(chunk)`` accepts any fragmentation of the byte stream — a
    chunk may hold part of a length prefix, several whole frames, or a
    frame body straddling many chunks — and returns the list of complete
    message payloads that became available, in stream order.
    """

    __slots__ = ("_buf",)

    def __init__(self):
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buf)

    def feed(self, chunk: bytes) -> list[bytes]:
        buf = self._buf
        buf += chunk
        frames: list[bytes] = []
        pos = 0
        limit = len(buf)
        while limit - pos >= 4:
            (size,) = _LEN.unpack_from(buf, pos)
            if size > MAX_FRAME_BYTES:
                raise MarshalError(
                    f"frame of {size} bytes exceeds {MAX_FRAME_BYTES}"
                )
            end = pos + 4 + size
            if end > limit:
                break
            frames.append(bytes(buf[pos + 4 : end]))
            pos = end
        if pos:
            del buf[:pos]
        return frames


def parse_frames_blocking(data: bytes) -> list[bytes]:
    """Reference decoder: split one complete buffer into frame payloads.

    Raises :class:`~repro.errors.MarshalError` on a truncated trailing
    frame; the incremental parser would instead keep those bytes pending.
    """
    frames: list[bytes] = []
    pos = 0
    limit = len(data)
    while pos < limit:
        if limit - pos < 4:
            raise MarshalError("truncated frame length prefix")
        (size,) = _LEN.unpack_from(data, pos)
        if size > MAX_FRAME_BYTES:
            raise MarshalError(f"frame of {size} bytes exceeds {MAX_FRAME_BYTES}")
        end = pos + 4 + size
        if end > limit:
            raise MarshalError("truncated frame body")
        frames.append(bytes(data[pos + 4 : end]))
        pos = end
    return frames


class FramedConnectionWriter:
    """Connection facade that length-frames every outgoing payload.

    The server side of a stream-mode connection wraps its transport in
    this so the existing reply path (``Orb._send_reply``) emits framed
    bytes without knowing which plane the peer speaks.
    """

    __slots__ = ("_conn",)

    def __init__(self, conn: Connection):
        self._conn = conn

    @property
    def local_label(self) -> str:
        return self._conn.local_label

    @property
    def peer_label(self) -> str:
        return self._conn.peer_label

    @property
    def closed(self) -> bool:
        return self._conn.closed

    def send(self, payload: bytes, sender_host=None) -> None:
        self._conn.send(frame_message(payload), sender_host=sender_host)

    def close(self) -> None:
        self._conn.close()
