"""Runtime support for IDL-generated stubs and skeletons.

The code generator emits subclasses of :class:`StubBase` and
:class:`SkeletonBase`; the probe calls appear explicitly in the generated
method bodies (that is the paper's source-level instrumentation), while
marshalling, transport and the result-tuple convention live here.

Result convention (follows the OMG Python mapping): a servant method
receives the ``in``/``inout`` parameters in declaration order and returns

- nothing (``None``) if the operation is void with no out parameters,
- the single result if exactly one of {non-void return, out parameters}
  yields one value,
- a tuple ``(return_value, out1, out2, ...)`` otherwise.
"""

from __future__ import annotations

import inspect
import threading
from typing import TYPE_CHECKING, Any

from repro.core.events import Domain
from repro.core.monitor import _MODE_FLAGS
from repro.core.records import OperationInfo
from repro.errors import ComponentCrash, MarshalError, OrbError, RemoteApplicationError
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.fastcdr import MarshalPlan

if TYPE_CHECKING:  # imported lazily to avoid a circular import with repro.idl
    from repro.idl.semantics import ResolvedInterface, ResolvedOperation
from repro.orb.giop import ReplyMessage, ReplyStatus, RequestMessage
from repro.orb.refs import ObjectRef


class InterfaceRegistry:
    """Global map from scoped interface name to its generated classes.

    Populated when a compiled IDL module is loaded; used by
    ``Orb.resolve`` to pick the stub class for an incoming object
    reference (e.g. a callback parameter).
    """

    def __init__(self):
        self._entries: dict[str, dict[str, type]] = {}
        self._lock = threading.Lock()

    def register(
        self, interface: str, stub_class: type, skeleton_class: type, servant_base: type
    ) -> None:
        with self._lock:
            self._entries[interface] = {
                "stub": stub_class,
                "skeleton": skeleton_class,
                "servant": servant_base,
            }

    def stub_class(self, interface: str) -> type:
        with self._lock:
            try:
                return self._entries[interface]["stub"]
            except KeyError:
                raise OrbError(f"no stub registered for interface {interface}") from None

    def skeleton_class(self, interface: str) -> type:
        with self._lock:
            try:
                return self._entries[interface]["skeleton"]
            except KeyError:
                raise OrbError(f"no skeleton registered for interface {interface}") from None

    def known_interfaces(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)


#: Process-wide registry shared by every compiled IDL module.
GLOBAL_INTERFACE_REGISTRY = InterfaceRegistry()


def _args_plan(op: "ResolvedOperation") -> MarshalPlan:
    """The operation's compiled argument plan, built at first use."""
    plan = op.__dict__.get("_args_plan")
    if plan is None:
        plan = op.__dict__["_args_plan"] = MarshalPlan(
            [param.idl_type for param in op.in_params]
        )
    return plan


def _result_plan(op: "ResolvedOperation") -> MarshalPlan:
    """Compiled plan for [return?] + out parameters, built at first use."""
    plan = op.__dict__.get("_result_plan")
    if plan is None:
        types = [] if op.return_type.is_void else [op.return_type]
        types.extend(param.idl_type for param in op.out_params)
        plan = op.__dict__["_result_plan"] = MarshalPlan(types)
    return plan


def _marshal_args(op: "ResolvedOperation", values: tuple) -> bytes | bytearray:
    """Encode the in/inout arguments of one invocation."""
    plan = _args_plan(op)
    if len(values) != plan.arity:
        raise MarshalError(
            f"{op.name} expects {plan.arity} argument(s), got {len(values)}"
        )
    return plan.marshal(values)


def _marshal_args_slow(op: "ResolvedOperation", values: tuple) -> bytes:
    """Unfused reference encoder; the equivalence suite pins the fast
    path to its byte output."""
    in_params = op.in_params
    if len(values) != len(in_params):
        raise MarshalError(
            f"{op.name} expects {len(in_params)} argument(s), got {len(values)}"
        )
    encoder = CdrEncoder()
    for param, value in zip(in_params, values):
        param.idl_type.marshal(encoder, value)
    return encoder.getvalue()


def _unmarshal_args(op: "ResolvedOperation", body) -> tuple:
    return _args_plan(op).unmarshal(body)


def _unmarshal_args_slow(op: "ResolvedOperation", body) -> tuple:
    decoder = CdrDecoder(body)
    values = tuple(param.idl_type.unmarshal(decoder) for param in op.in_params)
    decoder.expect_exhausted()
    return values


def _result_values(op: "ResolvedOperation", result: Any) -> list:
    """Normalize a servant return value into [return?] + outs order."""
    slots = _result_plan(op).arity
    if slots == 0:
        if result is not None:
            raise MarshalError(f"{op.name} is void but servant returned {result!r}")
        return []
    if slots == 1:
        return [result]
    if not isinstance(result, tuple) or len(result) != slots:
        raise MarshalError(
            f"{op.name} must return a {slots}-tuple (return value then out parameters)"
        )
    return list(result)


def _marshal_result(op: "ResolvedOperation", result: Any) -> bytes | bytearray:
    values = _result_values(op, result)
    return _result_plan(op).marshal(values)


def _marshal_result_slow(op: "ResolvedOperation", result: Any) -> bytes:
    """Unfused reference encoder for the equivalence suite."""
    values = _result_values(op, result)
    encoder = CdrEncoder()
    index = 0
    if not op.return_type.is_void:
        op.return_type.marshal(encoder, values[index])
        index += 1
    for param in op.out_params:
        param.idl_type.marshal(encoder, values[index])
        index += 1
    return encoder.getvalue()


def _unmarshal_result(op: "ResolvedOperation", body) -> Any:
    values = _result_plan(op).unmarshal(body)
    if not values:
        return None
    if len(values) == 1:
        return values[0]
    return values


def _unmarshal_result_slow(op: "ResolvedOperation", body) -> Any:
    decoder = CdrDecoder(body)
    values: list = []
    if not op.return_type.is_void:
        values.append(op.return_type.unmarshal(decoder))
    for param in op.out_params:
        values.append(param.idl_type.unmarshal(decoder))
    decoder.expect_exhausted()
    if not values:
        return None
    if len(values) == 1:
        return values[0]
    return tuple(values)


def _marshal_user_exception(op: "ResolvedOperation", exc: Exception) -> bytes:
    encoder = CdrEncoder()
    for exc_type in op.raises:
        if isinstance(exc, exc_type.py_class):
            encoder.write_string(exc_type.idl_name)
            exc_type.marshal(encoder, exc)
            return encoder.getvalue()
    raise MarshalError(f"{type(exc).__name__} is not declared in {op.name}'s raises clause")


def _unmarshal_user_exception(op: "ResolvedOperation", body: bytes) -> Exception:
    decoder = CdrDecoder(body)
    exc_name = decoder.read_string()
    for exc_type in op.raises:
        if exc_type.idl_name == exc_name:
            exc = exc_type.unmarshal(decoder)
            decoder.expect_exhausted()
            return exc
    return RemoteApplicationError(exc_name, "undeclared user exception")


def _marshal_system_exception(exc: BaseException) -> bytes:
    encoder = CdrEncoder()
    encoder.write_string(type(exc).__name__)
    encoder.write_string(str(exc))
    return encoder.getvalue()


def _unmarshal_system_exception(body: bytes) -> RemoteApplicationError:
    decoder = CdrDecoder(body)
    exc_type = decoder.read_string()
    message = decoder.read_string()
    return RemoteApplicationError(exc_type, message)


class StubBase:
    """Client-side proxy base; generated subclasses add one method per op."""

    _interface: str = "?"
    _resolved: "ResolvedInterface"
    _instrumented: bool = False

    def __init__(self, orb, object_ref: ObjectRef):
        self._orb = orb
        self.object_ref = object_ref
        self._op_info_cache: dict[str, OperationInfo] = {}

    # -- helpers used by generated code --------------------------------

    @property
    def _monitor(self):
        return self._orb.process.monitor

    def _op(self, name: str) -> "ResolvedOperation":
        return self._resolved.operation(name)

    def _op_info(self, name: str) -> OperationInfo:
        # OperationInfo is frozen, so one instance per (stub, op) is
        # safely shared across every probe of every call.
        info = self._op_info_cache.get(name)
        if info is None:
            info = self._op_info_cache[name] = OperationInfo(
                interface=self._interface,
                operation=name,
                object_id=self.object_ref.object_key,
                component=self.object_ref.component,
                domain=Domain.CORBA,
            )
        return info

    def _semantics_args(self, op_name: str, args: tuple) -> dict | None:
        """Application-semantics payload for probe 1 (parameters)."""
        monitor = self._monitor
        if monitor is None or not _MODE_FLAGS[monitor.config.mode][2]:
            return None
        return {"operation": op_name, "args": [repr(a) for a in args]}

    def _remote_call(self, op_name: str, args: tuple, ctx) -> ReplyMessage:
        body = _marshal_args(self._op(op_name), args)
        ftl = ctx.request_ftl_payload if ctx is not None else None
        return self._orb.send_request(
            self.object_ref, op_name, body, oneway=False, ftl=ftl
        )

    def _oneway_call(self, op_name: str, args: tuple, ctx) -> None:
        body = _marshal_args(self._op(op_name), args)
        ftl = ctx.request_ftl_payload if ctx is not None else None
        self._orb.send_request(self.object_ref, op_name, body, oneway=True, ftl=ftl)

    async def _remote_call_async(self, op_name: str, args: tuple, ctx) -> ReplyMessage:
        """Awaitable twin of :meth:`_remote_call` (asyncio plane)."""
        body = _marshal_args(self._op(op_name), args)
        ftl = ctx.request_ftl_payload if ctx is not None else None
        return await self._orb.send_request_async(
            self.object_ref, op_name, body, oneway=False, ftl=ftl
        )

    async def _oneway_call_async(self, op_name: str, args: tuple, ctx) -> None:
        body = _marshal_args(self._op(op_name), args)
        ftl = ctx.request_ftl_payload if ctx is not None else None
        await self._orb.send_request_async(
            self.object_ref, op_name, body, oneway=True, ftl=ftl
        )

    def _decode_reply(self, op_name: str, reply: ReplyMessage) -> Any:
        op = self._op(op_name)
        if reply.status is ReplyStatus.OK:
            return _unmarshal_result(op, reply.body)
        if reply.status is ReplyStatus.USER_EXCEPTION:
            raise _unmarshal_user_exception(op, reply.body)
        raise _unmarshal_system_exception(reply.body)

    def _call_servant(self, servant, op_name: str, args: tuple) -> Any:
        """Direct collocated invocation (bypassing the skeleton)."""
        hook = self._orb.process.fault_hook
        if hook is not None:
            # Collocated calls still dispatch "into" the component; a
            # plan-scheduled crash fires here, mid-call.
            hook.on_dispatch(self._interface, op_name)
        method = getattr(servant, op_name)
        result = method(*args)
        # Validate the result shape so collocated and remote calls agree.
        _result_values(self._op(op_name), result)
        return result

    def _collocated_call_plain(self, op_name: str, servant, args: tuple) -> Any:
        return self._call_servant(servant, op_name, args)

    def _collocated_call_probed(self, op_name: str, servant, args: tuple) -> Any:
        """Collocated call with the degenerate probe pairs of Section 2.2."""
        monitor = self._monitor
        if monitor is None:
            return self._call_servant(servant, op_name, args)
        op_info = self._op_info(op_name)
        stub_ctx, skel_ctx = monitor.collocated_call_start(op_info)
        try:
            result = self._call_servant(servant, op_name, args)
        except ComponentCrash:
            # The component died mid-call: probes 3 and 4 never fire (the
            # process that would run them is gone). The open frame shows
            # up as a partial chain in the analyzer — by design.
            raise
        except BaseException:
            monitor.collocated_call_end(stub_ctx, skel_ctx)
            raise
        monitor.collocated_call_end(stub_ctx, skel_ctx)
        return result

    async def _call_servant_async(self, servant, op_name: str, args: tuple) -> Any:
        """Direct collocated invocation awaiting an async servant method."""
        hook = self._orb.process.fault_hook
        if hook is not None:
            hook.on_dispatch(self._interface, op_name)
        result = getattr(servant, op_name)(*args)
        if inspect.isawaitable(result):
            result = await result
        _result_values(self._op(op_name), result)
        return result

    async def _collocated_call_plain_async(
        self, op_name: str, servant, args: tuple
    ) -> Any:
        return await self._call_servant_async(servant, op_name, args)

    async def _collocated_call_probed_async(
        self, op_name: str, servant, args: tuple
    ) -> Any:
        """Async collocated call with the degenerate probe pairs.

        Probe semantics match :meth:`_collocated_call_probed`; the FTL
        lives in the calling task's context, so the ``await`` suspension
        cannot leak it to other tasks sharing the loop thread.
        """
        monitor = self._monitor
        if monitor is None:
            return await self._call_servant_async(servant, op_name, args)
        op_info = self._op_info(op_name)
        stub_ctx, skel_ctx = monitor.collocated_call_start(op_info)
        try:
            result = await self._call_servant_async(servant, op_name, args)
        except ComponentCrash:
            raise
        except BaseException:
            monitor.collocated_call_end(stub_ctx, skel_ctx)
            raise
        monitor.collocated_call_end(stub_ctx, skel_ctx)
        return result

    def __repr__(self) -> str:
        return f"<stub {self._interface} -> {self.object_ref.to_url()}>"


class SkeletonBase:
    """Server-side dispatcher base; generated subclasses add _dispatch_*."""

    _interface: str = "?"
    _resolved: "ResolvedInterface"
    _instrumented: bool = False

    def __init__(self, servant, orb, object_key: str, component: str = ""):
        self.servant = servant
        self._orb = orb
        self.object_key = object_key
        self.component = component or type(servant).__name__
        self._op_info_cache: dict[str, OperationInfo] = {}
        self._dispatch_cache: dict[str, Any] = {}

    @property
    def _monitor(self):
        return self._orb.process.monitor

    def _op(self, name: str) -> "ResolvedOperation":
        return self._resolved.operation(name)

    def _op_info(self, name: str) -> OperationInfo:
        info = self._op_info_cache.get(name)
        if info is None:
            info = self._op_info_cache[name] = OperationInfo(
                interface=self._interface,
                operation=name,
                object_id=self.object_key,
                component=self.component,
                domain=Domain.CORBA,
            )
        return info

    def dispatch(self, request: RequestMessage) -> ReplyMessage | None:
        """Route a decoded request to the generated per-operation handler."""
        operation = request.operation
        handler = self._dispatch_cache.get(operation)
        if handler is None:
            handler = getattr(self, f"_dispatch_{operation}", None)
            if handler is not None:
                self._dispatch_cache[operation] = handler
        if handler is None:
            if request.oneway:
                return None
            return ReplyMessage(
                request_id=request.request_id,
                status=ReplyStatus.SYSTEM_EXCEPTION,
                body=_marshal_system_exception(
                    OrbError(f"unknown operation {request.operation!r} on {self._interface}")
                ),
            )
        return handler(request)

    # -- helpers used by generated code --------------------------------

    def _decode_args(self, op_name: str, body: bytes) -> tuple:
        args = _unmarshal_args(self._op(op_name), body)
        return tuple(self._orb.localize(value) for value in args)

    def _semantics_outcome(self, status: ReplyStatus, result: Any) -> dict | None:
        """Application-semantics payload for probe 3 (result/exception)."""
        monitor = self._monitor
        if monitor is None or not _MODE_FLAGS[monitor.config.mode][2]:
            return None
        if status is ReplyStatus.OK:
            return {"status": "ok", "result": repr(result)}
        return {"status": status.name.lower(), "exception": repr(result)}

    def _execute(self, op_name: str, args: tuple) -> tuple[ReplyStatus, Any]:
        """Run the servant method, classifying the outcome.

        An injected :class:`ComponentCrash` is a ``BaseException`` and
        deliberately escapes this classifier: a dead component sends no
        reply and fires no further probes.
        """
        op = self._op(op_name)
        declared = tuple(exc_type.py_class for exc_type in op.raises)
        hook = self._orb.process.fault_hook
        if hook is not None:
            hook.on_dispatch(self._interface, op_name)
        try:
            result = getattr(self.servant, op_name)(*args)
            return ReplyStatus.OK, result
        except declared as exc:  # user exception listed in raises(...)
            return ReplyStatus.USER_EXCEPTION, exc
        except Exception as exc:  # anything else is a system exception
            return ReplyStatus.SYSTEM_EXCEPTION, exc

    async def _execute_async(self, op_name: str, args: tuple) -> tuple[ReplyStatus, Any]:
        """Awaitable twin of :meth:`_execute` for async servant methods.

        The classification happens around the ``await`` as well, so a
        declared exception raised after a suspension point still maps to
        USER_EXCEPTION; :class:`ComponentCrash` escapes either way.
        """
        op = self._op(op_name)
        declared = tuple(exc_type.py_class for exc_type in op.raises)
        hook = self._orb.process.fault_hook
        if hook is not None:
            hook.on_dispatch(self._interface, op_name)
        try:
            result = getattr(self.servant, op_name)(*args)
            if inspect.isawaitable(result):
                result = await result
            return ReplyStatus.OK, result
        except declared as exc:  # user exception listed in raises(...)
            return ReplyStatus.USER_EXCEPTION, exc
        except Exception as exc:  # anything else is a system exception
            return ReplyStatus.SYSTEM_EXCEPTION, exc

    def _encode_reply(
        self,
        op_name: str,
        request: RequestMessage,
        status: ReplyStatus,
        result: Any,
        ftl: bytes | None,
    ) -> ReplyMessage | None:
        if request.oneway:
            return None
        op = self._op(op_name)
        if status is ReplyStatus.OK:
            try:
                body = _marshal_result(op, result)
            except MarshalError as exc:
                status = ReplyStatus.SYSTEM_EXCEPTION
                body = _marshal_system_exception(exc)
        elif status is ReplyStatus.USER_EXCEPTION:
            body = _marshal_user_exception(op, result)
        else:
            body = _marshal_system_exception(result)
        return ReplyMessage(
            request_id=request.request_id, status=status, body=body, ftl=ftl
        )

    def __repr__(self) -> str:
        return f"<skeleton {self._interface} key={self.object_key}>"
