"""Object references — the ORB's IOR equivalent.

A reference names a servant by (endpoint address, object key, interface)
plus the component that hosts it — the component name is what the
analyzer's component-level views group by, and the client-side probes need
it, so it travels inside the reference.

References are transportable: they marshal as their stringified URL, so
servants can hand out callbacks and the PPS pipeline can wire itself up
dynamically (callbacks produce nesting calls, Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MarshalError

_SCHEME = "repro://"


@dataclass(frozen=True)
class ObjectRef:
    """Location-transparent name of one component object."""

    address: str
    object_key: str
    interface: str
    component: str = ""

    def to_url(self) -> str:
        pieces = (
            (self.address, "address"),
            (self.object_key, "object key"),
            (self.interface, "interface"),
            (self.component, "component"),
        )
        for piece, label in pieces:
            if any(ch in piece for ch in "/#!"):
                raise MarshalError(f"object reference {label} may not contain '/', '#' or '!'")
        url = f"{_SCHEME}{self.address}/{self.object_key}#{self.interface}"
        if self.component:
            url += f"!{self.component}"
        return url

    @classmethod
    def from_url(cls, url: str) -> "ObjectRef":
        if not url.startswith(_SCHEME):
            raise MarshalError(f"not an object reference URL: {url!r}")
        rest = url[len(_SCHEME) :]
        component = ""
        if "!" in rest:
            rest, component = rest.rsplit("!", 1)
        try:
            location, interface = rest.rsplit("#", 1)
            address, object_key = location.split("/", 1)
        except ValueError:
            raise MarshalError(f"malformed object reference URL: {url!r}") from None
        if not address or not object_key or not interface:
            raise MarshalError(f"malformed object reference URL: {url!r}")
        return cls(
            address=address, object_key=object_key, interface=interface, component=component
        )

    def __str__(self) -> str:
        return self.to_url()
