"""Multiplexed client channels: request pipelining over one connection.

The original client path kept one connection per (calling thread,
endpoint) and ran the lock-step read-your-own-reply loop inline, so N
client threads cost N connections and each call held its connection
hostage for the full round trip. A :class:`MuxChannel` is the shared
alternative: one connection per (client ORB, endpoint), any number of
concurrent requests in flight, and a single demux reader thread that
routes each reply to its waiter by GIOP request id.

Protocol properties the demux relies on (and the adversarial
interleaving suite pins down):

- request ids are unique per client ORB, so a reply matches at most one
  waiter;
- replies may complete out of order — waiters park on their own event,
  never on the connection;
- a duplicate or stale reply id matches no waiter and is dropped
  (counted, when telemetry is enabled) instead of corrupting another
  call;
- a transport failure fails *all* outstanding waiters at once, since a
  shared connection's loss is every pipelined call's loss.
"""

from __future__ import annotations

import threading

from repro.errors import TransportError
from repro.orb.giop import ReplyMessage, decode_message
from repro.platform.network import Connection
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE
from repro.telemetry.runtime import metrics_binder

_PENDING = NULL_GAUGE
_STALE_REPLIES = NULL_COUNTER
_MALFORMED = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    global _PENDING, _STALE_REPLIES, _MALFORMED
    if registry is None:
        _PENDING = NULL_GAUGE
        _STALE_REPLIES = NULL_COUNTER
        _MALFORMED = NULL_COUNTER
        return
    _PENDING = registry.gauge(
        "repro_orb_mux_pending_requests",
        "Requests pipelined on shared client channels, awaiting demux.",
    )
    _STALE_REPLIES = registry.counter(
        "repro_orb_mux_stale_replies_total",
        "Replies whose request id matched no waiter (duplicate or stale).",
    )
    _MALFORMED = registry.counter(
        "repro_orb_mux_malformed_replies_total",
        "Client-side payloads that failed to decode (dropped).",
    )


class _Waiter:
    """One parked caller: a one-shot lock plus the routed reply or error.

    The park/wake primitive is a raw lock acquired at construction: the
    caller parks by acquiring it again (blocking in C), the demux thread
    wakes it by releasing. This is the cheapest handoff CPython offers —
    no Condition, no waiter list — and each waiter is woken at most once
    (whoever pops it from the pending table owns the release).
    """

    __slots__ = ("lock", "reply", "error")

    def __init__(self):
        self.lock = threading.Lock()
        self.lock.acquire()
        self.reply: ReplyMessage | None = None
        self.error: TransportError | None = None

    def wake(self) -> None:
        self.lock.release()


class MuxChannel:
    """One shared connection to an endpoint, demultiplexed by request id."""

    def __init__(self, conn: Connection, process):
        self._conn = conn
        self._pending: dict[int, _Waiter] = {}
        self._lock = threading.Lock()
        self._failure: TransportError | None = None
        process.spawn_thread(
            self._demux_loop, name=f"mux-{conn.peer_label}", args=()
        )

    @property
    def closed(self) -> bool:
        return self._conn.closed or self._failure is not None

    def close(self) -> None:
        """Tear the channel down; outstanding waiters fail promptly."""
        self._conn.close()
        self._fail_all(
            TransportError(f"connection {self._conn.local_label} closed by peer")
        )

    # -- caller side ----------------------------------------------------

    def call(
        self,
        request_id: int,
        payload: bytes,
        sender_host,
        oneway: bool,
        timeout: float | None,
    ) -> ReplyMessage | None:
        """Send one framed request; block for its own reply unless oneway."""
        if oneway:
            self._conn.send(payload, sender_host=sender_host)
            return None
        waiter = _Waiter()
        with self._lock:
            failure = self._failure
            if failure is None:
                self._pending[request_id] = waiter
        if failure is not None:
            raise TransportError(str(failure))
        _PENDING.inc()
        try:
            try:
                self._conn.send(payload, sender_host=sender_host)
            except BaseException:
                with self._lock:
                    self._pending.pop(request_id, None)
                raise
            if not waiter.lock.acquire(timeout=-1 if timeout is None else timeout):
                with self._lock:
                    self._pending.pop(request_id, None)
                raise TransportError(
                    f"recv timed out on {self._conn.local_label}"
                    f"<-{self._conn.peer_label}"
                )
        finally:
            _PENDING.dec()
        if waiter.error is not None:
            raise TransportError(str(waiter.error))
        return waiter.reply

    # -- demux reader ---------------------------------------------------

    def _demux_loop(self) -> None:
        conn = self._conn
        while True:
            try:
                payload = conn.recv(timeout=None)
            except TransportError as exc:
                self._fail_all(exc)
                return
            try:
                message = decode_message(payload)
            except Exception as exc:
                # An undecodable reply cannot be routed to its waiter, so
                # every pipelined caller fails promptly — with a single
                # outstanding call this reproduces the lock-step path's
                # immediate "undecodable reply payload" error exactly.
                # The connection itself is still framed and usable, so
                # the channel survives for subsequent calls (as the
                # lock-step path's connection did).
                _MALFORMED.inc()
                self._fail_pending(
                    TransportError(f"undecodable reply payload: {exc}")
                )
                continue
            if not isinstance(message, ReplyMessage):
                continue
            with self._lock:
                waiter = self._pending.pop(message.request_id, None)
            if waiter is None:
                _STALE_REPLIES.inc()
                continue
            waiter.reply = message
            waiter.wake()

    def _fail_pending(self, exc: TransportError) -> None:
        """Fail current waiters but keep the channel open for new calls."""
        with self._lock:
            waiters = list(self._pending.values())
            self._pending.clear()
        for waiter in waiters:
            waiter.error = exc
            waiter.wake()

    def _fail_all(self, exc: TransportError) -> None:
        """Mark the channel dead and fail every outstanding waiter."""
        with self._lock:
            if self._failure is None:
                self._failure = exc
        self._fail_pending(exc)
