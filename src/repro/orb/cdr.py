"""CDR-style marshalling codec.

A simplified Common Data Representation: big-endian, with natural
alignment of primitives relative to the start of the encapsulation, as in
GIOP. Strings are length-prefixed (including a terminating NUL, as CDR
does); sequences are length-prefixed element streams.

The IDL type model (:mod:`repro.idl.types`) drives these primitives; the
generated stubs and skeletons never touch raw bytes directly.
"""

from __future__ import annotations

import struct

from repro.errors import MarshalError

_FORMATS = {
    "octet": ("B", 1),
    "boolean": ("B", 1),
    "char": ("B", 1),
    "short": ("h", 2),
    "unsigned short": ("H", 2),
    "long": ("i", 4),
    "unsigned long": ("I", 4),
    "long long": ("q", 8),
    "unsigned long long": ("Q", 8),
    "float": ("f", 4),
    "double": ("d", 8),
}

# Precompiled big-endian codecs: struct.Struct.pack/unpack_from skip the
# per-call format-string parse that module-level struct.pack pays, and
# every GIOP message body funnels through these.
_STRUCTS = {kind: (struct.Struct(">" + fmt), size) for kind, (fmt, size) in _FORMATS.items()}
_ULONG = _STRUCTS["unsigned long"][0]


class CdrEncoder:
    """Append-only big-endian encoder with CDR alignment."""

    def __init__(self):
        self._chunks = bytearray()

    def _align(self, size: int) -> None:
        remainder = len(self._chunks) % size
        if remainder:
            self._chunks.extend(b"\x00" * (size - remainder))

    def write_primitive(self, kind: str, value) -> None:
        try:
            codec, size = _STRUCTS[kind]
        except KeyError:
            raise MarshalError(f"unknown primitive kind {kind!r}") from None
        self._align(size)
        try:
            if kind == "boolean":
                value = 1 if value else 0
            elif kind == "char":
                if isinstance(value, str):
                    if len(value) != 1:
                        raise MarshalError(f"char must be a single character, got {value!r}")
                    value = ord(value)
            self._chunks.extend(codec.pack(value))
        except struct.error as exc:
            raise MarshalError(f"cannot marshal {value!r} as {kind}: {exc}") from None

    def _write_ulong(self, value: int) -> None:
        self._align(4)
        try:
            self._chunks.extend(_ULONG.pack(value))
        except struct.error as exc:
            raise MarshalError(
                f"cannot marshal {value!r} as unsigned long: {exc}"
            ) from None

    def write_string(self, value: str) -> None:
        if not isinstance(value, str):
            raise MarshalError(f"expected str, got {type(value).__name__}")
        encoded = value.encode("utf-8") + b"\x00"
        self._write_ulong(len(encoded))
        self._chunks.extend(encoded)

    def write_bytes(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise MarshalError(f"expected bytes, got {type(value).__name__}")
        self._write_ulong(len(value))
        self._chunks.extend(value)

    def write_length(self, value: int) -> None:
        self._write_ulong(value)

    def getvalue(self) -> bytes:
        return bytes(self._chunks)

    def getbuffer(self) -> bytearray:
        """The live backing buffer — no copy.

        Callers that immediately hand the payload to a transport (which
        treats it as read-only) use this to skip the ``bytes()`` copy
        that :meth:`getvalue` pays; the encoder must not be written to
        afterwards.
        """
        return self._chunks

    def __len__(self) -> int:
        return len(self._chunks)


class CdrDecoder:
    """Matching decoder; raises :class:`MarshalError` on underrun.

    Accepts ``bytes`` or a ``memoryview``: GIOP decoding hands body and
    FTL regions to consumers as zero-copy views over the received frame,
    so nested decoders never re-copy the payload.
    """

    def __init__(self, payload: bytes | bytearray | memoryview):
        self._payload = payload
        self._pos = 0

    def _align(self, size: int) -> None:
        remainder = self._pos % size
        if remainder:
            self._pos += size - remainder

    def read_primitive(self, kind: str):
        try:
            codec, size = _STRUCTS[kind]
        except KeyError:
            raise MarshalError(f"unknown primitive kind {kind!r}") from None
        self._align(size)
        end = self._pos + size
        if end > len(self._payload):
            raise MarshalError(f"buffer underrun reading {kind}")
        (value,) = codec.unpack_from(self._payload, self._pos)
        self._pos = end
        if kind == "boolean":
            return bool(value)
        if kind == "char":
            return chr(value)
        return value

    def _read_ulong(self) -> int:
        self._align(4)
        end = self._pos + 4
        if end > len(self._payload):
            raise MarshalError("buffer underrun reading unsigned long")
        (value,) = _ULONG.unpack_from(self._payload, self._pos)
        self._pos = end
        return value

    def read_string(self) -> str:
        length = self._read_ulong()
        end = self._pos + length
        if end > len(self._payload):
            raise MarshalError("buffer underrun reading string")
        raw = self._payload[self._pos : end]
        self._pos = end
        # Indexed NUL check (not .endswith) so memoryview payloads work.
        if length == 0 or raw[-1] != 0:
            raise MarshalError("string missing NUL terminator")
        return bytes(raw[:-1]).decode("utf-8")

    def read_bytes(self) -> bytes:
        length = self._read_ulong()
        end = self._pos + length
        if end > len(self._payload):
            raise MarshalError("buffer underrun reading bytes")
        raw = self._payload[self._pos : end]
        self._pos = end
        return bytes(raw)

    def read_length(self) -> int:
        return self._read_ulong()

    @property
    def remaining(self) -> int:
        return len(self._payload) - self._pos

    def expect_exhausted(self) -> None:
        # Trailing alignment padding (up to 7 zero bytes) is legitimate.
        tail = self._payload[self._pos :]
        if len(tail) >= 8 or any(tail):
            raise MarshalError(f"{len(tail)} unread bytes left in buffer")
