"""The per-process ORB runtime (ORBlite stand-in).

One :class:`Orb` is attached to each simulated process. It owns:

- the network endpoint (it starts listening at construction, so loopback
  calls inside one process travel the same path as remote ones — that is
  the "collocated call with optimization turned off" configuration of the
  paper's latency experiment),
- the object adapter mapping object keys to skeletons,
- the server threading policy (thread-per-request by default, matching
  the Section-2.1 baseline),
- client connection management: by default one *multiplexed* connection
  per target endpoint shared by every calling thread, with replies
  demultiplexed by request id (true request pipelining); the legacy
  ``channel="per-thread"`` mode keeps one connection per calling thread
  and the lock-step read-your-own-reply loop,
- collocation optimization (on by default; the generated stubs consult
  :meth:`Orb.collocated_servant` and short-circuit through the direct
  pointer when allowed),
- marshal-by-value support (custom marshalling, Section 2.2): servants
  activated ``by_value=True`` are copied to the client process at resolve
  time and run in the client's thread context.
"""

from __future__ import annotations

import asyncio
import copy
import itertools
import threading
import time
from typing import Any

from repro.errors import ComponentCrash, ObjectNotFound, OrbError, TransportError
from repro.orb.aio.channel import AsyncMuxChannel
from repro.orb.aio.framing import (
    ASYNC_STREAM_PRELUDE,
    FramedConnectionWriter,
    StreamFrameParser,
)
from repro.orb.channel import MuxChannel
from repro.orb.giop import (
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    decode_message,
    encode_request,
)
from repro.orb.poa import ObjectAdapter
from repro.orb.refs import ObjectRef
from repro.orb.runtime import GLOBAL_INTERFACE_REGISTRY, InterfaceRegistry
from repro.orb.threading_policies import ThreadingPolicy, ThreadPerRequest
from repro.platform.network import Connection, Network
from repro.platform.process import SimProcess
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.telemetry.runtime import metrics_binder

# Framework self-metrics (no-ops until repro.telemetry.enable()). The
# enabled flag gates the dispatch clock reads so the metrics-off path
# never touches perf_counter_ns.
_TELEMETRY_ON = False
_REQUESTS = {False: NULL_COUNTER, True: NULL_COUNTER}  # keyed by oneway
_INFLIGHT = NULL_GAUGE
_DISPATCH_TOTAL = NULL_COUNTER
_DISPATCH_NS = NULL_HISTOGRAM
_DISPATCH_NOT_FOUND = NULL_COUNTER
_MALFORMED = NULL_COUNTER
_CRASHED_DISPATCHES = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    global _TELEMETRY_ON, _INFLIGHT, _DISPATCH_TOTAL, _DISPATCH_NS, _DISPATCH_NOT_FOUND
    global _MALFORMED, _CRASHED_DISPATCHES
    if registry is None:
        _TELEMETRY_ON = False
        _REQUESTS[False] = _REQUESTS[True] = NULL_COUNTER
        _INFLIGHT = NULL_GAUGE
        _DISPATCH_TOTAL = NULL_COUNTER
        _DISPATCH_NS = NULL_HISTOGRAM
        _DISPATCH_NOT_FOUND = NULL_COUNTER
        _MALFORMED = NULL_COUNTER
        _CRASHED_DISPATCHES = NULL_COUNTER
        return
    requests = registry.counter(
        "repro_orb_requests_total",
        "Client-side ORB requests sent, by call kind.",
        labels=("kind",),
    )
    _REQUESTS[False] = requests.labels("sync")
    _REQUESTS[True] = requests.labels("oneway")
    _INFLIGHT = registry.gauge(
        "repro_orb_inflight_requests",
        "Client-side ORB requests currently awaiting a reply.",
    )
    _DISPATCH_TOTAL = registry.counter(
        "repro_orb_dispatch_total",
        "Server-side ORB request dispatches (skeleton invocations).",
    )
    _DISPATCH_NS = registry.histogram(
        "repro_orb_dispatch_ns",
        "Wall time of one server-side dispatch, skeleton included, in ns.",
    )
    _DISPATCH_NOT_FOUND = registry.counter(
        "repro_orb_dispatch_object_not_found_total",
        "Dispatches rejected because the object key was not active.",
    )
    _MALFORMED = registry.counter(
        "repro_orb_malformed_messages_total",
        "Wire payloads that failed to decode (dropped, reader kept alive).",
    )
    _CRASHED_DISPATCHES = registry.counter(
        "repro_orb_crashed_dispatches_total",
        "Dispatches aborted by an injected component crash (no reply sent).",
    )
    _TELEMETRY_ON = True


class _ByValueRegistry:
    """Network-wide registry of marshal-by-value servants."""

    def __init__(self):
        self._servants: dict[str, Any] = {}
        self._lock = threading.Lock()

    def register(self, url: str, servant: Any) -> None:
        with self._lock:
            self._servants[url] = servant

    def lookup(self, url: str) -> Any:
        with self._lock:
            return self._servants.get(url)


def _by_value_registry(network: Network) -> _ByValueRegistry:
    registry = getattr(network, "_repro_by_value", None)
    if registry is None:
        registry = _ByValueRegistry()
        network._repro_by_value = registry
    return registry


class Orb:
    """ORB runtime for one simulated process."""

    def __init__(
        self,
        process: SimProcess,
        network: Network,
        policy: ThreadingPolicy | None = None,
        collocation_optimization: bool = True,
        registry: InterfaceRegistry | None = None,
        request_timeout: float = 30.0,
        channel: str = "mux",
    ):
        if channel not in ("mux", "per-thread", "asyncio"):
            raise OrbError(f"unknown channel mode {channel!r}")
        self.process = process
        self.network = network
        self.address = process.name
        self.adapter = ObjectAdapter(self.address)
        self.policy = policy if policy is not None else ThreadPerRequest()
        self.collocation_optimization = collocation_optimization
        self.registry = registry if registry is not None else GLOBAL_INTERFACE_REGISTRY
        self.request_timeout = request_timeout
        self.channel_mode = channel
        self._client_state = threading.local()
        self._channels: dict[str, MuxChannel] = {}
        self._async_channels: dict[str, AsyncMuxChannel] = {}
        self._channels_lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._connection_serial = itertools.count(1)
        #: Per-operation constant request-frame middles (see encode_request).
        self._request_templates: dict[tuple, bytes] = {}
        self._server_connections: list[Connection] = []
        self._server_connections_lock = threading.Lock()
        self._shut_down = False
        process.orb = self
        self.policy.start(process)
        network.listen(self.address, self._on_connect)

    # ------------------------------------------------------------------
    # Activation / resolution

    def activate(
        self,
        servant: Any,
        interface: str | None = None,
        object_key: str | None = None,
        component: str | None = None,
        by_value: bool = False,
    ) -> ObjectRef:
        """Activate a servant and return its object reference.

        ``interface`` defaults to the servant base's scoped interface name
        (generated servant bases carry ``_repro_interface``). ``component``
        defaults to the servant class name. With ``by_value=True`` the
        servant is additionally registered for marshal-by-value: remote
        resolvers receive a deep copy running in their own thread context.
        """
        if interface is None:
            interface = getattr(servant, "_repro_interface", None)
            if interface is None:
                raise OrbError(
                    f"cannot infer interface for {servant!r}; pass interface= explicitly"
                )
        skeleton_class = self.registry.skeleton_class(interface)
        component = component or type(servant).__name__
        # Reserve the key first so the skeleton knows its identity.
        object_key = self.adapter.reserve(object_key)
        skeleton = skeleton_class(servant, self, object_key, component)
        self.adapter.install(object_key, skeleton)
        ref = ObjectRef(
            address=self.address,
            object_key=object_key,
            interface=interface,
            component=component,
        )
        servant._repro_object_ref = ref
        if by_value:
            _by_value_registry(self.network).register(ref.to_url(), servant)
        return ref

    def resolve(self, ref_or_url: ObjectRef | str) -> Any:
        """Create a stub for an object reference.

        If the reference was activated marshal-by-value, a deep copy of
        the servant is installed locally and a collocated stub over the
        copy is returned ("custom marshalling ... basically turns remote
        calls into collocated calls").
        """
        ref = (
            ObjectRef.from_url(ref_or_url) if isinstance(ref_or_url, str) else ref_or_url
        )
        by_value = _by_value_registry(self.network).lookup(ref.to_url())
        if by_value is not None and ref.address != self.address:
            local_copy = copy.deepcopy(by_value)
            local_ref = self.activate(
                local_copy,
                interface=ref.interface,
                component=ref.component or type(local_copy).__name__,
            )
            ref = local_ref
        stub_class = self.registry.stub_class(ref.interface)
        return stub_class(self, ref)

    def localize(self, value: Any) -> Any:
        """Convert unmarshalled ObjectRef values into live stubs."""
        if isinstance(value, ObjectRef):
            return self.resolve(value)
        if isinstance(value, list):
            return [self.localize(item) for item in value]
        return value

    def collocated_servant(self, ref: ObjectRef) -> Any:
        """Return the servant for a same-process reference, if optimizable."""
        if not self.collocation_optimization or self._shut_down:
            return None
        if ref.address != self.address:
            return None
        skeleton = self.adapter.try_find(ref.object_key)
        if skeleton is None:
            return None
        return skeleton.servant

    # ------------------------------------------------------------------
    # Client side

    def _connections(self) -> dict[str, Connection]:
        connections = getattr(self._client_state, "connections", None)
        if connections is None:
            connections = {}
            self._client_state.connections = connections
        return connections

    def _connection_to(self, address: str) -> Connection:
        connections = self._connections()
        conn = connections.get(address)
        if conn is None or conn.closed:
            label = f"{self.address}/t{next(self._connection_serial)}"
            conn = self.network.connect(label, address)
            connections[address] = conn
        return conn

    def _channel_to(self, address: str) -> MuxChannel:
        """The shared multiplexed channel to ``address`` (created lazily).

        One connection per endpoint regardless of calling-thread count; a
        dead channel (peer reset, injected fault) is replaced on the next
        call, mirroring the per-thread mode's reconnect-after-close.

        Fast path first: a healthy cached channel is returned from a
        GIL-atomic dict read, so pipelined caller threads never serialize
        on the channel-table lock; the lock only guards (re)connection.
        """
        chan = self._channels.get(address)
        if chan is not None and not chan.closed:
            return chan
        with self._channels_lock:
            chan = self._channels.get(address)
            if chan is None or chan.closed:
                label = f"{self.address}/t{next(self._connection_serial)}"
                conn = self.network.connect(label, address)
                chan = MuxChannel(conn, self.process)
                self._channels[address] = chan
            return chan

    def _async_channel_to(self, address: str) -> AsyncMuxChannel:
        """The shared awaitable channel to ``address`` (created lazily).

        Channels are bound to the event loop that created them: a cached
        channel whose loop is not the *running* loop (a previous
        ``asyncio.run`` epoch) is replaced, like a dead threaded channel.
        """
        loop = asyncio.get_running_loop()
        chan = self._async_channels.get(address)
        if chan is not None and not chan.closed and chan.loop is loop:
            return chan
        with self._channels_lock:
            chan = self._async_channels.get(address)
            if chan is None or chan.closed or chan.loop is not loop:
                label = f"{self.address}/t{next(self._connection_serial)}"
                conn = self.network.connect(label, address)
                chan = AsyncMuxChannel(conn, self.process, loop)
                self._async_channels[address] = chan
            return chan

    async def send_request_async(
        self,
        ref: ObjectRef,
        operation: str,
        body: bytes,
        oneway: bool,
        ftl: bytes | None,
    ) -> ReplyMessage | None:
        """Awaitable twin of :meth:`send_request`, used by async stubs.

        Same frame bytes (shared request-template cache), same request-id
        space; the call parks on an asyncio future instead of an OS
        thread, so in-flight depth is bounded by memory, not threads.
        """
        if self._shut_down:
            raise OrbError("ORB has been shut down")
        request_id = next(self._request_ids)
        payload = encode_request(
            request_id,
            ref.object_key,
            ref.interface,
            operation,
            oneway,
            body,
            ftl,
            self._request_templates,
        )
        _REQUESTS[oneway].inc()
        channel = self._async_channel_to(ref.address)
        if oneway:
            await channel.call(
                request_id, payload, self.process.host, oneway=True, timeout=None
            )
            return None
        _INFLIGHT.inc()
        try:
            return await channel.call(
                request_id,
                payload,
                self.process.host,
                oneway=False,
                timeout=self.request_timeout,
            )
        finally:
            _INFLIGHT.dec()

    def send_request(
        self,
        ref: ObjectRef,
        operation: str,
        body: bytes,
        oneway: bool,
        ftl: bytes | None,
    ) -> ReplyMessage | None:
        """Marshal-level entry point used by generated stubs."""
        if self._shut_down:
            raise OrbError("ORB has been shut down")
        request_id = next(self._request_ids)
        payload = encode_request(
            request_id,
            ref.object_key,
            ref.interface,
            operation,
            oneway,
            body,
            ftl,
            self._request_templates,
        )
        _REQUESTS[oneway].inc()
        # channel="asyncio" only changes the *async* client path; sync
        # callers on an asyncio-mode ORB ride the threaded mux channel.
        if self.channel_mode != "per-thread":
            channel = self._channel_to(ref.address)
            if oneway:
                channel.call(
                    request_id,
                    payload,
                    self.process.host,
                    oneway=True,
                    timeout=None,
                )
                return None
            _INFLIGHT.inc()
            try:
                return channel.call(
                    request_id,
                    payload,
                    self.process.host,
                    oneway=False,
                    timeout=self.request_timeout,
                )
            finally:
                _INFLIGHT.dec()
        conn = self._connection_to(ref.address)
        conn.send(payload, sender_host=self.process.host)
        if oneway:
            return None
        _INFLIGHT.inc()
        try:
            while True:
                payload = conn.recv(timeout=self.request_timeout)
                try:
                    reply = decode_message(payload)
                except TransportError:
                    raise
                except Exception as exc:
                    # A corrupt/truncated reply must surface as a transport
                    # failure, not a decoder crash in the caller's stack.
                    _MALFORMED.inc()
                    raise TransportError(f"undecodable reply payload: {exc}") from exc
                if not isinstance(reply, ReplyMessage):
                    raise TransportError("expected a reply message")
                if reply.request_id == request_id:
                    return reply
                # Connections are per calling thread, so a mismatched id means
                # a stale reply from an abandoned call; skip it.
        finally:
            _INFLIGHT.dec()

    # ------------------------------------------------------------------
    # Server side

    def _on_connect(self, conn: Connection) -> None:
        with self._server_connections_lock:
            self._server_connections.append(conn)
        self.process.spawn_thread(
            self._reader_loop, name=f"reader-{conn.peer_label}", args=(conn,)
        )

    def _reader_loop(self, conn: Connection) -> None:
        connection_id = f"{conn.peer_label}#{id(conn)}"
        inline = getattr(self.policy, "inline_per_connection", False)
        # Asyncio-plane clients speak a length-prefixed byte *stream*
        # (coalesced writes may pack many frames into one transport
        # message). The prelude, sent before any framed bytes, switches
        # this reader into stream mode; replies then go back framed.
        parser: StreamFrameParser | None = None
        reply_conn: Connection | FramedConnectionWriter = conn
        while not self._shut_down:
            try:
                payload = conn.recv(timeout=None)
            except TransportError:
                return
            if parser is None and payload == ASYNC_STREAM_PRELUDE:
                parser = StreamFrameParser()
                reply_conn = FramedConnectionWriter(conn)
                continue
            if parser is not None:
                try:
                    frames = parser.feed(payload)
                except Exception:
                    # A corrupt length prefix desynchronizes the whole
                    # stream — unlike one bad message, there is no next
                    # frame boundary to resume from. Reset the link.
                    _MALFORMED.inc()
                    conn.close()
                    return
            else:
                frames = (payload,)
            for frame in frames:
                try:
                    message = decode_message(frame)
                except Exception:
                    # A corrupt/truncated request must not kill the reader
                    # thread; drop the payload and keep serving the link.
                    _MALFORMED.inc()
                    continue
                if not isinstance(message, RequestMessage):
                    continue

                def dispatch(message=message, reply_conn=reply_conn):
                    self._dispatch_request(message, reply_conn)

                if inline:
                    dispatch()
                else:
                    self.policy.submit(dispatch, connection_id)

    def _dispatch_request(self, request: RequestMessage, conn: Connection) -> None:
        _DISPATCH_TOTAL.inc()
        try:
            skeleton = self.adapter.find(request.object_key)
        except ObjectNotFound as exc:
            _DISPATCH_NOT_FOUND.inc()
            if not request.oneway:
                from repro.orb.runtime import _marshal_system_exception

                reply = ReplyMessage(
                    request_id=request.request_id,
                    status=ReplyStatus.SYSTEM_EXCEPTION,
                    body=_marshal_system_exception(exc),
                )
                self._send_reply(conn, reply)
            return
        try:
            if _TELEMETRY_ON:
                started = time.perf_counter_ns()
                reply = skeleton.dispatch(request)
                _DISPATCH_NS.observe(time.perf_counter_ns() - started)
            else:
                reply = skeleton.dispatch(request)
        except ComponentCrash:
            # Simulated component death mid-call: the skeleton-end probe
            # never fired and no reply exists. Reset the connection so the
            # client observes the death promptly instead of timing out.
            _CRASHED_DISPATCHES.inc()
            conn.close()
            return
        if asyncio.iscoroutine(reply):
            # Async skeleton: the probes and the servant body live inside
            # the coroutine; run it as its own Task (own context copy,
            # own FTL slot) and reply from the done callback.
            self._finish_async_dispatch(reply, request, conn)
            return
        if reply is not None and not request.oneway:
            self._send_reply(conn, reply)

    def _finish_async_dispatch(self, coro, request: RequestMessage, conn) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            loop = None
        if loop is None:
            # Compatibility path: an async skeleton dispatched by a
            # threaded policy. Drive the coroutine to completion on this
            # worker thread — concurrency comes from the policy, as ever.
            try:
                reply = asyncio.run(coro)
            except ComponentCrash:
                _CRASHED_DISPATCHES.inc()
                conn.close()
                return
            if reply is not None and not request.oneway:
                self._send_reply(conn, reply)
            return
        task = loop.create_task(coro)

        def _done(task, request=request, conn=conn):
            try:
                reply = task.result()
            except (ComponentCrash, asyncio.CancelledError):
                # Crash mid-call (no skel-end probe, no reply) or loop
                # teardown: reset the link so the client fails promptly.
                _CRASHED_DISPATCHES.inc()
                conn.close()
                return
            if reply is not None and not request.oneway:
                self._send_reply(conn, reply)

        task.add_done_callback(_done)

    def _send_reply(self, conn: Connection, reply: ReplyMessage) -> None:
        """Send a reply, tolerating a connection torn down mid-dispatch.

        A client reset (or an injected connection fault) between request
        receipt and reply send must not kill the dispatching thread — a
        pooled policy worker dying would silently shrink the pool.
        """
        try:
            conn.send(reply.encode(), sender_host=self.process.host)
        except TransportError:
            pass

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        self.network.unlisten(self.address)
        with self._channels_lock:
            channels = list(self._channels.values())
            self._channels.clear()
            async_channels = list(self._async_channels.values())
            self._async_channels.clear()
        for channel in channels:
            channel.close()  # unblocks the demux reader thread
        for channel in async_channels:
            channel.close()  # posts failure to the owning loop
        with self._server_connections_lock:
            connections = list(self._server_connections)
        for conn in connections:
            conn.close()  # unblocks the reader thread
        self.policy.shutdown()


def create_orb(process: SimProcess, network: Network, **kwargs) -> Orb:
    """Convenience factory mirroring ``CORBA::ORB_init``."""
    return Orb(process, network, **kwargs)
