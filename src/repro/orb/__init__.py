"""CORBA-like ORB: marshalling, transport, object adapter, threading."""

from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.giop import ReplyMessage, ReplyStatus, RequestMessage, decode_message
from repro.orb.orb import Orb, create_orb
from repro.orb.poa import ObjectAdapter
from repro.orb.refs import ObjectRef
from repro.orb.runtime import (
    GLOBAL_INTERFACE_REGISTRY,
    InterfaceRegistry,
    SkeletonBase,
    StubBase,
)
from repro.orb.threading_policies import (
    AsyncioDispatch,
    ThreadingPolicy,
    ThreadPerConnection,
    ThreadPerRequest,
    ThreadPool,
)

__all__ = [
    "AsyncioDispatch",
    "CdrDecoder",
    "CdrEncoder",
    "GLOBAL_INTERFACE_REGISTRY",
    "InterfaceRegistry",
    "ObjectAdapter",
    "ObjectRef",
    "Orb",
    "ReplyMessage",
    "ReplyStatus",
    "RequestMessage",
    "SkeletonBase",
    "StubBase",
    "ThreadPerConnection",
    "ThreadPerRequest",
    "ThreadPool",
    "ThreadingPolicy",
    "create_orb",
    "decode_message",
]
