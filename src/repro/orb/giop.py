"""GIOP-like message framing for the ORB.

Two message kinds cross the wire: requests and replies. The FTL travels
as a dedicated trailing field — morally the hidden ``inout
Probe::FunctionTxLogType log`` parameter the paper's IDL compiler splices
into every operation (Figure 3); framing it explicitly keeps mismatched
instrumented/uninstrumented peers diagnosable instead of silently
garbling the argument stream.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import MarshalError
from repro.telemetry.metrics import NULL_COUNTER
from repro.telemetry.runtime import metrics_binder

_MAGIC = 0x52504F47  # "RPOG"

# Precompiled header templates. Framing is on the per-call critical path,
# so the fixed prefixes (magic, kind, request id, reply status) pack and
# unpack through one Struct each instead of field-at-a-time CDR writes;
# the pad bytes reproduce CDR natural alignment exactly, keeping frames
# byte-identical to the original encoder.
_REQ_HEAD = struct.Struct(">IBxxxI")  # magic, kind, pad, request_id
_REPLY_HEAD = struct.Struct(">IBxxxIBB")  # ... status, has_ftl
_ULONG = struct.Struct(">I")
_PAD = b"\x00\x00\x00"


def _write_string(buf: bytearray, value: str) -> None:
    """Append one CDR string (align 4, ulong length incl. NUL, bytes, NUL)."""
    if not isinstance(value, str):
        raise MarshalError(f"expected str, got {type(value).__name__}")
    data = value.encode("utf-8")
    pad = -len(buf) % 4
    if pad:
        buf.extend(_PAD[:pad])
    buf.extend(_ULONG.pack(len(data) + 1))
    buf.extend(data)
    buf.append(0)


def _write_blob(buf: bytearray, data) -> None:
    """Append one CDR byte sequence (align 4, ulong length, bytes)."""
    pad = -len(buf) % 4
    if pad:
        buf.extend(_PAD[:pad])
    buf.extend(_ULONG.pack(len(data)))
    buf.extend(data)


def _read_ulong(view, pos: int) -> tuple[int, int]:
    pos += -pos % 4
    if pos + 4 > len(view):
        raise MarshalError("buffer underrun reading unsigned long")
    (value,) = _ULONG.unpack_from(view, pos)
    return value, pos + 4


def _read_string(view, pos: int) -> tuple[str, int]:
    length, pos = _read_ulong(view, pos)
    end = pos + length
    if end > len(view):
        raise MarshalError("buffer underrun reading string")
    if length == 0 or view[end - 1] != 0:
        raise MarshalError("string missing NUL terminator")
    return bytes(view[pos : end - 1]).decode("utf-8"), end


def _read_blob(view, pos: int):
    """Read one byte sequence as a zero-copy slice of the frame view."""
    length, pos = _read_ulong(view, pos)
    end = pos + length
    if end > len(view):
        raise MarshalError("buffer underrun reading bytes")
    return view[pos:end], end


def _read_octet(view, pos: int) -> tuple[int, int]:
    if pos >= len(view):
        raise MarshalError("buffer underrun reading octet")
    return view[pos], pos + 1

# Framework self-metrics (no-ops until repro.telemetry.enable()): message
# and byte counters keyed (kind, direction) for both framing directions.
_MESSAGES: dict[tuple[str, str], object] = {}
_BYTES: dict[tuple[str, str], object] = {}
for _kind in ("request", "reply"):
    for _direction in ("encode", "decode"):
        _MESSAGES[(_kind, _direction)] = NULL_COUNTER
        _BYTES[(_kind, _direction)] = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    if registry is None:
        for key in _MESSAGES:
            _MESSAGES[key] = NULL_COUNTER
            _BYTES[key] = NULL_COUNTER
        return
    messages = registry.counter(
        "repro_giop_messages_total",
        "GIOP-like messages framed, by message kind and direction.",
        labels=("kind", "direction"),
    )
    size = registry.counter(
        "repro_giop_bytes_total",
        "Bytes of GIOP-like messages framed, by message kind and direction.",
        labels=("kind", "direction"),
    )
    for key in _MESSAGES:
        _MESSAGES[key] = messages.labels(*key)
        _BYTES[key] = size.labels(*key)


class MessageKind(enum.IntEnum):
    REQUEST = 0
    REPLY = 1


class ReplyStatus(enum.IntEnum):
    OK = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2


def encode_request(
    request_id: int,
    object_key: str,
    interface: str,
    operation: str,
    oneway: bool,
    body,
    ftl,
    template_cache: dict,
) -> bytes:
    """Frame one request, memoizing the constant middle of the frame.

    For a given stub operation the object key, interface, operation and
    oneway flag never change, so everything between the 12-byte header
    and the FTL/body blobs is cached as one ``bytes`` template on first
    use (the cache lives on the client ORB). Alignment is computed
    against a 12-byte placeholder head, so the result is byte-identical
    to :meth:`RequestMessage.encode`.
    """
    key = (object_key, interface, operation, oneway)
    template = template_cache.get(key)
    if template is None:
        tmp = bytearray(12)
        _write_string(tmp, object_key)
        _write_string(tmp, interface)
        _write_string(tmp, operation)
        tmp.append(1 if oneway else 0)
        template = bytes(tmp[12:])
        template_cache[key] = template
    buf = bytearray(_REQ_HEAD.pack(_MAGIC, MessageKind.REQUEST, request_id))
    buf += template
    if ftl is None:
        buf.append(0)
    else:
        buf.append(1)
        _write_blob(buf, ftl)
    _write_blob(buf, body)
    _MESSAGES[("request", "encode")].inc()
    _BYTES[("request", "encode")].inc(len(buf))
    return bytes(buf)


@dataclass
class RequestMessage:
    request_id: int
    object_key: str
    interface: str
    operation: str
    oneway: bool
    #: Decoded messages carry zero-copy memoryview slices of the frame.
    body: bytes | bytearray | memoryview
    ftl: bytes | memoryview | None = None

    def encode(self) -> bytes:
        buf = bytearray(_REQ_HEAD.pack(_MAGIC, MessageKind.REQUEST, self.request_id))
        _write_string(buf, self.object_key)
        _write_string(buf, self.interface)
        _write_string(buf, self.operation)
        buf.append(1 if self.oneway else 0)
        ftl = self.ftl
        if ftl is None:
            buf.append(0)
        else:
            buf.append(1)
            _write_blob(buf, ftl)
        _write_blob(buf, self.body)
        _MESSAGES[("request", "encode")].inc()
        _BYTES[("request", "encode")].inc(len(buf))
        return bytes(buf)


@dataclass
class ReplyMessage:
    request_id: int
    status: ReplyStatus
    body: bytes | bytearray | memoryview
    ftl: bytes | memoryview | None = None

    def encode(self) -> bytes:
        buf = bytearray(
            _REPLY_HEAD.pack(
                _MAGIC,
                MessageKind.REPLY,
                self.request_id,
                int(self.status),
                0 if self.ftl is None else 1,
            )
        )
        if self.ftl is not None:
            _write_blob(buf, self.ftl)
        _write_blob(buf, self.body)
        _MESSAGES[("reply", "encode")].inc()
        _BYTES[("reply", "encode")].inc(len(buf))
        return bytes(buf)


def decode_message(payload: bytes) -> RequestMessage | ReplyMessage:
    """Decode one framed message, dispatching on the kind octet.

    Zero-copy: ``body`` and ``ftl`` come back as memoryview slices over
    the received frame, so argument unmarshalling and FTL adoption read
    the wire bytes in place. (``memoryview == bytes`` compares contents,
    so message equality is unaffected.)
    """
    view = memoryview(payload)
    magic, pos = _read_ulong(view, 0)
    if magic != _MAGIC:
        raise MarshalError(f"bad message magic {magic:#x}")
    kind, pos = _read_octet(view, pos)
    if kind == MessageKind.REQUEST:
        # Inlined header parse: requests are decoded once per dispatched
        # call on the server's reader thread, so the ulong/string readers
        # are unrolled here (same byte layout, same error messages).
        length = len(view)
        if length < 12:
            raise MarshalError("buffer underrun reading unsigned long")
        (request_id,) = _ULONG.unpack_from(view, 8)
        pos = 12
        strings = []
        for _ in range(3):
            pos += -pos % 4
            if pos + 4 > length:
                raise MarshalError("buffer underrun reading unsigned long")
            (str_len,) = _ULONG.unpack_from(view, pos)
            pos += 4
            end = pos + str_len
            if end > length:
                raise MarshalError("buffer underrun reading string")
            if str_len == 0 or view[end - 1] != 0:
                raise MarshalError("string missing NUL terminator")
            strings.append(bytes(view[pos : end - 1]).decode("utf-8"))
            pos = end
        object_key, interface, operation = strings
        if pos + 2 > len(view):
            raise MarshalError("buffer underrun reading boolean")
        oneway = bool(view[pos])
        has_ftl = view[pos + 1]
        pos += 2
        ftl = None
        if has_ftl:
            ftl, pos = _read_blob(view, pos)
        body, pos = _read_blob(view, pos)
        _MESSAGES[("request", "decode")].inc()
        _BYTES[("request", "decode")].inc(len(payload))
        return RequestMessage(
            request_id=request_id,
            object_key=object_key,
            interface=interface,
            operation=operation,
            oneway=oneway,
            body=body,
            ftl=ftl,
        )
    if kind == MessageKind.REPLY:
        request_id, pos = _read_ulong(view, pos)
        status_octet, pos = _read_octet(view, pos)
        status = ReplyStatus(status_octet)
        if pos >= len(view):
            raise MarshalError("buffer underrun reading boolean")
        has_ftl = view[pos]
        pos += 1
        ftl = None
        if has_ftl:
            ftl, pos = _read_blob(view, pos)
        body, pos = _read_blob(view, pos)
        _MESSAGES[("reply", "decode")].inc()
        _BYTES[("reply", "decode")].inc(len(payload))
        return ReplyMessage(request_id=request_id, status=status, body=body, ftl=ftl)
    raise MarshalError(f"unknown message kind {kind}")
