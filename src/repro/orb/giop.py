"""GIOP-like message framing for the ORB.

Two message kinds cross the wire: requests and replies. The FTL travels
as a dedicated trailing field — morally the hidden ``inout
Probe::FunctionTxLogType log`` parameter the paper's IDL compiler splices
into every operation (Figure 3); framing it explicitly keeps mismatched
instrumented/uninstrumented peers diagnosable instead of silently
garbling the argument stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MarshalError
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.telemetry.metrics import NULL_COUNTER
from repro.telemetry.runtime import metrics_binder

_MAGIC = 0x52504F47  # "RPOG"

# Framework self-metrics (no-ops until repro.telemetry.enable()): message
# and byte counters keyed (kind, direction) for both framing directions.
_MESSAGES: dict[tuple[str, str], object] = {}
_BYTES: dict[tuple[str, str], object] = {}
for _kind in ("request", "reply"):
    for _direction in ("encode", "decode"):
        _MESSAGES[(_kind, _direction)] = NULL_COUNTER
        _BYTES[(_kind, _direction)] = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    if registry is None:
        for key in _MESSAGES:
            _MESSAGES[key] = NULL_COUNTER
            _BYTES[key] = NULL_COUNTER
        return
    messages = registry.counter(
        "repro_giop_messages_total",
        "GIOP-like messages framed, by message kind and direction.",
        labels=("kind", "direction"),
    )
    size = registry.counter(
        "repro_giop_bytes_total",
        "Bytes of GIOP-like messages framed, by message kind and direction.",
        labels=("kind", "direction"),
    )
    for key in _MESSAGES:
        _MESSAGES[key] = messages.labels(*key)
        _BYTES[key] = size.labels(*key)


class MessageKind(enum.IntEnum):
    REQUEST = 0
    REPLY = 1


class ReplyStatus(enum.IntEnum):
    OK = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2


@dataclass
class RequestMessage:
    request_id: int
    object_key: str
    interface: str
    operation: str
    oneway: bool
    body: bytes
    ftl: bytes | None = None

    def encode(self) -> bytes:
        encoder = CdrEncoder()
        encoder.write_primitive("unsigned long", _MAGIC)
        encoder.write_primitive("octet", MessageKind.REQUEST)
        encoder.write_primitive("unsigned long", self.request_id)
        encoder.write_string(self.object_key)
        encoder.write_string(self.interface)
        encoder.write_string(self.operation)
        encoder.write_primitive("boolean", self.oneway)
        encoder.write_primitive("boolean", self.ftl is not None)
        if self.ftl is not None:
            encoder.write_bytes(self.ftl)
        encoder.write_bytes(self.body)
        payload = encoder.getvalue()
        _MESSAGES[("request", "encode")].inc()
        _BYTES[("request", "encode")].inc(len(payload))
        return payload


@dataclass
class ReplyMessage:
    request_id: int
    status: ReplyStatus
    body: bytes
    ftl: bytes | None = None

    def encode(self) -> bytes:
        encoder = CdrEncoder()
        encoder.write_primitive("unsigned long", _MAGIC)
        encoder.write_primitive("octet", MessageKind.REPLY)
        encoder.write_primitive("unsigned long", self.request_id)
        encoder.write_primitive("octet", int(self.status))
        encoder.write_primitive("boolean", self.ftl is not None)
        if self.ftl is not None:
            encoder.write_bytes(self.ftl)
        encoder.write_bytes(self.body)
        payload = encoder.getvalue()
        _MESSAGES[("reply", "encode")].inc()
        _BYTES[("reply", "encode")].inc(len(payload))
        return payload


def decode_message(payload: bytes) -> RequestMessage | ReplyMessage:
    """Decode one framed message, dispatching on the kind octet."""
    decoder = CdrDecoder(payload)
    magic = decoder.read_primitive("unsigned long")
    if magic != _MAGIC:
        raise MarshalError(f"bad message magic {magic:#x}")
    kind = decoder.read_primitive("octet")
    if kind == MessageKind.REQUEST:
        request_id = decoder.read_primitive("unsigned long")
        object_key = decoder.read_string()
        interface = decoder.read_string()
        operation = decoder.read_string()
        oneway = decoder.read_primitive("boolean")
        has_ftl = decoder.read_primitive("boolean")
        ftl = decoder.read_bytes() if has_ftl else None
        body = decoder.read_bytes()
        _MESSAGES[("request", "decode")].inc()
        _BYTES[("request", "decode")].inc(len(payload))
        return RequestMessage(
            request_id=request_id,
            object_key=object_key,
            interface=interface,
            operation=operation,
            oneway=oneway,
            body=body,
            ftl=ftl,
        )
    if kind == MessageKind.REPLY:
        request_id = decoder.read_primitive("unsigned long")
        status = ReplyStatus(decoder.read_primitive("octet"))
        has_ftl = decoder.read_primitive("boolean")
        ftl = decoder.read_bytes() if has_ftl else None
        body = decoder.read_bytes()
        _MESSAGES[("reply", "decode")].inc()
        _BYTES[("reply", "decode")].inc(len(payload))
        return ReplyMessage(request_id=request_id, status=status, body=body, ftl=ftl)
    raise MarshalError(f"unknown message kind {kind}")
