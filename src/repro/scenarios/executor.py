"""The suite executor: expand, run, check, report.

``run_suite`` expands a :class:`SuiteConfig` into its deterministic
scenario grid, executes scenarios over a bounded worker pool, evaluates
every registered invariant checker against every run, and assembles a
machine-readable :class:`SuiteReport`.

Determinism contract: the report's JSON is **byte-identical** across
executions of the same suite file with the same seed — regardless of
worker count. Everything embedded in it is derived from seeded plans,
virtual clocks and canonical (sorted) aggregations; wall-clock readings
and filesystem paths never enter the report. CI runs the committed
smoke grid twice and diffs the two reports.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.analysis import loss_report, reconstruct
from repro.collector import LogCollector, MonitoringDatabase
from repro.faults import FaultInjector
from repro.platform import VirtualClock
from repro.scenarios.config import (
    ScenarioSpec,
    SuiteConfig,
    SuiteError,
    expand_grid,
)
from repro.scenarios.hooks import make_hook
from repro.scenarios.invariants import (
    CHECKERS,
    InvariantResult,
    ScenarioState,
)
from repro.scenarios.workloads import WORKLOADS, ScenarioContext
from repro.store import SegmentStore

#: Run id every scenario collects under (fresh backend per execution).
SCENARIO_RUN_ID = "scenario"
#: Report schema version (bump when the JSON shape changes).
REPORT_VERSION = 1


@dataclass
class ScenarioOutcome:
    """One scenario's row in the suite report."""

    index: int
    scenario_id: str
    seed: int
    axes: dict
    passed: bool
    invariants: list
    hook_events: list
    accounting: dict

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "scenario_id": self.scenario_id,
            "seed": self.seed,
            "axes": self.axes,
            "passed": self.passed,
            "invariants": [r.to_dict() for r in self.invariants],
            "hook_events": self.hook_events,
            "accounting": self.accounting,
        }


@dataclass
class SuiteReport:
    """The machine-readable result of one suite execution."""

    suite: str
    description: str
    seed: int
    outcomes: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def failures(self) -> list:
        return [o for o in self.outcomes if not o.passed]

    def to_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "suite": self.suite,
            "description": self.description,
            "seed": self.seed,
            "scenarios": len(self.outcomes),
            "passed": self.passed,
            "failed_scenarios": [o.scenario_id for o in self.failures()],
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent: int | None = 2) -> str:
        # sort_keys + no timestamps/paths anywhere == byte-identical
        # reports for identical (suite, seed) runs; CI diffs two of them.
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Single-scenario execution


class _Execution:
    """One live run of a scenario: backend + state, closable."""

    def __init__(self, state: ScenarioState, hooks: list, workdir: str | None):
        self.state = state
        self.hooks = hooks
        self.workdir = workdir

    def close(self) -> None:
        try:
            self.state.backend.close()
        finally:
            if self.workdir is not None:
                shutil.rmtree(self.workdir, ignore_errors=True)


def _make_backend(kind: str, base_dir: str | None):
    """A fresh scenario-private backend; segment stores live in a
    throwaway directory (paths never reach the report)."""
    if kind == "sqlite":
        return MonitoringDatabase(), None
    workdir = tempfile.mkdtemp(prefix="repro-suite-", dir=base_dir)
    return SegmentStore(workdir, auto_compact=0), workdir


def _mirror_factory(spec: ScenarioSpec, base_dir: str | None, owned: list):
    """Factory for the *other* backend kind (cross-backend invariant)."""

    def make():
        other = "segment" if spec.backend == "sqlite" else "sqlite"
        backend, workdir = _make_backend(other, base_dir)
        if workdir is not None:
            owned.append(workdir)
        return backend

    return make


def _execute_scenario(spec: ScenarioSpec, base_dir: str | None) -> _Execution:
    """Run one scenario end to end: workload, hooks, collection,
    canonical accounting. Invariants are evaluated by the caller."""
    hooks = [make_hook(hook_spec) for hook_spec in spec.hooks]
    collectors = [hook for hook in hooks if hook.is_collector]
    if len(collectors) > 1:
        raise SuiteError(
            f"{spec.scenario_id}: at most one collection hook per scenario"
        )

    plan = spec.fault.to_plan(spec.seed)
    for hook in hooks:
        plan = hook.wrap_plan(plan)
    injector = FaultInjector(plan)
    ctx = ScenarioContext(
        spec=spec,
        injector=injector,
        network=injector.network(),
        clock=VirtualClock(),
        hooks=hooks,
    )

    harness = WORKLOADS[spec.workload.name](ctx)
    backend = workdir = None
    try:
        # Delivery faults apply uniformly: every process's probe->collector
        # path goes lossy (a plan without delivery faults passes through).
        for process in harness.processes:
            injector.lossy_delivery(process)

        backend, workdir = _make_backend(spec.backend, base_dir)
        if collectors:
            collectors[0].collect(backend, harness.processes, SCENARIO_RUN_ID)
        else:
            LogCollector(backend=backend, retries=2, backoff_s=0.0).collect(
                harness.processes, run_id=SCENARIO_RUN_ID,
                description=spec.scenario_id,
            )
        for hook in hooks:
            hook.after_collect(backend, SCENARIO_RUN_ID)

        # The canonical accounting dict — the same shape the chaos matrix
        # always asserted determinism over: what happened, what was
        # injected, what was captured, what was lost.
        dscg = reconstruct(backend, SCENARIO_RUN_ID, annotate=True)
        meta = next(
            m for m in backend.runs() if m.run_id == SCENARIO_RUN_ID
        )
        accounting = {
            "client_errors": harness.errors,
            "results": harness.results,
            "faults": injector.summary(),
            "capture": loss_report(dscg).to_dict(),
            "stats": dscg.stats(),
            "collection": meta.extra["loss"],
        }
        owned_mirror_dirs: list = []
        state = ScenarioState(
            spec=spec,
            backend=backend,
            run_id=SCENARIO_RUN_ID,
            accounting=accounting,
            hook_events=[e for hook in hooks for e in hook.events],
            mirror_factory=_mirror_factory(spec, base_dir, owned_mirror_dirs),
            _dscg=dscg,
        )
        execution = _Execution(state, hooks, workdir)
        # Mirror dirs ride along so close() reaps them too.
        execution._mirror_dirs = owned_mirror_dirs
        _real_close = execution.close

        def close():
            _real_close()
            for path in owned_mirror_dirs:
                shutil.rmtree(path, ignore_errors=True)

        execution.close = close
        return execution
    except BaseException:
        if backend is not None:
            backend.close()
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)
        raise
    finally:
        harness.shutdown()


def run_scenario(spec: ScenarioSpec, base_dir: str | None = None) -> ScenarioOutcome:
    """Execute one scenario and evaluate its invariants."""
    wants_determinism = any(
        inv.name == "deterministic_accounting" for inv in spec.invariants
    )
    execution = _execute_scenario(spec, base_dir)
    try:
        state = execution.state
        results: list[InvariantResult] = []
        for inv in spec.invariants:
            if inv.name == "deterministic_accounting":
                continue
            results.append(CHECKERS[inv.name](state, inv.params))
        if wants_determinism:
            # The chaos determinism gate: the whole scenario re-executes
            # from the same seed and the canonical accounting must match
            # exactly — chaotic failures stay replayable from their seed.
            second = _execute_scenario(spec, base_dir)
            try:
                identical = second.state.accounting == state.accounting
            finally:
                second.close()
            results.append(
                InvariantResult(
                    "deterministic_accounting",
                    identical,
                    {"reruns": 1, "identical": identical},
                )
            )
        hooks_ok = not any(hook.failed for hook in execution.hooks)
        passed = hooks_ok and all(r.passed for r in results)
        return ScenarioOutcome(
            index=spec.index,
            scenario_id=spec.scenario_id,
            seed=spec.seed,
            axes=spec.axes(),
            passed=passed,
            invariants=results,
            hook_events=state.hook_events,
            accounting=state.accounting,
        )
    finally:
        execution.close()


# ----------------------------------------------------------------------
# Suite execution


def run_suite(
    config: SuiteConfig,
    workers: int = 1,
    seed: int | None = None,
    only: str | None = None,
    base_dir: str | None = None,
) -> SuiteReport:
    """Run a whole suite; scenarios fan out over ``workers`` threads.

    ``seed`` overrides the suite file's seed (re-deriving every scenario
    seed); ``only`` keeps scenarios whose id contains the substring.
    Scenario isolation (private clocks, networks, uuid factories,
    backends) makes the outcome independent of pool width — the report
    is assembled in grid order either way.
    """
    scenarios = expand_grid(config, seed=seed)
    if only:
        scenarios = [s for s in scenarios if only in s.scenario_id]
    if not scenarios:
        raise SuiteError(
            f"suite {config.name!r}: no scenarios"
            + (f" match {only!r}" if only else "")
        )
    report = SuiteReport(
        suite=config.name,
        description=config.description,
        seed=config.seed if seed is None else seed,
    )
    if workers <= 0:
        import os

        workers = os.cpu_count() or 1
    if workers == 1:
        report.outcomes = [run_scenario(s, base_dir) for s in scenarios]
        return report
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(run_scenario, s, base_dir) for s in scenarios]
        report.outcomes = [future.result() for future in futures]
    return report
