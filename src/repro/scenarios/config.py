"""Typed suite configuration and deterministic scenario-grid expansion.

A *suite* is a declarative description of a scenario matrix, modeled on
resmoke's suite YAML (``buildscripts/resmokelib/testing/suites``): each
grid composes a **workload** (embedded, three-tier, PPS, CORBA/COM
bridge, two-process CORBA), a **storage backend** (sqlite, segment),
**data-plane policies** (channel mode x server threading style), an
optional seeded **fault plan**, and background **hooks** that fire
mid-run. The executor (:mod:`repro.scenarios.executor`) expands a suite
into a flat, deterministically ordered list of :class:`ScenarioSpec`
cells and evaluates a uniform set of invariant checkers against every
one.

Everything here is pure data: dataclasses with canonical ``to_dict`` /
``from_dict`` forms, so a suite round-trips YAML -> dataclass -> YAML
unchanged (a property test holds this) and the expanded grid depends
only on the file content and the suite seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError


class SuiteError(ReproError):
    """A suite file is malformed or references unknown components."""


#: Workload registry keys (implementations in repro.scenarios.workloads).
WORKLOAD_NAMES = ("corba", "embedded", "three_tier", "pps", "bridge", "cluster")
#: Storage backends a scenario can collect into.
BACKEND_NAMES = ("sqlite", "segment")
#: ORB client channel modes.
CHANNEL_MODES = ("mux", "per-thread", "asyncio")
#: Server dispatch threading styles.
THREADING_STYLES = ("per-request", "per-connection", "pool", "asyncio")
#: Background hook kinds (implementations in repro.scenarios.hooks).
HOOK_KINDS = ("compaction", "collector_failover", "windowed_delay")
#: Invariant checker names (implementations in repro.scenarios.invariants).
INVARIANT_NAMES = (
    "deterministic_accounting",
    "cross_backend_identity",
    "loss_accounting",
    "streaming_batch_equivalence",
    "latency_slo",
)

_SCALARS = (str, int, float, bool)


def _check_params(owner: str, params: dict) -> dict:
    """Validate a params mapping holds YAML-safe scalars keyed by str."""
    for key, value in params.items():
        if not isinstance(key, str):
            raise SuiteError(f"{owner}: param keys must be strings, got {key!r}")
        if not isinstance(value, _SCALARS):
            raise SuiteError(
                f"{owner}: param {key!r} must be a scalar, got {type(value).__name__}"
            )
    return dict(sorted(params.items()))


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload axis entry: a registered workload plus parameters."""

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.name not in WORKLOAD_NAMES:
            raise SuiteError(
                f"unknown workload {self.name!r}; known: {WORKLOAD_NAMES}"
            )
        object.__setattr__(
            self, "params", _check_params(f"workload {self.name}", self.params)
        )

    @property
    def label(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({inner})"

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(name=data["name"], params=dict(data.get("params", {})))

    def __eq__(self, other):
        return (
            isinstance(other, WorkloadSpec)
            and self.name == other.name
            and self.params == other.params
        )

    def __hash__(self):
        return hash((self.name, tuple(sorted(self.params.items()))))


@dataclass(frozen=True)
class PolicySpec:
    """Data-plane policy cell: client channel mode x server threading."""

    channel: str = "mux"
    threading: str = "per-connection"
    pool_threads: int = 4

    def __post_init__(self):
        if self.channel not in CHANNEL_MODES:
            raise SuiteError(f"unknown channel mode {self.channel!r}")
        if self.threading not in THREADING_STYLES:
            raise SuiteError(f"unknown threading style {self.threading!r}")
        if self.pool_threads < 1:
            raise SuiteError("pool_threads must be >= 1")

    @property
    def label(self) -> str:
        return f"{self.channel}/{self.threading}"

    def to_dict(self) -> dict:
        return {
            "channel": self.channel,
            "threading": self.threading,
            "pool_threads": self.pool_threads,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolicySpec":
        return cls(
            channel=data.get("channel", "mux"),
            threading=data.get("threading", "per-connection"),
            pool_threads=int(data.get("pool_threads", 4)),
        )


@dataclass(frozen=True)
class FaultSpec:
    """A named, seedable fault-plan shape (seed comes from the grid).

    Mirrors :class:`repro.faults.FaultPlan` minus the seed: message-fault
    rates, probe-record delivery loss, transient drain failures, and
    component crash schedules. ``name`` labels the axis cell (``none``
    conventionally means an empty plan).
    """

    name: str
    rates: dict = field(default_factory=dict)
    record_loss_rate: float = 0.0
    collect_fail_attempts: int = 0
    crash_calls: dict = field(default_factory=dict)
    delay_ns: int = 1_000_000

    def __post_init__(self):
        from repro.faults import FaultKind

        rates = {}
        for kind, rate in self.rates.items():
            try:
                kind = FaultKind(kind).value
            except ValueError:
                raise SuiteError(f"fault {self.name!r}: unknown kind {kind!r}")
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise SuiteError(
                    f"fault {self.name!r}: rate for {kind} out of [0, 1]"
                )
            rates[kind] = rate
        object.__setattr__(self, "rates", dict(sorted(rates.items())))
        if not 0.0 <= self.record_loss_rate <= 1.0:
            raise SuiteError(f"fault {self.name!r}: record_loss_rate out of [0, 1]")
        if self.collect_fail_attempts < 0:
            raise SuiteError(f"fault {self.name!r}: collect_fail_attempts < 0")
        crashes = {}
        for op, index in self.crash_calls.items():
            if not isinstance(op, str) or int(index) < 1:
                raise SuiteError(
                    f"fault {self.name!r}: crash_calls maps operation -> 1-based index"
                )
            crashes[op] = int(index)
        object.__setattr__(self, "crash_calls", dict(sorted(crashes.items())))

    @property
    def is_none(self) -> bool:
        return (
            not self.rates
            and self.record_loss_rate == 0.0
            and self.collect_fail_attempts == 0
            and not self.crash_calls
        )

    def to_plan(self, seed: int):
        """Materialize as a seeded :class:`repro.faults.FaultPlan`."""
        from repro.faults import FaultKind, FaultPlan

        return FaultPlan(
            seed=seed,
            rates={FaultKind(k): v for k, v in self.rates.items()},
            record_loss_rate=self.record_loss_rate,
            collect_fail_attempts=self.collect_fail_attempts,
            crash_calls=dict(self.crash_calls),
            delay_ns=self.delay_ns,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rates": dict(self.rates),
            "record_loss_rate": self.record_loss_rate,
            "collect_fail_attempts": self.collect_fail_attempts,
            "crash_calls": dict(self.crash_calls),
            "delay_ns": self.delay_ns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            name=data["name"],
            rates=dict(data.get("rates", {})),
            record_loss_rate=float(data.get("record_loss_rate", 0.0)),
            collect_fail_attempts=int(data.get("collect_fail_attempts", 0)),
            crash_calls=dict(data.get("crash_calls", {})),
            delay_ns=int(data.get("delay_ns", 1_000_000)),
        )

    def __eq__(self, other):
        return isinstance(other, FaultSpec) and self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash((self.name, tuple(self.rates.items()),
                     self.record_loss_rate, self.collect_fail_attempts,
                     tuple(self.crash_calls.items()), self.delay_ns))


@dataclass(frozen=True)
class HookSpec:
    """A background hook activation (resmoke ``testing/hooks`` style).

    ``when_faults`` restricts the hook to scenarios whose fault-axis name
    is listed (``None`` = every scenario): the collector-failover hook,
    for example, only makes sense when the plan injects drain failures.
    """

    kind: str
    params: dict = field(default_factory=dict)
    when_faults: tuple = None

    def __post_init__(self):
        if self.kind not in HOOK_KINDS:
            raise SuiteError(f"unknown hook kind {self.kind!r}; known: {HOOK_KINDS}")
        object.__setattr__(
            self, "params", _check_params(f"hook {self.kind}", self.params)
        )
        if self.when_faults is not None:
            object.__setattr__(
                self, "when_faults", tuple(str(n) for n in self.when_faults)
            )

    def applies_to(self, fault: FaultSpec) -> bool:
        return self.when_faults is None or fault.name in self.when_faults

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "when_faults": list(self.when_faults) if self.when_faults is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HookSpec":
        when = data.get("when_faults")
        return cls(
            kind=data["kind"],
            params=dict(data.get("params", {})),
            when_faults=tuple(when) if when is not None else None,
        )

    def __eq__(self, other):
        return isinstance(other, HookSpec) and self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash((self.kind, tuple(self.params.items()), self.when_faults))


@dataclass(frozen=True)
class InvariantSpec:
    """One registered invariant checker plus its parameters."""

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.name not in INVARIANT_NAMES:
            raise SuiteError(
                f"unknown invariant {self.name!r}; known: {INVARIANT_NAMES}"
            )
        object.__setattr__(
            self, "params", _check_params(f"invariant {self.name}", self.params)
        )

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "InvariantSpec":
        return cls(name=data["name"], params=dict(data.get("params", {})))

    def __eq__(self, other):
        return isinstance(other, InvariantSpec) and self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash((self.name, tuple(self.params.items())))


#: The empty fault cell every grid without a ``faults`` axis runs under.
NO_FAULT = FaultSpec(name="none")


@dataclass(frozen=True)
class GridConfig:
    """One cross product: workloads x backends x policies x faults."""

    name: str
    workloads: tuple
    backends: tuple = ("sqlite",)
    policies: tuple = (PolicySpec(),)
    faults: tuple = ()
    hooks: tuple = ()
    invariants: tuple = ()

    def __post_init__(self):
        if not self.workloads:
            raise SuiteError(f"grid {self.name!r}: needs at least one workload")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        backends = tuple(self.backends)
        for backend in backends:
            if backend not in BACKEND_NAMES:
                raise SuiteError(
                    f"grid {self.name!r}: unknown backend {backend!r}"
                )
        if not backends:
            raise SuiteError(f"grid {self.name!r}: needs at least one backend")
        object.__setattr__(self, "backends", backends)
        object.__setattr__(self, "policies", tuple(self.policies) or (PolicySpec(),))
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "hooks", tuple(self.hooks))
        object.__setattr__(self, "invariants", tuple(self.invariants))

    def cells(self):
        """The grid's cells in canonical nested order (the outermost axis
        varies slowest): workload, backend, policy, fault."""
        faults = self.faults or (NO_FAULT,)
        for workload in self.workloads:
            for backend in self.backends:
                for policy in self.policies:
                    for fault in faults:
                        yield workload, backend, policy, fault

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workloads": [w.to_dict() for w in self.workloads],
            "backends": list(self.backends),
            "policies": [p.to_dict() for p in self.policies],
            "faults": [f.to_dict() for f in self.faults],
            "hooks": [h.to_dict() for h in self.hooks],
            "invariants": [i.to_dict() for i in self.invariants],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GridConfig":
        return cls(
            name=data["name"],
            workloads=tuple(
                WorkloadSpec.from_dict(w) for w in data.get("workloads", [])
            ),
            backends=tuple(data.get("backends", ("sqlite",))),
            policies=tuple(
                PolicySpec.from_dict(p) for p in data.get("policies", [])
            ) or (PolicySpec(),),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", [])),
            hooks=tuple(HookSpec.from_dict(h) for h in data.get("hooks", [])),
            invariants=tuple(
                InvariantSpec.from_dict(i) for i in data.get("invariants", [])
            ),
        )


@dataclass(frozen=True)
class SuiteConfig:
    """A whole suite file: named grids sharing one seed."""

    name: str
    description: str = ""
    seed: int = 2003
    grids: tuple = ()

    def __post_init__(self):
        if not self.grids:
            raise SuiteError(f"suite {self.name!r}: needs at least one grid")
        object.__setattr__(self, "grids", tuple(self.grids))
        names = [grid.name for grid in self.grids]
        if len(set(names)) != len(names):
            raise SuiteError(f"suite {self.name!r}: duplicate grid names")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "grids": [grid.to_dict() for grid in self.grids],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SuiteConfig":
        if not isinstance(data, dict) or "name" not in data:
            raise SuiteError("suite file must be a mapping with a 'name' key")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            seed=int(data.get("seed", 2003)),
            grids=tuple(GridConfig.from_dict(g) for g in data.get("grids", [])),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully resolved grid cell, ready to execute.

    ``seed`` is derived from ``(suite_seed, index)`` by a keyed hash —
    independent of which other cells exist, so inserting a grid reorders
    later scenarios' seeds but a fixed suite always reproduces exactly.
    """

    index: int
    suite: str
    grid: str
    seed: int
    workload: WorkloadSpec
    backend: str
    policy: PolicySpec
    fault: FaultSpec
    hooks: tuple
    invariants: tuple

    @property
    def scenario_id(self) -> str:
        return (
            f"{self.grid}/{self.workload.label}|{self.backend}"
            f"|{self.policy.label}|{self.fault.name}"
        )

    def axes(self) -> dict:
        """The cell's coordinates, as embedded in the suite report."""
        return {
            "grid": self.grid,
            "workload": self.workload.to_dict(),
            "backend": self.backend,
            "policy": self.policy.to_dict(),
            "fault": self.fault.name,
            "hooks": [h.kind for h in self.hooks],
        }


def derive_seed(suite_seed: int, index: int) -> int:
    """Per-scenario seed from ``(suite_seed, scenario_index)``.

    A keyed blake2b digest, like :meth:`FaultPlan.fraction`: well-spread,
    stable across platforms and interpreter versions.
    """
    digest = hashlib.blake2b(
        f"{suite_seed}\x1f{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest[:4], "big")


def expand_grid(config: SuiteConfig, seed: int | None = None) -> list[ScenarioSpec]:
    """Expand a suite into its flat, deterministically ordered scenarios.

    Order is purely positional — grids in file order, each grid's cells
    in canonical nested-axis order — so the same file (and seed) always
    yields the same list, byte for byte.
    """
    suite_seed = config.seed if seed is None else seed
    scenarios: list[ScenarioSpec] = []
    index = 0
    for grid in config.grids:
        for workload, backend, policy, fault in grid.cells():
            hooks = tuple(h for h in grid.hooks if h.applies_to(fault))
            _validate_cell(grid, workload, policy, fault, hooks)
            scenarios.append(
                ScenarioSpec(
                    index=index,
                    suite=config.name,
                    grid=grid.name,
                    seed=derive_seed(suite_seed, index),
                    workload=workload,
                    backend=backend,
                    policy=policy,
                    fault=fault,
                    hooks=hooks,
                    invariants=grid.invariants,
                )
            )
            index += 1
    return scenarios


#: Policy cells a workload cannot run under. The embedded system's call
#: graph re-enters processes mid-chain: with every client thread muxed
#: onto one connection per peer and the server dedicating a single
#: dispatch thread to that connection, a nested call that needs the
#: connection's thread while an outer frame still holds it can never be
#: served — requests time out or the transport resets, and which root
#: trips first is a thread race. Grid expansion rejects the combination
#: up front instead of letting a suite encode a flaky cell.
#:
#: The asyncio plane is rejected for ``embedded`` for the same
#: re-entrancy reason: the system drives *sync* servants, so under
#: AsyncioDispatch every dispatch runs inline on the single loop thread
#: (a one-thread pool), and a nested call back into a process whose loop
#: is blocked mid-frame can never be served; the asyncio client channel
#: likewise assumes the embedded driver runs inside an event loop, which
#: it does not.
UNSUPPORTED_POLICIES = {
    "embedded": (
        ("mux", "per-connection"),
        ("mux", "asyncio"),
        ("per-thread", "asyncio"),
        ("asyncio", "per-request"),
        ("asyncio", "per-connection"),
        ("asyncio", "pool"),
        ("asyncio", "asyncio"),
    ),
}


def _validate_cell(
    grid: GridConfig,
    workload: WorkloadSpec,
    policy: PolicySpec,
    fault: FaultSpec,
    hooks: tuple,
) -> None:
    """Cross-axis constraints that are cheap to state and easy to trip."""
    unsupported = UNSUPPORTED_POLICIES.get(workload.name, ())
    if (policy.channel, policy.threading) in unsupported:
        raise SuiteError(
            f"grid {grid.name!r}: workload {workload.name!r} does not support"
            f" the {policy.label} policy (re-entrant nested chains deadlock a"
            " single per-connection dispatch thread behind a shared mux"
            " channel); give the workload its own grid with supported policies"
        )
    if workload.name == "cluster":
        # The cluster workload runs a *real* multi-process deployment over
        # TCP: seeded fault plans live in the in-memory FaultyNetwork and
        # cannot inject into kernel sockets, and the worker processes fix
        # their own data plane (mux / per-request) internally.
        if not fault.is_none:
            raise SuiteError(
                f"grid {grid.name!r}: the cluster workload runs over real"
                " sockets; seeded network fault plans cannot be injected"
                f" there (got fault {fault.name!r})"
            )
        if hooks:
            raise SuiteError(
                f"grid {grid.name!r}: the cluster workload does not support"
                " background hooks (collection happens in worker processes)"
            )
        if (policy.channel, policy.threading) != ("mux", "per-request"):
            raise SuiteError(
                f"grid {grid.name!r}: the cluster workload fixes its data"
                " plane to mux/per-request inside the worker processes; got"
                f" {policy.label}"
            )
    for hook in hooks:
        if hook.kind == "collector_failover" and fault.collect_fail_attempts < 1:
            raise SuiteError(
                f"grid {grid.name!r}: collector_failover needs a fault with"
                f" collect_fail_attempts >= 1 (got fault {fault.name!r});"
                " scope the hook with when_faults"
            )
        if hook.kind == "windowed_delay" and "scope" not in hook.params:
            raise SuiteError(
                f"grid {grid.name!r}: windowed_delay hook needs a 'scope' param"
            )


# ----------------------------------------------------------------------
# YAML (de)serialization


def _require_yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - baked into the image
        raise SuiteError(
            "suite files need PyYAML (pip install pyyaml)"
        ) from exc
    return yaml


def loads(text: str) -> SuiteConfig:
    """Parse suite YAML text into a :class:`SuiteConfig`."""
    yaml = _require_yaml()
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SuiteError(f"invalid suite YAML: {exc}") from exc
    return SuiteConfig.from_dict(data)


def load_suite(path: str) -> SuiteConfig:
    """Load a suite file from disk."""
    with open(path) as handle:
        return loads(handle.read())


def dump_yaml(config: SuiteConfig) -> str:
    """Canonical YAML form: ``loads(dump_yaml(c)) == c`` and dumping is
    idempotent (the round-trip property test holds both)."""
    yaml = _require_yaml()
    return yaml.safe_dump(
        config.to_dict(), sort_keys=True, default_flow_style=False
    )
