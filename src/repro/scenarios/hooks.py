"""Background hooks that fire while a scenario runs.

Modeled on resmoke's ``testing/hooks``: a hook is attached to a grid and
gets callbacks at fixed points of every scenario's lifecycle —

- ``wrap_plan(plan)``   before the workload starts (install fault-plan
  behaviour, e.g. a windowed delay);
- ``on_tick(ctx, i)``   between workload operations;
- ``collect(...)``      replaces the default collection step (at most one
  collection hook per scenario);
- ``after_collect(...)`` once records are stored, before invariants run
  (e.g. trigger compaction so invariants see the compacted store).

Hooks append deterministic event dicts to ``self.events``; the executor
embeds them in the scenario's report entry, and a hook that sets
``self.failed`` fails the scenario like a violated invariant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.collector import LogCollector
from repro.faults import FaultKind, FaultPlan
from repro.scenarios.config import HookSpec, SuiteError
from repro.store import SegmentStore

if TYPE_CHECKING:
    from repro.scenarios.workloads import ScenarioContext


class Hook:
    """Base hook: every callback is a no-op."""

    kind = "hook"

    def __init__(self, spec: HookSpec):
        self.spec = spec
        self.events: list[dict] = []
        self.failed = False

    # -- lifecycle -------------------------------------------------------

    def wrap_plan(self, plan: FaultPlan) -> FaultPlan:
        return plan

    def on_tick(self, ctx: "ScenarioContext", index: int) -> None:
        pass

    @property
    def is_collector(self) -> bool:
        return False

    def collect(self, backend, processes, run_id: str) -> None:
        raise NotImplementedError

    def after_collect(self, backend, run_id: str) -> None:
        pass

    # -- reporting -------------------------------------------------------

    def record(self, **event) -> None:
        self.events.append({"hook": self.kind, **event})


class WindowedDelayPlan(FaultPlan):
    """DELAY every message on one link inside a seed-chosen index window.

    The suite-runner sibling of the streaming scenario's windowed plan: a
    contiguous latency regression on a named scope, with the window start
    derived from the plan's own hash draw so different scenario seeds
    move the incident while one seed always reproduces it exactly. All
    other decisions defer to the scenario's base plan.
    """

    def __init__(self, base: FaultPlan, scope: str, width: int,
                 delay_ns: int, warmup: int, spread: int):
        super().__init__(
            seed=base.seed,
            rates=dict(base.rates),
            record_loss_rate=base.record_loss_rate,
            collect_fail_attempts=base.collect_fail_attempts,
            crash_calls=dict(base.crash_calls),
            delay_ns=delay_ns,
        )
        self.window_scope = scope
        self.window_width = width
        self.window_start = warmup + self.choice(
            "suite-delay-window", 0, "start", max(1, spread)
        )

    def message_fault(self, scope: str, index: int) -> FaultKind | None:
        if (
            scope == self.window_scope
            and self.window_start <= index < self.window_start + self.window_width
        ):
            return FaultKind.DELAY
        return super().message_fault(scope, index)


class WindowedDelayHook(Hook):
    """Inject a contiguous DELAY window on one link mid-run."""

    kind = "windowed_delay"

    def wrap_plan(self, plan: FaultPlan) -> FaultPlan:
        params = self.spec.params
        wrapped = WindowedDelayPlan(
            plan,
            scope=str(params["scope"]),
            width=int(params.get("width", 8)),
            delay_ns=int(params.get("delay_ns", 1_000_000)),
            warmup=int(params.get("warmup", 4)),
            spread=int(params.get("spread", 8)),
        )
        self.record(
            scope=wrapped.window_scope,
            window_start=wrapped.window_start,
            width=wrapped.window_width,
            delay_ns=wrapped.delay_ns,
        )
        return wrapped


class CompactionTriggerHook(Hook):
    """Compact the segment store between collection and analysis.

    Fires after records land, before any invariant scans them — so every
    invariant (identity, streaming equivalence, SLOs) runs against the
    compacted representation. The hook itself holds the
    compaction-under-use contract: the record stream must be identical
    before and after.
    """

    kind = "compaction"

    def after_collect(self, backend, run_id: str) -> None:
        if not isinstance(backend, SegmentStore):
            self.record(backend="sqlite", compacted=False, skipped=True)
            return
        before = list(backend.all_records(run_id))
        compacted = backend.compact(run_id)
        after = list(backend.all_records(run_id))
        identical = before == after
        if not identical:
            self.failed = True
        self.record(
            backend="segment",
            compacted=bool(compacted),
            records=len(before),
            identical_scan=identical,
            skipped=False,
        )


class CollectorFailoverHook(Hook):
    """Fail the primary collector over to a standby mid-collection.

    The primary collector runs with ``retries=0`` against buffers whose
    fault plan injects at least one transient drain failure, so every
    drain fails and the records stay in place; a standby collector then
    takes over and completes the run. The primary's empty run (loss
    metadata listing the failed drains) stays in the store as the audit
    trail; invariants evaluate the standby's run.
    """

    kind = "collector_failover"

    @property
    def is_collector(self) -> bool:
        return True

    def collect(self, backend, processes, run_id: str) -> None:
        retries = int(self.spec.params.get("retries", 2))
        primary = LogCollector(backend=backend, retries=0, backoff_s=0.0)
        primary.collect(
            processes,
            run_id=f"{run_id}-primary",
            description="primary collector (failed over)",
        )
        primary_loss = next(
            meta.extra["loss"]
            for meta in backend.runs()
            if meta.run_id == f"{run_id}-primary"
        )
        if not primary_loss["failed_drains"]:
            # The plan did not inject the drain failures this hook needs;
            # the suite validator prevents this, but fail loudly anyway.
            self.failed = True
        standby = LogCollector(backend=backend, retries=retries, backoff_s=0.0)
        standby.collect(processes, run_id=run_id, description="standby collector")
        self.record(
            primary_failed_drains=primary_loss["failed_drains"],
            primary_uncollected=primary_loss["records_uncollected"],
            standby_retries=retries,
        )


_HOOKS = {
    "windowed_delay": WindowedDelayHook,
    "compaction": CompactionTriggerHook,
    "collector_failover": CollectorFailoverHook,
}


def make_hook(spec: HookSpec) -> Hook:
    try:
        return _HOOKS[spec.kind](spec)
    except KeyError:
        raise SuiteError(f"unknown hook kind {spec.kind!r}") from None
