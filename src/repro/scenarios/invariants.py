"""Uniform invariant checkers the executor evaluates on every scenario.

Each checker is a function ``(ScenarioState, params) -> InvariantResult``.
They are the suite-runner home of assertions that used to live in
hand-written test loops:

- ``cross_backend_identity``       mirror the run into the *other*
  storage backend and require bit-identical scans, stats, DSCG JSON,
  loss reports and CCSG XML (from the cross-backend identity tests);
- ``loss_accounting``              injected delivery faults must equal
  reported collection loss, and fault-free runs must report no loss
  (from the chaos matrix);
- ``streaming_batch_equivalence``  the incremental reconstructor over
  the stored arrival stream must finalize to the batch analyzer's DSCG;
- ``latency_slo``                  per-operation p95 wall latency stays
  under a bound (virtual-clock nanoseconds, so fully deterministic);
- ``deterministic_accounting``     evaluated by the executor itself (it
  re-runs the whole scenario and compares canonical accounting dicts).

Checkers never raise on violation — they return a failed result with
enough detail to debug from the suite report alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis import (
    CpuAnalysis,
    build_ccsg,
    dscg_to_json,
    latency_report,
    loss_report,
    reconstruct,
    render_ccsg_xml,
)
from repro.scenarios.config import ScenarioSpec
from repro.store import ScanPredicate


@dataclass
class InvariantResult:
    name: str
    passed: bool
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "details": self.details}


@dataclass
class ScenarioState:
    """One executed scenario, as the invariant checkers see it."""

    spec: ScenarioSpec
    backend: Any
    run_id: str
    accounting: dict
    hook_events: list
    #: () -> StorageBackend: a fresh instance of the *other* backend kind,
    #: owned (and closed) by the executor.
    mirror_factory: Callable[[], Any]
    _dscg: Any = None

    def dscg(self):
        """The run's annotated DSCG, reconstructed once per scenario."""
        if self._dscg is None:
            self._dscg = reconstruct(self.backend, self.run_id, annotate=True)
        return self._dscg


# ----------------------------------------------------------------------


def check_loss_accounting(state: ScenarioState, params: dict) -> InvariantResult:
    """Injected vs. reported: the loss ledger must balance.

    Every probe record the plan destroyed in delivery must appear in the
    collection's ``records_lost_in_delivery``; every injected drain
    failure must be visible as a collector retry or a hook-reported
    primary failure; and a scenario that injected nothing must report a
    clean capture.
    """
    faults = state.accounting["faults"]
    collection = state.accounting["collection"]
    injected_loss = faults["by_kind"].get("record_loss", 0)
    injected_drain_failures = faults["by_kind"].get("collect_fail", 0)
    observed_drain_failures = collection["drain_retries"] + sum(
        len(event.get("primary_failed_drains", ()))
        for event in state.hook_events
        if event.get("hook") == "collector_failover"
    )
    checks = {
        "record_loss_balances": injected_loss
        == collection["records_lost_in_delivery"],
        "drain_failures_balance": injected_drain_failures
        == observed_drain_failures,
        "no_abandoned_buffers": not collection["failed_drains"],
    }
    if faults["total"] == 0:
        capture = state.accounting["capture"]
        checks["clean_run_has_full_capture"] = (
            capture["partial_chains"] == 0
            and collection["records_lost_in_delivery"] == 0
            and collection["records_uncollected"] == 0
            and state.accounting["client_errors"] == 0
        )
    return InvariantResult(
        "loss_accounting",
        all(checks.values()),
        {
            "checks": checks,
            "injected_record_loss": injected_loss,
            "reported_lost_in_delivery": collection["records_lost_in_delivery"],
            "injected_drain_failures": injected_drain_failures,
            "observed_drain_failures": observed_drain_failures,
        },
    )


def _derived_predicates(backend, run_id: str) -> list[ScanPredicate]:
    """Predicates derived from the capture itself, so every pushdown
    level (dictionary ids, chain index, time bounds) actually engages."""
    records = list(backend.all_records(run_id))
    if not records:
        return [ScanPredicate(operations=frozenset({"no-such-operation"}))]
    operations = sorted({r.operation for r in records})
    interfaces = sorted({r.interface for r in records})
    chains = sorted({r.chain_uuid for r in records})
    predicates = [
        ScanPredicate(operations=frozenset({operations[0]})),
        ScanPredicate(interfaces=frozenset({interfaces[-1]})),
        ScanPredicate(chain_prefix=chains[0][:6]),
        ScanPredicate(operations=frozenset({"no-such-operation"})),
    ]
    anchors = sorted(
        r.wall_start if r.wall_start is not None else r.wall_end
        for r in records
        if r.wall_start is not None or r.wall_end is not None
    )
    if anchors:
        mid = anchors[len(anchors) // 2]
        predicates.append(ScanPredicate(ts_min=anchors[0], ts_max=mid))
    else:
        predicates.append(ScanPredicate(ts_min=0))
    return predicates


def check_cross_backend_identity(
    state: ScenarioState, params: dict
) -> InvariantResult:
    """Mirror the run into the other backend; nothing may differ.

    The storage-seam acceptance contract, applied uniformly: raw scans,
    chain grouping, population statistics (plain and predicated),
    reconstruction JSON, loss accounting and CCSG XML must all be
    bit-identical whichever backend held the records.
    """
    backend = state.backend
    run_id = state.run_id
    mirror = state.mirror_factory()
    meta = next(m for m in backend.runs() if m.run_id == run_id)
    mirror.create_run(meta)
    with mirror.bulk_ingest():
        mirror.insert_records(run_id, backend.all_records(run_id))

    checks: dict[str, bool] = {}
    checks["record_count"] = (
        mirror.record_count(run_id) == backend.record_count(run_id)
    )
    checks["chain_uuids"] = (
        mirror.unique_chain_uuids(run_id) == backend.unique_chain_uuids(run_id)
    )
    checks["arrival_stream"] = (
        list(mirror.all_records(run_id)) == list(backend.all_records(run_id))
    )
    checks["chain_groups"] = (
        list(mirror.chains_for_run(run_id)) == list(backend.chains_for_run(run_id))
    )
    checks["population_stats"] = (
        mirror.population_stats(run_id) == backend.population_stats(run_id)
    )
    predicates = _derived_predicates(backend, run_id)
    checks["predicated_scans"] = all(
        list(mirror.all_records(run_id, predicate=p))
        == list(backend.all_records(run_id, predicate=p))
        for p in predicates
    )
    checks["predicated_population_stats"] = all(
        mirror.population_stats(run_id, predicate=p)
        == backend.population_stats(run_id, predicate=p)
        for p in predicates
    )

    dscg_a = state.dscg()
    dscg_b = reconstruct(mirror, run_id, annotate=True)
    checks["dscg_json"] = dscg_to_json(dscg_a) == dscg_to_json(dscg_b)
    checks["loss_report"] = (
        loss_report(dscg_a).to_dict() == loss_report(dscg_b).to_dict()
    )
    checks["ccsg_xml"] = render_ccsg_xml(
        build_ccsg(dscg_a, CpuAnalysis(dscg_a)), description=run_id
    ) == render_ccsg_xml(
        build_ccsg(dscg_b, CpuAnalysis(dscg_b)), description=run_id
    )
    mirror.close()
    return InvariantResult(
        "cross_backend_identity",
        all(checks.values()),
        {
            "checks": checks,
            "mirrored_records": backend.record_count(run_id),
            "predicates": len(predicates),
        },
    )


def check_streaming_batch_equivalence(
    state: ScenarioState, params: dict
) -> InvariantResult:
    """Streaming reconstruction over the stored arrival stream must
    finalize to the same DSCG as the batch analyzer — the equivalence
    contract that lets live monitoring stand in for offline analysis."""
    from repro.analysis.streaming import StreamingReconstructor

    batch = dscg_to_json(reconstruct(state.backend, state.run_id))
    streaming = StreamingReconstructor()
    streaming.ingest_many(state.backend.all_records(state.run_id))
    streamed = dscg_to_json(streaming.finalize())
    return InvariantResult(
        "streaming_batch_equivalence",
        streamed == batch,
        {"pending_dropped": streaming.pending_dropped},
    )


def check_latency_slo(state: ScenarioState, params: dict) -> InvariantResult:
    """Per-function p95 end-to-end latency under a bound.

    Latencies are the paper's Section-3.2 figure — probe wall readings
    over the reconstructed DSCG, overhead-compensated — and the wall
    readings come from the virtual clock (consumed nanoseconds), so the
    check is exact and deterministic: an SLO gate on causality-captured
    latency, not on host scheduling noise. Fails if the capture yielded
    no latency samples at all (an SLO over nothing is no gate).
    """
    max_ms = float(params.get("max_p95_ms", 50.0))
    bound_ns = int(max_ms * 1_000_000)
    report = latency_report(state.dscg())
    worst_fn, worst_p95 = None, -1
    breaches = []
    for function in sorted(report):
        samples = sorted(report[function].samples)
        if not samples:
            continue
        rank = max(0, min(len(samples) - 1, math.ceil(0.95 * len(samples)) - 1))
        p95 = samples[rank]
        if p95 > worst_p95:
            worst_fn, worst_p95 = function, p95
        if p95 > bound_ns:
            breaches.append({"function": function, "p95_ns": p95})
    return InvariantResult(
        "latency_slo",
        not breaches and worst_fn is not None,
        {
            "bound_ns": bound_ns,
            "worst": {"function": worst_fn, "p95_ns": worst_p95},
            "breaches": breaches,
        },
    )


#: Registry the executor dispatches on. ``deterministic_accounting`` is
#: intentionally absent — the executor implements it by re-running the
#: scenario (a checker cannot re-enter the executor).
CHECKERS: dict[str, Callable[[ScenarioState, dict], InvariantResult]] = {
    "loss_accounting": check_loss_accounting,
    "cross_backend_identity": check_cross_backend_identity,
    "streaming_batch_equivalence": check_streaming_batch_equivalence,
    "latency_slo": check_latency_slo,
}
