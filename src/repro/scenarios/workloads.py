"""Workload adapters the suite executor composes into scenarios.

Each adapter is a function ``(ScenarioContext) -> WorkloadHarness`` that
builds an instrumented deployment on the context's (possibly faulty)
network, drives a deterministic request sequence — calling
``ctx.tick(i)`` between operations so background hooks can fire mid-run
— quiesces, and hands the processes back for collection. The executor
owns everything after that: lossy delivery, collection, invariants,
shutdown.

The library versions of what the chaos matrix and cross-backend tests
used to hand-code:

- ``corba``      two-process CORBA client/server (styles: sync, oneway,
                 collocated)
- ``embedded``   the synthetic embedded system, scaled by params
- ``three_tier`` CORBA front -> COM middle -> J2EE back, driven over CORBA
- ``pps``        the printing-pipeline system across four processes
- ``bridge``     CORBA client -> COM object -> CORBA worker through the
                 interworking bridge
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import (
    AsyncioDispatch,
    InterfaceRegistry,
    Orb,
    ThreadPerConnection,
    ThreadPerRequest,
    ThreadPool,
)
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock
from repro.scenarios.config import ScenarioSpec, SuiteError

#: Two-process CORBA workload IDL (the chaos matrix's service).
CORBA_IDL = """
module CH {
  interface Svc {
    long ping(in long x);
    oneway void notify(in long x);
  };
};
"""

#: Three-domain chain IDL (CORBA gateway fronting COM + J2EE).
GATEWAY_IDL = """
module TD {
  interface Gateway {
    long handle(in long request);
  };
};
"""

#: CORBA/COM bridge workload IDL.
BRIDGE_IDL = """
module HB {
  interface Render { long render(in long frame); };
  interface Encode { long encode(in long frame); };
};
"""


@dataclass
class ScenarioContext:
    """Everything a workload adapter needs to build its deployment."""

    spec: ScenarioSpec
    injector: Any  # FaultInjector (always present; plan may be empty)
    network: Any  # the injector's FaultyNetwork
    clock: VirtualClock
    hooks: list = field(default_factory=list)

    def tick(self, index: int) -> None:
        """Fire background hooks between workload operations."""
        for hook in self.hooks:
            hook.on_tick(self, index)

    def make_policy(self):
        """A fresh server threading policy per the scenario's PolicySpec."""
        style = self.spec.policy.threading
        if style == "per-request":
            return ThreadPerRequest()
        if style == "per-connection":
            return ThreadPerConnection()
        if style == "asyncio":
            return AsyncioDispatch()
        return ThreadPool(self.spec.policy.pool_threads)

    @property
    def channel(self) -> str:
        return self.spec.policy.channel

    @property
    def request_timeout(self) -> float:
        # Short timeouts keep dropped-message scenarios fast — a dropped
        # request is only discovered when the client gives up waiting.
        # Faults that never swallow a message (record loss, drain
        # failures) keep the generous timeout: a tight real-time bound
        # there would let host scheduling jitter fail legitimate calls
        # on a loaded machine, breaking run-twice determinism.
        fault = self.spec.fault
        if fault.rates or fault.crash_calls:
            return 0.1
        return 5.0


@dataclass
class WorkloadHarness:
    """What an adapter hands back to the executor."""

    processes: list
    errors: int
    results: list
    _shutdown: Callable[[], None]

    def shutdown(self) -> None:
        self._shutdown()


def quiesce(processes, settle: int = 3, interval: float = 0.002,
            timeout: float = 2.0) -> None:
    """Wait until the processes' log buffers stop growing.

    Oneway dispatch and pooled servers finish asynchronously; scenarios
    settle before collection so accounting is schedule-independent.
    """
    deadline = time.monotonic() + timeout
    last, stable = -1, 0
    while time.monotonic() < deadline:
        size = sum(len(p.log_buffer) for p in processes)
        if size == last:
            stable += 1
            if stable >= settle:
                return
        else:
            stable, last = 0, size
        time.sleep(interval)


def _monitored_process(name: str, host: Host, uuid_factory,
                       mode: MonitorMode = MonitorMode.LATENCY) -> SimProcess:
    process = SimProcess(name, host)
    MonitoringRuntime(process, MonitorConfig(mode=mode, uuid_factory=uuid_factory))
    return process


def _shutdown_all(processes) -> Callable[[], None]:
    def _close():
        for process in processes:
            process.shutdown()
    return _close


# ----------------------------------------------------------------------
# corba: two-process client/server (styles: sync, oneway, collocated)


def run_corba(ctx: ScenarioContext) -> WorkloadHarness:
    style = ctx.spec.workload.params.get("style", "sync")
    if style not in ("sync", "oneway", "collocated"):
        raise SuiteError(f"corba workload: unknown style {style!r}")
    calls = int(ctx.spec.workload.params.get("calls", 8))
    clock = ctx.clock
    host = Host("suite-host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("fa")
    registry = InterfaceRegistry()
    async_plane = ctx.channel == "asyncio"
    compiled = compile_idl(
        CORBA_IDL, instrument=True, registry=registry, async_mode=async_plane
    )

    if async_plane:

        class SvcImpl(compiled.Svc):
            async def ping(self, x):
                clock.consume(300)
                return x * 2

            async def notify(self, x):
                clock.consume(200)

    else:

        class SvcImpl(compiled.Svc):
            def ping(self, x):
                clock.consume(300)
                return x * 2

            def notify(self, x):
                clock.consume(200)

    server = _monitored_process("server", host, uuid_factory)
    server_orb = Orb(
        server,
        ctx.network,
        policy=ctx.make_policy(),
        registry=registry,
        request_timeout=ctx.request_timeout,
        channel=ctx.channel,
    )
    ref = server_orb.activate(SvcImpl())
    if style == "collocated":
        client = server
        stub = server_orb.resolve(ref)
        processes = [server]
    else:
        client = _monitored_process("client", host, uuid_factory)
        client_orb = Orb(
            client,
            ctx.network,
            registry=registry,
            request_timeout=ctx.request_timeout,
            channel=ctx.channel,
        )
        stub = client_orb.resolve(ref)
        processes = [client, server]
    ctx.injector.arm_crashes(server)

    errors = 0
    results: list = []
    if async_plane:
        import asyncio

        async def _drive():
            nonlocal errors
            # One task drives the calls sequentially, so the causal
            # structure (one chain per root call, reset by unbind_ftl)
            # matches the threaded drive loop record for record.
            for i in range(calls):
                try:
                    if style == "oneway":
                        await stub.notify(i)
                        results.append("sent")
                        quiesce(processes)
                    else:
                        results.append(await stub.ping(i))
                except BaseException as exc:  # ComponentCrash included
                    errors += 1
                    results.append(type(exc).__name__)
                finally:
                    if client.monitor is not None:
                        client.monitor.unbind_ftl()
                ctx.tick(i)

        asyncio.run(_drive())
    else:
        for i in range(calls):
            try:
                if style == "oneway":
                    stub.notify(i)
                    results.append("sent")
                    # Oneway dispatch is asynchronous: settle before the next
                    # send so crash-triggered connection teardown cannot race
                    # it (determinism, not correctness).
                    quiesce(processes)
                else:
                    results.append(stub.ping(i))
            except BaseException as exc:  # ComponentCrash included
                errors += 1
                results.append(type(exc).__name__)
            finally:
                if client.monitor is not None:
                    client.monitor.unbind_ftl()
            ctx.tick(i)
    quiesce(processes)
    return WorkloadHarness(processes, errors, results, _shutdown_all(processes))


# ----------------------------------------------------------------------
# embedded: the synthetic component population


def run_embedded(ctx: ScenarioContext) -> WorkloadHarness:
    from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem

    params = ctx.spec.workload.params
    config = EmbeddedConfig(
        components=int(params.get("components", 24)),
        interfaces=int(params.get("interfaces", 12)),
        methods=int(params.get("methods", 48)),
        processes=int(params.get("processes", 3)),
        pool_threads_per_process=int(params.get("pool_threads", 4)),
    )
    calls = int(params.get("calls", 240))
    roots = int(params.get("roots", 6))
    system = EmbeddedSystem(
        config,
        mode=MonitorMode.LATENCY,
        clock=ctx.clock,
        network=ctx.network,
        policy_factory=ctx.make_policy,
        channel=ctx.channel,
        request_timeout=ctx.request_timeout,
    )
    for process in system.processes:
        ctx.injector.arm_crashes(process)

    # The EmbeddedSystem.run loop, opened up so hooks tick per root call
    # and faults surface as per-root outcomes instead of aborting the run.
    if calls < roots:
        roots = calls
    base, extra = divmod(calls, roots)
    budgets = [base + 1 if index < extra else base for index in range(roots)]
    driver_orb = system.orbs[0]
    errors = 0
    results: list = []
    for root_index, budget in enumerate(budgets):
        component = root_index % config.components
        interface_index = config.interface_of_component(component)
        method = root_index % system.method_counts[interface_index]
        stub = driver_orb.resolve(system.refs[component])
        try:
            getattr(stub, f"m{method}")(budget, root_index + 1)
            results.append("ok")
        except BaseException as exc:
            errors += 1
            results.append(type(exc).__name__)
        finally:
            monitor = system.processes[0].monitor
            if monitor is not None:
                monitor.unbind_ftl()
        ctx.tick(root_index)
    system.quiesce()
    return WorkloadHarness(
        list(system.processes), errors, results, system.shutdown
    )


# ----------------------------------------------------------------------
# three_tier: CORBA gateway -> COM middle -> J2EE back


def run_three_tier(ctx: ScenarioContext) -> WorkloadHarness:
    from repro.com import ComInterface, ComObject, ComRuntime
    from repro.j2ee import Container, Jndi, stateless

    calls = int(ctx.spec.workload.params.get("calls", 6))
    clock = ctx.clock
    host = Host("suite-host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("3d")
    registry = InterfaceRegistry()
    compiled = compile_idl(GATEWAY_IDL, instrument=True, registry=registry)
    IMiddle = ComInterface("IMiddle", ("relay",))

    front = _monitored_process("front", host, uuid_factory)
    middle = _monitored_process("middle", host, uuid_factory)
    back = _monitored_process("back", host, uuid_factory)
    driver = _monitored_process("driver", host, uuid_factory)
    processes = [front, middle, back, driver]

    front_orb = Orb(
        front,
        ctx.network,
        policy=ctx.make_policy(),
        registry=registry,
        request_timeout=ctx.request_timeout,
        channel=ctx.channel,
    )
    client_orb = Orb(
        driver,
        ctx.network,
        registry=registry,
        request_timeout=ctx.request_timeout,
        channel=ctx.channel,
    )
    com_runtime = ComRuntime(middle)
    front_com = ComRuntime(front)
    container = Container(back, "backend")
    jndi = Jndi()

    @stateless
    class TaxService:
        def compute(self, amount):
            clock.consume(400)
            return amount * 2

    jndi.bind("tax", container, container.deploy(TaxService))

    class MiddleObj(ComObject):
        implements = (IMiddle,)

        def relay(self, amount):
            clock.consume(200)
            return jndi.lookup("tax", middle).compute(amount) + 1

    sta = com_runtime.create_sta("m")
    middle_identity = com_runtime.create_object(MiddleObj, sta)
    ctx.injector.arm_crashes(middle)

    class GatewayImpl(compiled.Gateway):
        def handle(self, request):
            clock.consume(100)
            proxy = front_com.proxy_for(middle_identity, IMiddle)
            return proxy.relay(request) + 1

    gateway_ref = front_orb.activate(GatewayImpl())
    stub = client_orb.resolve(gateway_ref)

    errors = 0
    results: list = []
    for i in range(calls):
        try:
            results.append(stub.handle(i))
        except BaseException as exc:
            errors += 1
            results.append(type(exc).__name__)
        finally:
            if driver.monitor is not None:
                driver.monitor.unbind_ftl()
        ctx.tick(i)
    quiesce(processes)
    return WorkloadHarness(processes, errors, results, _shutdown_all(processes))


# ----------------------------------------------------------------------
# pps: the four-process printing pipeline


def run_pps(ctx: ScenarioContext) -> WorkloadHarness:
    from repro.apps.pps import PpsSystem, four_process_deployment

    params = ctx.spec.workload.params
    jobs = int(params.get("jobs", 3))
    pages = int(params.get("pages", 2))
    complexity = int(params.get("complexity", 1))
    pps = PpsSystem(
        four_process_deployment(),
        mode=MonitorMode.LATENCY,
        clock=ctx.clock,
        network=ctx.network,
        request_timeout=ctx.request_timeout,
        policy_factory=ctx.make_policy,
        channel=ctx.channel,
    )
    for process in pps.processes.values():
        ctx.injector.arm_crashes(process)
    errors = 0
    results: list = []
    for job in range(jobs):
        try:
            pps.run(njobs=1, pages=pages, complexity=complexity)
            results.append("ok")
        except BaseException as exc:
            errors += 1
            results.append(type(exc).__name__)
        ctx.tick(job)
    pps.quiesce()
    return WorkloadHarness(
        list(pps.processes.values()), errors, results, pps.shutdown
    )


# ----------------------------------------------------------------------
# bridge: CORBA -> COM -> CORBA through the interworking bridge


def run_bridge(ctx: ScenarioContext) -> WorkloadHarness:
    from repro.bridge import com_facade_for_corba, corba_facade_for_com
    from repro.com import ComInterface, ComObject, ComRuntime

    frames = int(ctx.spec.workload.params.get("frames", 5))
    clock = ctx.clock
    host = Host("suite-host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("b1")
    registry = InterfaceRegistry()
    compiled = compile_idl(BRIDGE_IDL, instrument=True, registry=registry)
    IRender = ComInterface("IRender", ("render",))
    IEncode = ComInterface("IEncode", ("encode",))

    client = _monitored_process("corba-client", host, uuid_factory)
    bridge = _monitored_process("bridge", host, uuid_factory)
    worker = _monitored_process("corba-worker", host, uuid_factory)
    processes = [client, bridge, worker]

    orb_kwargs = dict(
        registry=registry,
        request_timeout=ctx.request_timeout,
        channel=ctx.channel,
    )
    client_orb = Orb(client, ctx.network, **orb_kwargs)
    bridge_orb = Orb(
        bridge, ctx.network, policy=ctx.make_policy(), **orb_kwargs
    )
    worker_orb = Orb(
        worker, ctx.network, policy=ctx.make_policy(), **orb_kwargs
    )
    com_runtime = ComRuntime(bridge, causality_hooks=True)

    class EncodeImpl(compiled.Encode):
        def encode(self, frame):
            clock.consume(1_000)
            return frame * 10

    encode_ref = worker_orb.activate(EncodeImpl())
    encode_stub = bridge_orb.resolve(encode_ref)
    com_encode = com_facade_for_corba(IEncode, encode_stub)

    class RenderObj(ComObject):
        implements = (IRender,)

        def render(self, frame):
            clock.consume(500)
            return com_encode.encode(frame) + 1

    sta = com_runtime.create_sta("render")
    render_identity = com_runtime.create_object(RenderObj, sta)
    render_proxy = com_runtime.proxy_for(render_identity, IRender)
    bridge_servant = corba_facade_for_com(compiled.Render, render_proxy)
    render_ref = bridge_orb.activate(bridge_servant, interface="HB::Render")
    ctx.injector.arm_crashes(bridge)
    ctx.injector.arm_crashes(worker)

    stub = client_orb.resolve(render_ref)
    errors = 0
    results: list = []
    for frame in range(frames):
        try:
            results.append(stub.render(frame))
        except BaseException as exc:
            errors += 1
            results.append(type(exc).__name__)
        finally:
            if client.monitor is not None:
                client.monitor.unbind_ftl()
        ctx.tick(frame)
    quiesce(processes)
    return WorkloadHarness(processes, errors, results, _shutdown_all(processes))


# ----------------------------------------------------------------------
# cluster: a real multi-process mini-cluster (see repro.cluster.scenario)


def run_cluster(ctx: ScenarioContext) -> WorkloadHarness:
    # Imported lazily: repro.cluster pulls in the socket transport and
    # subprocess launcher, which non-cluster suites never need.
    from repro.cluster.scenario import run_cluster_scenario

    return run_cluster_scenario(ctx)


#: The workload registry the executor dispatches on; keys must mirror
#: :data:`repro.scenarios.config.WORKLOAD_NAMES` (a unit test holds this).
WORKLOADS: dict[str, Callable[[ScenarioContext], WorkloadHarness]] = {
    "corba": run_corba,
    "embedded": run_embedded,
    "three_tier": run_three_tier,
    "pps": run_pps,
    "bridge": run_bridge,
    "cluster": run_cluster,
}
