"""repro.scenarios — the declarative scenario-suite runner.

One home for scenario composition: a YAML suite file declares grids of
workload x storage-backend x data-plane-policy x fault cells plus
background hooks, the executor expands them deterministically, runs them
over a bounded worker pool with per-scenario seeds derived from
``(suite_seed, scenario_index)``, and evaluates a uniform set of
invariant checkers (cross-backend DSCG identity, loss-accounting
consistency, streaming/batch equivalence, latency SLOs, seeded
determinism) against every run — emitting a byte-stable
:class:`SuiteReport` JSON.

Committed suites live under ``suites/``; ``repro suite list/run`` is the
CLI; docs/scenario-suites.md is the manual.
"""

from repro.scenarios.config import (
    BACKEND_NAMES,
    CHANNEL_MODES,
    HOOK_KINDS,
    INVARIANT_NAMES,
    THREADING_STYLES,
    UNSUPPORTED_POLICIES,
    WORKLOAD_NAMES,
    FaultSpec,
    GridConfig,
    HookSpec,
    InvariantSpec,
    PolicySpec,
    ScenarioSpec,
    SuiteConfig,
    SuiteError,
    WorkloadSpec,
    derive_seed,
    dump_yaml,
    expand_grid,
    load_suite,
    loads,
)
from repro.scenarios.executor import (
    ScenarioOutcome,
    SuiteReport,
    run_scenario,
    run_suite,
)
from repro.scenarios.invariants import CHECKERS, InvariantResult, ScenarioState
from repro.scenarios.workloads import WORKLOADS, ScenarioContext, WorkloadHarness

__all__ = [
    "SuiteConfig",
    "GridConfig",
    "WorkloadSpec",
    "PolicySpec",
    "FaultSpec",
    "HookSpec",
    "InvariantSpec",
    "ScenarioSpec",
    "SuiteError",
    "SuiteReport",
    "ScenarioOutcome",
    "ScenarioState",
    "ScenarioContext",
    "WorkloadHarness",
    "InvariantResult",
    "WORKLOAD_NAMES",
    "BACKEND_NAMES",
    "CHANNEL_MODES",
    "THREADING_STYLES",
    "HOOK_KINDS",
    "INVARIANT_NAMES",
    "UNSUPPORTED_POLICIES",
    "WORKLOADS",
    "CHECKERS",
    "derive_seed",
    "expand_grid",
    "load_suite",
    "loads",
    "dump_yaml",
    "run_suite",
    "run_scenario",
]
