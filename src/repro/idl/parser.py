"""Recursive-descent parser for the IDL subset."""

from __future__ import annotations

from repro.errors import IdlSyntaxError
from repro.idl import ast
from repro.idl.lexer import Token, TokenKind, tokenize

_PRIMITIVE_STARTERS = {
    "void",
    "boolean",
    "octet",
    "char",
    "short",
    "long",
    "unsigned",
    "float",
    "double",
    "string",
    "sequence",
}


class Parser:
    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # Token helpers

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> IdlSyntaxError:
        token = token or self._peek()
        return IdlSyntaxError(f"{message}, found {token.value!r}", token.line, token.column)

    def _expect_punct(self, value: str) -> Token:
        token = self._next()
        if token.kind is not TokenKind.PUNCT or token.value != value:
            raise self._error(f"expected {value!r}", token)
        return token

    def _expect_keyword(self, value: str) -> Token:
        token = self._next()
        if token.kind is not TokenKind.KEYWORD or token.value != value:
            raise self._error(f"expected keyword {value!r}", token)
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind is not TokenKind.IDENT:
            raise self._error("expected identifier", token)
        return token

    def _at_keyword(self, *values: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.value in values

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.PUNCT and token.value == value

    # ------------------------------------------------------------------
    # Entry point

    def parse(self) -> ast.Specification:
        declarations: list[ast.Declaration] = []
        while self._peek().kind is not TokenKind.EOF:
            declarations.append(self._parse_declaration())
        return ast.Specification(declarations=declarations)

    # ------------------------------------------------------------------
    # Declarations

    def _parse_declaration(self) -> ast.Declaration:
        token = self._peek()
        if token.kind is not TokenKind.KEYWORD:
            raise self._error("expected a declaration keyword")
        handlers = {
            "module": self._parse_module,
            "interface": self._parse_interface,
            "struct": self._parse_struct,
            "enum": self._parse_enum,
            "typedef": self._parse_typedef,
            "exception": self._parse_exception,
            "const": self._parse_const,
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise self._error("expected a declaration keyword")
        return handler()

    def _parse_module(self) -> ast.Module:
        start = self._expect_keyword("module")
        name = self._expect_ident().value
        self._expect_punct("{")
        declarations: list[ast.Declaration] = []
        while not self._at_punct("}"):
            declarations.append(self._parse_declaration())
        self._expect_punct("}")
        self._expect_punct(";")
        return ast.Module(name=name, declarations=declarations, line=start.line)

    def _parse_interface(self) -> ast.Interface:
        start = self._expect_keyword("interface")
        name = self._expect_ident().value
        bases: list[ast.TypeRef] = []
        if self._at_punct(":"):
            self._next()
            bases.append(self._parse_scoped_name())
            while self._at_punct(","):
                self._next()
                bases.append(self._parse_scoped_name())
        interface = ast.Interface(name=name, bases=bases, line=start.line)
        self._expect_punct("{")
        while not self._at_punct("}"):
            if self._at_keyword("readonly", "attribute"):
                interface.attributes.extend(self._parse_attribute())
            else:
                interface.operations.append(self._parse_operation())
        self._expect_punct("}")
        self._expect_punct(";")
        return interface

    def _parse_attribute(self) -> list[ast.Attribute]:
        readonly = False
        start = self._peek()
        if self._at_keyword("readonly"):
            self._next()
            readonly = True
        self._expect_keyword("attribute")
        type_ref = self._parse_type_ref()
        attributes = [
            ast.Attribute(
                name=self._expect_ident().value,
                type_ref=type_ref,
                readonly=readonly,
                line=start.line,
            )
        ]
        while self._at_punct(","):
            self._next()
            attributes.append(
                ast.Attribute(
                    name=self._expect_ident().value,
                    type_ref=type_ref,
                    readonly=readonly,
                    line=start.line,
                )
            )
        self._expect_punct(";")
        return attributes

    def _parse_operation(self) -> ast.Operation:
        start = self._peek()
        oneway = False
        if self._at_keyword("oneway"):
            self._next()
            oneway = True
        return_type = self._parse_type_ref(allow_void=True)
        name = self._expect_ident().value
        self._expect_punct("(")
        parameters: list[ast.Parameter] = []
        if not self._at_punct(")"):
            parameters.append(self._parse_parameter())
            while self._at_punct(","):
                self._next()
                parameters.append(self._parse_parameter())
        self._expect_punct(")")
        raises: list[ast.TypeRef] = []
        if self._at_keyword("raises"):
            self._next()
            self._expect_punct("(")
            raises.append(self._parse_scoped_name())
            while self._at_punct(","):
                self._next()
                raises.append(self._parse_scoped_name())
            self._expect_punct(")")
        self._expect_punct(";")
        return ast.Operation(
            name=name,
            return_type=return_type,
            parameters=parameters,
            oneway=oneway,
            raises=raises,
            line=start.line,
        )

    def _parse_parameter(self) -> ast.Parameter:
        token = self._next()
        if token.kind is not TokenKind.KEYWORD or token.value not in ("in", "out", "inout"):
            raise self._error("expected parameter direction (in/out/inout)", token)
        type_ref = self._parse_type_ref()
        name = self._expect_ident().value
        return ast.Parameter(
            direction=token.value, type_ref=type_ref, name=name, line=token.line
        )

    def _parse_struct(self) -> ast.Struct:
        start = self._expect_keyword("struct")
        name = self._expect_ident().value
        self._expect_punct("{")
        fields: list[ast.StructField] = []
        while not self._at_punct("}"):
            fields.extend(self._parse_field_group())
        self._expect_punct("}")
        self._expect_punct(";")
        return ast.Struct(name=name, fields=fields, line=start.line)

    def _parse_exception(self) -> ast.ExceptionDef:
        start = self._expect_keyword("exception")
        name = self._expect_ident().value
        self._expect_punct("{")
        fields: list[ast.StructField] = []
        while not self._at_punct("}"):
            fields.extend(self._parse_field_group())
        self._expect_punct("}")
        self._expect_punct(";")
        return ast.ExceptionDef(name=name, fields=fields, line=start.line)

    def _parse_field_group(self) -> list[ast.StructField]:
        type_ref = self._parse_type_ref()
        token = self._expect_ident()
        fields = [ast.StructField(type_ref=type_ref, name=token.value, line=token.line)]
        while self._at_punct(","):
            self._next()
            token = self._expect_ident()
            fields.append(ast.StructField(type_ref=type_ref, name=token.value, line=token.line))
        self._expect_punct(";")
        return fields

    def _parse_enum(self) -> ast.Enum:
        start = self._expect_keyword("enum")
        name = self._expect_ident().value
        self._expect_punct("{")
        labels = [self._expect_ident().value]
        while self._at_punct(","):
            self._next()
            if self._at_punct("}"):
                break  # trailing comma
            labels.append(self._expect_ident().value)
        self._expect_punct("}")
        self._expect_punct(";")
        return ast.Enum(name=name, labels=labels, line=start.line)

    def _parse_typedef(self) -> ast.Typedef:
        start = self._expect_keyword("typedef")
        type_ref = self._parse_type_ref()
        name = self._expect_ident().value
        self._expect_punct(";")
        return ast.Typedef(name=name, type_ref=type_ref, line=start.line)

    def _parse_const(self) -> ast.Const:
        start = self._expect_keyword("const")
        type_ref = self._parse_type_ref()
        name = self._expect_ident().value
        self._expect_punct("=")
        value = self._parse_const_value()
        self._expect_punct(";")
        return ast.Const(name=name, type_ref=type_ref, value=value, line=start.line)

    def _parse_const_value(self):
        token = self._next()
        if token.kind is TokenKind.NUMBER:
            text = token.value
            if text.startswith(("0x", "0X")):
                return int(text, 16)
            if any(ch in text for ch in ".eE"):
                return float(text)
            return int(text)
        if token.kind is TokenKind.STRING:
            return token.value
        if token.kind is TokenKind.KEYWORD and token.value in ("TRUE", "FALSE"):
            return token.value == "TRUE"
        raise self._error("expected a constant value", token)

    # ------------------------------------------------------------------
    # Types

    def _parse_type_ref(self, allow_void: bool = False) -> ast.TypeRefLike:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            if token.value == "void":
                if not allow_void:
                    raise self._error("'void' only allowed as a return type", token)
                self._next()
                return ast.TypeRef("void", line=token.line)
            if token.value == "sequence":
                self._next()
                self._expect_punct("<")
                element = self._parse_type_ref()
                self._expect_punct(">")
                return ast.SequenceRef(element=element, line=token.line)
            if token.value in _PRIMITIVE_STARTERS:
                return self._parse_primitive_name()
            raise self._error("expected a type", token)
        if token.kind is TokenKind.IDENT:
            return self._parse_scoped_name()
        raise self._error("expected a type", token)

    def _parse_primitive_name(self) -> ast.TypeRef:
        token = self._next()
        line = token.line
        name = token.value
        if name == "unsigned":
            follower = self._expect_keyword_oneof("short", "long")
            name = f"unsigned {follower}"
            if follower == "long" and self._at_keyword("long"):
                self._next()
                name = "unsigned long long"
        elif name == "long":
            if self._at_keyword("long"):
                self._next()
                name = "long long"
            elif self._at_keyword("double"):
                self._next()
                name = "double"  # treated as double
        return ast.TypeRef(name, line=line)

    def _expect_keyword_oneof(self, *values: str) -> str:
        token = self._next()
        if token.kind is not TokenKind.KEYWORD or token.value not in values:
            raise self._error(f"expected one of {values}", token)
        return token.value

    def _parse_scoped_name(self) -> ast.TypeRef:
        parts: list[str] = []
        token = self._peek()
        line = token.line
        if self._at_punct("::"):
            self._next()  # global scope prefix
        parts.append(self._expect_ident().value)
        while self._at_punct("::"):
            self._next()
            parts.append(self._expect_ident().value)
        return ast.TypeRef("::".join(parts), line=line)


def parse_idl(source: str) -> ast.Specification:
    """Parse IDL source text into a :class:`~repro.idl.ast.Specification`."""
    return Parser(source).parse()
