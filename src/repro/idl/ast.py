"""Abstract syntax tree for the IDL subset.

Nodes are plain dataclasses; type *references* are kept as syntactic
:class:`TypeRef` objects until semantic analysis resolves them against the
scoped symbol table into the runtime type model of :mod:`repro.idl.types`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ---------------------------------------------------------------------------
# Type references (syntactic)


@dataclass(frozen=True)
class TypeRef:
    """A (possibly scoped) name such as ``Example::Foo`` or ``long``."""

    name: str
    line: int = 0

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SequenceRef:
    """``sequence<T>`` with a syntactic element reference."""

    element: "TypeRefLike"
    line: int = 0

    def __str__(self) -> str:
        return f"sequence<{self.element}>"


TypeRefLike = Union[TypeRef, SequenceRef]


# ---------------------------------------------------------------------------
# Declarations


@dataclass
class Parameter:
    direction: str  # "in" | "out" | "inout"
    type_ref: TypeRefLike
    name: str
    line: int = 0

    def __str__(self) -> str:
        return f"{self.direction} {self.type_ref} {self.name}"


@dataclass
class Operation:
    name: str
    return_type: TypeRefLike  # TypeRef("void") for void
    parameters: list[Parameter] = field(default_factory=list)
    oneway: bool = False
    raises: list[TypeRef] = field(default_factory=list)
    line: int = 0

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        prefix = "oneway " if self.oneway else ""
        raises = ""
        if self.raises:
            raises = " raises (" + ", ".join(r.name for r in self.raises) + ")"
        return f"{prefix}{self.return_type} {self.name}({params}){raises}"


@dataclass
class Attribute:
    name: str
    type_ref: TypeRefLike
    readonly: bool = False
    line: int = 0


@dataclass
class StructField:
    type_ref: TypeRefLike
    name: str
    line: int = 0


@dataclass
class Struct:
    name: str
    fields: list[StructField] = field(default_factory=list)
    line: int = 0


@dataclass
class Enum:
    name: str
    labels: list[str] = field(default_factory=list)
    line: int = 0


@dataclass
class Typedef:
    name: str
    type_ref: TypeRefLike
    line: int = 0


@dataclass
class ExceptionDef:
    name: str
    fields: list[StructField] = field(default_factory=list)
    line: int = 0


@dataclass
class Const:
    name: str
    type_ref: TypeRefLike
    value: object = None
    line: int = 0


@dataclass
class Interface:
    name: str
    bases: list[TypeRef] = field(default_factory=list)
    operations: list[Operation] = field(default_factory=list)
    attributes: list[Attribute] = field(default_factory=list)
    line: int = 0


Declaration = Union[Struct, Enum, Typedef, ExceptionDef, Const, Interface, "Module"]


@dataclass
class Module:
    name: str
    declarations: list[Declaration] = field(default_factory=list)
    line: int = 0


@dataclass
class Specification:
    """A whole IDL translation unit (top-level declarations)."""

    declarations: list[Declaration] = field(default_factory=list)

    def iter_interfaces(self):
        """Yield (scoped_name, Interface) for every interface, depth-first."""
        yield from _iter_interfaces(self.declarations, prefix="")


def _iter_interfaces(declarations, prefix: str):
    for decl in declarations:
        if isinstance(decl, Interface):
            scoped = f"{prefix}{decl.name}"
            yield scoped, decl
        elif isinstance(decl, Module):
            yield from _iter_interfaces(decl.declarations, prefix=f"{prefix}{decl.name}::")
