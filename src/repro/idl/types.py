"""Runtime type model produced by semantic analysis.

Each IDL type resolves to an object that knows how to marshal and
unmarshal values through the CDR codec, supply a default value (used for
``out`` parameter placeholders), and print itself back as IDL (used to
render the Figure-3 "internal translation" of instrumented interfaces).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Sequence

from repro.errors import MarshalError
from repro.orb.cdr import CdrDecoder, CdrEncoder


class IdlType:
    """Base class for the runtime type model."""

    idl_name: str = "?"
    #: True only for VoidType; lets the ORB runtime avoid importing this
    #: module at load time (which would be circular).
    is_void: bool = False

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        raise NotImplementedError

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        raise NotImplementedError

    def default(self) -> Any:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.idl_name

    def __repr__(self) -> str:
        return f"<idl type {self.idl_name}>"


class VoidType(IdlType):
    idl_name = "void"
    is_void = True

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        if value is not None:
            raise MarshalError(f"void cannot carry {value!r}")

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        return None

    def default(self) -> Any:
        return None


class PrimitiveType(IdlType):
    _DEFAULTS = {
        "octet": 0,
        "boolean": False,
        "char": "\x00",
        "short": 0,
        "unsigned short": 0,
        "long": 0,
        "unsigned long": 0,
        "long long": 0,
        "unsigned long long": 0,
        "float": 0.0,
        "double": 0.0,
    }

    def __init__(self, kind: str):
        if kind not in self._DEFAULTS:
            raise ValueError(f"unknown primitive {kind!r}")
        self.kind = kind
        self.idl_name = kind

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        if self.kind in ("float", "double"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise MarshalError(f"{self.kind} expects a number, got {value!r}")
        elif self.kind == "boolean":
            if not isinstance(value, (bool, int)):
                raise MarshalError(f"boolean expects a bool, got {value!r}")
        elif self.kind == "char":
            if not isinstance(value, str) or len(value) != 1:
                raise MarshalError(f"char expects a 1-char string, got {value!r}")
        else:
            if not isinstance(value, int) or isinstance(value, bool):
                raise MarshalError(f"{self.kind} expects an int, got {value!r}")
        encoder.write_primitive(self.kind, value)

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        return decoder.read_primitive(self.kind)

    def default(self) -> Any:
        return self._DEFAULTS[self.kind]


class StringType(IdlType):
    idl_name = "string"

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        encoder.write_string(value)

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        return decoder.read_string()

    def default(self) -> Any:
        return ""


class SequenceType(IdlType):
    def __init__(self, element: IdlType):
        self.element = element
        self.idl_name = f"sequence<{element.idl_name}>"

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise MarshalError(f"sequence expects a list, got {type(value).__name__}")
        encoder.write_length(len(value))
        for item in value:
            self.element.marshal(encoder, item)

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        length = decoder.read_length()
        return [self.element.unmarshal(decoder) for _ in range(length)]

    def default(self) -> Any:
        return []


class EnumType(IdlType):
    def __init__(self, name: str, labels: Sequence[str], py_enum: type[enum.Enum]):
        self.idl_name = name
        self.labels = list(labels)
        self.py_enum = py_enum

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        if isinstance(value, self.py_enum):
            index = self.labels.index(value.name)
        elif isinstance(value, str) and value in self.labels:
            index = self.labels.index(value)
        elif isinstance(value, int) and 0 <= value < len(self.labels):
            index = value
        else:
            raise MarshalError(f"{value!r} is not a member of enum {self.idl_name}")
        encoder.write_primitive("unsigned long", index)

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        index = decoder.read_primitive("unsigned long")
        if index >= len(self.labels):
            raise MarshalError(f"enum {self.idl_name} index {index} out of range")
        return self.py_enum[self.labels[index]]

    def default(self) -> Any:
        return self.py_enum[self.labels[0]]


class StructType(IdlType):
    def __init__(self, name: str, fields: list[tuple[str, IdlType]], py_class: type):
        self.idl_name = name
        self.fields = fields
        self.py_class = py_class

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        for field_name, field_type in self.fields:
            try:
                field_value = getattr(value, field_name)
            except AttributeError:
                raise MarshalError(
                    f"struct {self.idl_name} value {value!r} lacks field {field_name!r}"
                ) from None
            field_type.marshal(encoder, field_value)

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        values = {name: ftype.unmarshal(decoder) for name, ftype in self.fields}
        return self.py_class(**values)

    def default(self) -> Any:
        return self.py_class(**{name: ftype.default() for name, ftype in self.fields})


class ExceptionType(StructType):
    """IDL exceptions marshal exactly like structs, plus a repository id."""


class ObjectRefType(IdlType):
    """Object references marshal as stringified references (IOR-alike).

    ``resolve`` is installed by the ORB runtime so that unmarshalling on
    the receiving side can hand the servant a live stub. Until an ORB is
    attached, unmarshalled references stay as
    :class:`repro.orb.refs.ObjectRef` values.
    """

    def __init__(self, interface_name: str):
        self.idl_name = interface_name
        self.interface_name = interface_name

    def marshal(self, encoder: CdrEncoder, value: Any) -> None:
        from repro.orb.refs import ObjectRef

        if value is None:
            encoder.write_string("")
            return
        ref = getattr(value, "object_ref", None)
        if ref is None:
            # Activated servants carry their reference; allows passing a
            # servant where an object reference is expected.
            ref = getattr(value, "_repro_object_ref", None)
        if ref is None and isinstance(value, ObjectRef):
            ref = value
        if ref is None:
            raise MarshalError(
                f"cannot marshal {value!r} as an object reference to {self.interface_name}"
            )
        encoder.write_string(ref.to_url())

    def unmarshal(self, decoder: CdrDecoder) -> Any:
        from repro.orb.refs import ObjectRef

        url = decoder.read_string()
        if not url:
            return None
        return ObjectRef.from_url(url)

    def default(self) -> Any:
        return None


# Shared singletons for the primitives.
VOID = VoidType()
BOOLEAN = PrimitiveType("boolean")
OCTET = PrimitiveType("octet")
CHAR = PrimitiveType("char")
SHORT = PrimitiveType("short")
USHORT = PrimitiveType("unsigned short")
LONG = PrimitiveType("long")
ULONG = PrimitiveType("unsigned long")
LONGLONG = PrimitiveType("long long")
ULONGLONG = PrimitiveType("unsigned long long")
FLOAT = PrimitiveType("float")
DOUBLE = PrimitiveType("double")
STRING = StringType()

PRIMITIVES: dict[str, IdlType] = {
    "void": VOID,
    "boolean": BOOLEAN,
    "octet": OCTET,
    "char": CHAR,
    "short": SHORT,
    "unsigned short": USHORT,
    "long": LONG,
    "unsigned long": ULONG,
    "long long": LONGLONG,
    "unsigned long long": ULONGLONG,
    "float": FLOAT,
    "double": DOUBLE,
    "string": STRING,
    # convenience aliases used by hand-written signatures
    "int": LONG,
}


def marshal_value(idl_type: IdlType, value: Any) -> bytes:
    """Marshal one value into a standalone encapsulation (test helper)."""
    encoder = CdrEncoder()
    idl_type.marshal(encoder, value)
    return encoder.getvalue()


def unmarshal_value(idl_type: IdlType, payload: bytes) -> Any:
    """Inverse of :func:`marshal_value`."""
    decoder = CdrDecoder(payload)
    value = idl_type.unmarshal(decoder)
    decoder.expect_exhausted()
    return value
