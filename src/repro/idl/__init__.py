"""IDL compiler: lexer, parser, semantic analysis and code generation."""

from repro.idl.compiler import CompiledIdl, compile_idl
from repro.idl.codegen import render_internal_idl
from repro.idl.parser import parse_idl
from repro.idl.semantics import ResolvedSpec, analyze

__all__ = [
    "CompiledIdl",
    "ResolvedSpec",
    "analyze",
    "compile_idl",
    "parse_idl",
    "render_internal_idl",
]
