"""Semantic analysis: scoping, type resolution and legality checks.

Walks the parsed :class:`~repro.idl.ast.Specification`, builds a scoped
symbol table, resolves every syntactic type reference into the runtime
type model of :mod:`repro.idl.types`, and enforces the IDL rules the
compiler relies on:

- names are unique within a scope;
- referenced types exist (searching enclosing scopes, as IDL does);
- ``oneway`` operations return ``void``, take only ``in`` parameters and
  raise no user exceptions;
- ``raises`` clauses name exception types;
- interface inheritance refers to interfaces and is acyclic.

The output is a :class:`ResolvedSpec` whose entries carry everything the
code generator needs, with inherited operations flattened into each
interface.
"""

from __future__ import annotations

import enum as _enum
import keyword
from dataclasses import dataclass, field
from typing import Union

from repro.errors import IdlSemanticError
from repro.idl import ast
from repro.idl.types import (
    PRIMITIVES,
    EnumType,
    ExceptionType,
    IdlType,
    ObjectRefType,
    SequenceType,
    StringType,
    StructType,
)


@dataclass
class ResolvedParam:
    direction: str
    name: str
    idl_type: IdlType


@dataclass
class ResolvedOperation:
    name: str
    return_type: IdlType
    parameters: list[ResolvedParam]
    oneway: bool
    raises: list[ExceptionType]
    #: Interface that declared the operation (differs under inheritance).
    declared_in: str = ""

    @property
    def in_params(self) -> list[ResolvedParam]:
        return [p for p in self.parameters if p.direction in ("in", "inout")]

    @property
    def out_params(self) -> list[ResolvedParam]:
        return [p for p in self.parameters if p.direction in ("out", "inout")]


@dataclass
class ResolvedInterface:
    scoped_name: str
    name: str
    bases: list[str]
    operations: list[ResolvedOperation]

    def operation(self, name: str) -> ResolvedOperation:
        # Memoized index: stubs/skeletons look operations up on every
        # call, and a linear scan is measurable on wide interfaces.
        index = self.__dict__.get("_op_index")
        if index is None:
            index = self.__dict__["_op_index"] = {op.name: op for op in self.operations}
        try:
            return index[name]
        except KeyError:
            raise KeyError(name) from None


@dataclass
class ResolvedSpec:
    interfaces: dict[str, ResolvedInterface] = field(default_factory=dict)
    structs: dict[str, StructType] = field(default_factory=dict)
    enums: dict[str, EnumType] = field(default_factory=dict)
    exceptions: dict[str, ExceptionType] = field(default_factory=dict)
    typedefs: dict[str, IdlType] = field(default_factory=dict)
    constants: dict[str, object] = field(default_factory=dict)


Symbol = Union[IdlType, "_InterfaceSymbol", object]


@dataclass
class _InterfaceSymbol:
    scoped_name: str
    node: ast.Interface
    ref_type: ObjectRefType


def _make_plain_class(name: str, field_names: list[str], is_exception: bool) -> type:
    """Interim Python class for a struct/exception type.

    Semantic analysis can run without code generation (tests, tooling);
    these plain classes make the type model usable stand-alone. When a
    generated module is loaded it rebinds ``py_class`` to its emitted
    dataclass/exception class.
    """
    def __init__(self, **kwargs):
        for field_name in field_names:
            setattr(self, field_name, kwargs.pop(field_name))
        if kwargs:
            raise TypeError(f"unexpected fields for {name}: {sorted(kwargs)}")
        if is_exception:
            Exception.__init__(self, *(getattr(self, f) for f in field_names))

    def __eq__(self, other):
        return type(other) is type(self) and all(
            getattr(self, f) == getattr(other, f) for f in field_names
        )

    def __repr__(self):
        body = ", ".join(f"{f}={getattr(self, f)!r}" for f in field_names)
        return f"{name}({body})"

    bases = (Exception,) if is_exception else (object,)
    return type(name, bases, {"__init__": __init__, "__eq__": __eq__, "__repr__": __repr__,
                              "__hash__": None, "_idl_fields": tuple(field_names)})


def _check_identifier(name: str, context: str) -> None:
    """Reject identifiers this Python binding cannot represent.

    IDL itself would allow e.g. ``class`` as a name, but the generated
    Python could not; failing here gives a clear diagnostic instead of a
    SyntaxError inside generated code.
    """
    if keyword.iskeyword(name):
        raise IdlSemanticError(
            f"{context} {name!r} is a Python keyword and cannot be used"
            " by this language binding"
        )


class Analyzer:
    def __init__(self, spec: ast.Specification):
        self._spec = spec
        self._symbols: dict[str, Symbol] = {}
        self._resolved = ResolvedSpec()

    def analyze(self) -> ResolvedSpec:
        self._collect(self._spec.declarations, prefix="")
        self._resolve_bodies(self._spec.declarations, prefix="")
        self._resolve_interfaces()
        return self._resolved

    # ------------------------------------------------------------------
    # Pass 1: collect declared names (so forward references resolve)

    def _collect(self, declarations, prefix: str) -> None:
        seen: set[str] = set()
        for decl in declarations:
            name = decl.name
            _check_identifier(name, "declaration")
            if name in seen:
                raise IdlSemanticError(
                    f"duplicate declaration {prefix}{name!r} (line {decl.line})"
                )
            seen.add(name)
            scoped = f"{prefix}{name}"
            if isinstance(decl, ast.Module):
                self._collect(decl.declarations, prefix=f"{scoped}::")
            elif isinstance(decl, ast.Interface):
                self._symbols[scoped] = _InterfaceSymbol(
                    scoped_name=scoped, node=decl, ref_type=ObjectRefType(scoped)
                )
            elif isinstance(decl, (ast.Struct, ast.ExceptionDef, ast.Enum, ast.Typedef)):
                # Placeholder; replaced in pass 2. Presence is what matters.
                self._symbols[scoped] = decl
            elif isinstance(decl, ast.Const):
                self._symbols[scoped] = decl
            else:
                raise IdlSemanticError(f"unsupported declaration {decl!r}")

    # ------------------------------------------------------------------
    # Pass 2: resolve type bodies in declaration order

    def _resolve_bodies(self, declarations, prefix: str) -> None:
        for decl in declarations:
            scoped = f"{prefix}{decl.name}"
            if isinstance(decl, ast.Module):
                self._resolve_bodies(decl.declarations, prefix=f"{scoped}::")
            elif isinstance(decl, ast.Struct):
                self._resolve_struct(decl, scoped, is_exception=False)
            elif isinstance(decl, ast.ExceptionDef):
                self._resolve_struct(decl, scoped, is_exception=True)
            elif isinstance(decl, ast.Enum):
                labels = decl.labels
                for label in labels:
                    _check_identifier(label, "enum label")
                if len(set(labels)) != len(labels):
                    raise IdlSemanticError(f"duplicate enum label in {scoped}")
                py_enum = _enum.Enum(decl.name, {label: i for i, label in enumerate(labels)})
                enum_type = EnumType(scoped, labels, py_enum)
                self._symbols[scoped] = enum_type
                self._resolved.enums[scoped] = enum_type
            elif isinstance(decl, ast.Typedef):
                resolved = self._resolve_type(decl.type_ref, scope=prefix)
                self._symbols[scoped] = resolved
                self._resolved.typedefs[scoped] = resolved
            elif isinstance(decl, ast.Const):
                const_type = self._resolve_type(decl.type_ref, scope=prefix)
                self._check_const_value(scoped, const_type, decl.value)
                self._resolved.constants[scoped] = decl.value
                self._symbols[scoped] = decl

    def _resolve_struct(self, decl, scoped: str, is_exception: bool) -> None:
        fields: list[tuple[str, IdlType]] = []
        seen: set[str] = set()
        scope = scoped.rsplit("::", 1)[0] + "::" if "::" in scoped else ""
        for struct_field in decl.fields:
            _check_identifier(struct_field.name, "field")
            if struct_field.name in seen:
                raise IdlSemanticError(
                    f"duplicate field {struct_field.name!r} in {scoped}"
                )
            seen.add(struct_field.name)
            fields.append(
                (struct_field.name, self._resolve_type(struct_field.type_ref, scope=scope))
            )
        py_class = _make_plain_class(decl.name, [f for f, _ in fields], is_exception)
        type_cls = ExceptionType if is_exception else StructType
        resolved = type_cls(scoped, fields, py_class)
        self._symbols[scoped] = resolved
        target = self._resolved.exceptions if is_exception else self._resolved.structs
        target[scoped] = resolved

    def _check_const_value(self, scoped: str, const_type: IdlType, value) -> None:
        from repro.idl.types import PrimitiveType

        if isinstance(const_type, StringType) and not isinstance(value, str):
            raise IdlSemanticError(f"const {scoped}: expected string value")
        if isinstance(const_type, PrimitiveType):
            if const_type.kind == "boolean" and not isinstance(value, bool):
                raise IdlSemanticError(f"const {scoped}: expected boolean value")
            if const_type.kind in ("float", "double") and not isinstance(value, (int, float)):
                raise IdlSemanticError(f"const {scoped}: expected numeric value")
            if const_type.kind not in ("boolean", "float", "double", "char") and not isinstance(
                value, int
            ):
                raise IdlSemanticError(f"const {scoped}: expected integer value")

    # ------------------------------------------------------------------
    # Pass 3: interfaces (after all types exist)

    def _resolve_interfaces(self) -> None:
        for scoped_name, node in self._spec.iter_interfaces():
            self._resolve_interface(scoped_name)

    def _resolve_interface(self, scoped_name: str, _visiting: frozenset = frozenset()) -> ResolvedInterface:
        if scoped_name in self._resolved.interfaces:
            return self._resolved.interfaces[scoped_name]
        if scoped_name in _visiting:
            raise IdlSemanticError(f"inheritance cycle involving {scoped_name}")
        symbol = self._symbols.get(scoped_name)
        if not isinstance(symbol, _InterfaceSymbol):
            raise IdlSemanticError(f"{scoped_name} is not an interface")
        node = symbol.node
        scope = scoped_name.rsplit("::", 1)[0] + "::" if "::" in scoped_name else ""

        operations: list[ResolvedOperation] = []
        op_names: set[str] = set()
        base_names: list[str] = []
        for base_ref in node.bases:
            base_scoped = self._lookup_name(base_ref.name, scope)
            base = self._resolve_interface(base_scoped, _visiting | {scoped_name})
            base_names.append(base.scoped_name)
            for op in base.operations:
                if op.name not in op_names:
                    op_names.add(op.name)
                    operations.append(op)

        synthetic_ops = list(node.operations) + self._attribute_operations(node)
        for op_node in synthetic_ops:
            if op_node.name in op_names:
                raise IdlSemanticError(
                    f"duplicate operation {op_node.name!r} in {scoped_name}"
                )
            op_names.add(op_node.name)
            operations.append(self._resolve_operation(op_node, scope, scoped_name))

        resolved = ResolvedInterface(
            scoped_name=scoped_name,
            name=node.name,
            bases=base_names,
            operations=operations,
        )
        self._resolved.interfaces[scoped_name] = resolved
        return resolved

    def _attribute_operations(self, node: ast.Interface) -> list[ast.Operation]:
        """Expand attributes into _get_/_set_ operations, as CORBA mandates."""
        ops: list[ast.Operation] = []
        for attr in node.attributes:
            ops.append(
                ast.Operation(
                    name=f"_get_{attr.name}", return_type=attr.type_ref, line=attr.line
                )
            )
            if not attr.readonly:
                ops.append(
                    ast.Operation(
                        name=f"_set_{attr.name}",
                        return_type=ast.TypeRef("void"),
                        parameters=[
                            ast.Parameter(
                                direction="in", type_ref=attr.type_ref, name="value"
                            )
                        ],
                        line=attr.line,
                    )
                )
        return ops

    def _resolve_operation(
        self, node: ast.Operation, scope: str, declared_in: str
    ) -> ResolvedOperation:
        _check_identifier(node.name, "operation")
        return_type = self._resolve_type(node.return_type, scope, allow_void=True)
        parameters: list[ResolvedParam] = []
        param_names: set[str] = set()
        for param in node.parameters:
            _check_identifier(param.name, "parameter")
            if param.name in param_names:
                raise IdlSemanticError(
                    f"duplicate parameter {param.name!r} in {declared_in}::{node.name}"
                )
            param_names.add(param.name)
            parameters.append(
                ResolvedParam(
                    direction=param.direction,
                    name=param.name,
                    idl_type=self._resolve_type(param.type_ref, scope),
                )
            )
        raises: list[ExceptionType] = []
        for exc_ref in node.raises:
            exc_scoped = self._lookup_name(exc_ref.name, scope)
            exc_type = self._symbols.get(exc_scoped)
            if not isinstance(exc_type, ExceptionType):
                raise IdlSemanticError(
                    f"{declared_in}::{node.name} raises non-exception {exc_ref.name!r}"
                )
            raises.append(exc_type)
        if node.oneway:
            from repro.idl.types import VoidType

            if not isinstance(return_type, VoidType):
                raise IdlSemanticError(
                    f"oneway operation {declared_in}::{node.name} must return void"
                )
            if any(p.direction != "in" for p in parameters):
                raise IdlSemanticError(
                    f"oneway operation {declared_in}::{node.name} may only take 'in' parameters"
                )
            if raises:
                raise IdlSemanticError(
                    f"oneway operation {declared_in}::{node.name} may not raise exceptions"
                )
        return ResolvedOperation(
            name=node.name,
            return_type=return_type,
            parameters=parameters,
            oneway=node.oneway,
            raises=raises,
            declared_in=declared_in,
        )

    # ------------------------------------------------------------------
    # Name lookup

    def _lookup_name(self, name: str, scope: str) -> str:
        """Resolve ``name`` against ``scope`` and enclosing scopes."""
        candidates: list[str] = []
        current = scope
        while True:
            candidates.append(f"{current}{name}")
            if not current:
                break
            current = current[:-2].rsplit("::", 1)[0] + "::" if "::" in current[:-2] else ""
        for candidate in candidates:
            if candidate in self._symbols:
                return candidate
        raise IdlSemanticError(f"unknown name {name!r} (searched from scope {scope!r})")

    def _resolve_type(
        self, type_ref: ast.TypeRefLike, scope: str, allow_void: bool = False
    ) -> IdlType:
        if isinstance(type_ref, ast.SequenceRef):
            return SequenceType(self._resolve_type(type_ref.element, scope))
        name = type_ref.name
        if name in PRIMITIVES:
            if name == "void" and not allow_void:
                raise IdlSemanticError("'void' is only legal as a return type")
            return PRIMITIVES[name]
        scoped = self._lookup_name(name, scope)
        symbol = self._symbols[scoped]
        if isinstance(symbol, _InterfaceSymbol):
            return symbol.ref_type
        if isinstance(symbol, IdlType):
            return symbol
        if isinstance(symbol, (ast.Struct, ast.ExceptionDef, ast.Enum, ast.Typedef)):
            raise IdlSemanticError(
                f"type {scoped} used before its declaration is complete"
            )
        raise IdlSemanticError(f"{scoped} does not name a type")


def analyze(spec: ast.Specification) -> ResolvedSpec:
    """Run semantic analysis over a parsed specification."""
    return Analyzer(spec).analyze()
