"""Lexer for the CORBA IDL subset understood by the compiler.

Supports the constructs the paper's examples use (Figure 3) plus enough of
OMG IDL to express realistic component systems: modules, interfaces with
inheritance, operations with ``in``/``out``/``inout`` parameters and
``raises`` clauses, ``oneway`` operations, attributes, structs, enums,
typedefs, sequences, exceptions and constants.

Comments (``//`` and ``/* */``) and preprocessor lines (``#include`` etc.)
are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IdlSyntaxError

KEYWORDS = {
    "module",
    "interface",
    "struct",
    "enum",
    "typedef",
    "exception",
    "const",
    "attribute",
    "readonly",
    "oneway",
    "raises",
    "in",
    "out",
    "inout",
    "void",
    "boolean",
    "octet",
    "char",
    "short",
    "long",
    "unsigned",
    "float",
    "double",
    "string",
    "sequence",
    "TRUE",
    "FALSE",
}

PUNCTUATION = {
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    ",",
    ";",
    ":",
    "::",
    "=",
    "[",
    "]",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Streaming tokenizer with one-token lookahead handled by the parser."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> list[Token]:
        """Tokenize the whole source, appending a trailing EOF token."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    # ------------------------------------------------------------------

    def _peek_char(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos : self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return text

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek_char()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek_char(1) == "/":
                while self._pos < len(self._source) and self._peek_char() != "\n":
                    self._advance()
            elif ch == "/" and self._peek_char(1) == "*":
                start_line = self._line
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek_char() == "*" and self._peek_char(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise IdlSyntaxError("unterminated block comment", start_line, 0)
            elif ch == "#" and self._col == 1:
                while self._pos < len(self._source) and self._peek_char() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self._line, self._col
        ch = self._peek_char()
        if not ch:
            return Token(TokenKind.EOF, "", line, col)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, col)
        if ch.isdigit() or (ch == "." and self._peek_char(1).isdigit()):
            return self._lex_number(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        if ch == ":" and self._peek_char(1) == ":":
            self._advance(2)
            return Token(TokenKind.PUNCT, "::", line, col)
        if ch in "{}()<>,;:=[]":
            self._advance()
            return Token(TokenKind.PUNCT, ch, line, col)
        raise IdlSyntaxError(f"unexpected character {ch!r}", line, col)

    def _lex_word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._source) and (
            self._peek_char().isalnum() or self._peek_char() == "_"
        ):
            self._advance()
        word = self._source[start : self._pos]
        kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
        return Token(kind, word, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        seen_dot = False
        if self._peek_char() == "0" and self._peek_char(1) in "xX":
            self._advance(2)
            while self._peek_char() and self._peek_char() in "0123456789abcdefABCDEF":
                self._advance()
            return Token(TokenKind.NUMBER, self._source[start : self._pos], line, col)
        while self._pos < len(self._source):
            ch = self._peek_char()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot:
                seen_dot = True
                self._advance()
            elif ch in "eE" and self._peek_char(1) and (
                self._peek_char(1).isdigit() or self._peek_char(1) in "+-"
            ):
                self._advance(2)
            else:
                break
        return Token(TokenKind.NUMBER, self._source[start : self._pos], line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek_char()
            if not ch:
                raise IdlSyntaxError("unterminated string literal", line, col)
            if ch == '"':
                self._advance()
                return Token(TokenKind.STRING, "".join(chars), line, col)
            if ch == "\\":
                self._advance()
                escape = self._advance()
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
            else:
                chars.append(self._advance())


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper used by the parser and tests."""
    return Lexer(source).tokens()
