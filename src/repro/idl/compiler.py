"""IDL compiler driver.

Ties the pipeline together: lexer → parser → semantic analysis → code
generation → module loading. The ``instrument`` flag is the paper's
back-end compilation flag (Section 2.3); both variants can be compiled
from the same IDL source in one process and used side by side.
"""

from __future__ import annotations

import itertools
import sys
import types
from dataclasses import dataclass, field
from typing import Any

_module_counter = itertools.count(1)

from repro.idl.codegen import generate_python, render_internal_idl
from repro.idl.parser import parse_idl
from repro.idl.semantics import ResolvedSpec, analyze
from repro.idl.types import IdlType
from repro.orb.runtime import GLOBAL_INTERFACE_REGISTRY, InterfaceRegistry


@dataclass
class CompiledIdl:
    """The product of one IDL compilation.

    Generated classes are reachable as attributes (``compiled.Foo``,
    ``compiled.FooStub``) or through :attr:`namespace`. :attr:`source`
    holds the generated Python text, :attr:`internal_idl` the Figure-3
    style rewritten interface text.
    """

    spec: ResolvedSpec
    instrumented: bool
    source: str
    internal_idl: str
    namespace: dict[str, Any] = field(default_factory=dict)
    async_mode: bool = False

    def __getattr__(self, name: str) -> Any:
        try:
            return self.namespace[name]
        except KeyError:
            raise AttributeError(name) from None

    def interface_names(self) -> list[str]:
        return sorted(self.spec.interfaces)


def _type_table(resolved: ResolvedSpec) -> dict[str, IdlType]:
    table: dict[str, IdlType] = {}
    table.update(resolved.structs)
    table.update(resolved.enums)
    table.update(resolved.exceptions)
    table.update(resolved.typedefs)
    return table


def compile_idl(
    source: str,
    instrument: bool = True,
    registry: InterfaceRegistry | None = None,
    async_mode: bool = False,
) -> CompiledIdl:
    """Compile IDL source text into live Python stub/skeleton classes.

    ``registry`` defaults to the process-wide interface registry; pass a
    private :class:`InterfaceRegistry` to isolate compilations (the tests
    do this when compiling the same IDL twice with different flags).
    With ``async_mode=True`` the emitted stubs/skeletons are coroutines
    for the asyncio data plane (``channel="asyncio"`` +
    :class:`~repro.orb.threading_policies.AsyncioDispatch`); the probe
    placement is unchanged.
    """
    spec_ast = parse_idl(source)
    resolved = analyze(spec_ast)
    python_source = generate_python(spec_ast, resolved, instrument, async_mode=async_mode)
    internal_idl = render_internal_idl(resolved, instrument)
    registry = registry if registry is not None else GLOBAL_INTERFACE_REGISTRY

    # The generated code must live in a real sys.modules entry: the
    # dataclasses machinery resolves cls.__module__ through sys.modules.
    module_name = f"repro.idl._generated_{next(_module_counter)}"
    module = types.ModuleType(module_name)
    module.__dict__.update(
        {
            "_T": _type_table(resolved),
            "_SPEC": resolved,
            "register_interface": registry.register,
        }
    )
    sys.modules[module_name] = module
    code = compile(python_source, f"<{module_name}>", "exec")
    exec(code, module.__dict__)  # noqa: S102 — executing our own generated code
    return CompiledIdl(
        spec=resolved,
        instrumented=instrument,
        source=python_source,
        internal_idl=internal_idl,
        namespace=module.__dict__,
        async_mode=async_mode,
    )
