"""The fault injector: applies a :class:`FaultPlan` across subsystems.

One :class:`FaultInjector` owns the plan plus a thread-safe event log of
every fault actually injected. The log is the replay contract: the same
seed over the same workload re-injects the same faults at the same
sites, so ``injector.summary()`` is comparable across runs (the chaos
matrix asserts exactly this).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ComponentCrash
from repro.faults.plan import FaultKind, FaultPlan
from repro.telemetry.metrics import NULL_COUNTER
from repro.telemetry.runtime import metrics_binder

# Framework self-metrics (no-ops until repro.telemetry.enable()).
_INJECTED = dict.fromkeys(FaultKind, NULL_COUNTER)


@metrics_binder
def _bind_metrics(registry) -> None:
    if registry is None:
        for kind in FaultKind:
            _INJECTED[kind] = NULL_COUNTER
        return
    family = registry.counter(
        "repro_faults_injected_total",
        "Faults injected by repro.faults, by fault kind.",
        labels=("kind",),
    )
    for kind in FaultKind:
        _INJECTED[kind] = family.labels(kind.value)


@dataclass(frozen=True)
class FaultEvent:
    """One fault the injector actually applied."""

    kind: FaultKind
    scope: str
    index: int
    detail: str = ""


class FaultInjector:
    """Applies one plan; records every injected fault."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._events: list[FaultEvent] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Event log

    def record(self, kind: FaultKind, scope: str, index: int, detail: str = "") -> None:
        event = FaultEvent(kind=kind, scope=scope, index=index, detail=detail)
        with self._lock:
            self._events.append(event)
        _INJECTED[kind].inc()

    def events(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._events)

    def counters(self) -> dict[str, int]:
        """``"kind@scope" -> count`` over everything injected so far."""
        result: dict[str, int] = {}
        with self._lock:
            for event in self._events:
                key = f"{event.kind.value}@{event.scope}"
                result[key] = result.get(key, 0) + 1
        return result

    def summary(self) -> dict:
        """Canonical, order-independent accounting of injected faults.

        Deterministic for a given (seed, workload) pair regardless of
        thread scheduling: events are aggregated into sorted counters.
        """
        by_kind: dict[str, int] = {}
        with self._lock:
            for event in self._events:
                by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
        return {
            "seed": self.plan.seed,
            "total": sum(by_kind.values()),
            "by_kind": dict(sorted(by_kind.items())),
            "by_site": dict(sorted(self.counters().items())),
        }

    # ------------------------------------------------------------------
    # Attachment helpers

    def network(self):
        """A fresh fault-injecting network driven by this injector."""
        from repro.faults.network import FaultyNetwork

        return FaultyNetwork(self)

    def lossy_delivery(self, process) -> None:
        """Make ``process``'s probe->collector record delivery lossy."""
        from repro.faults.lossy import LossyLogBuffer

        if not isinstance(process.log_buffer, LossyLogBuffer):
            process.log_buffer = LossyLogBuffer(process.log_buffer, self, process.name)

    def arm_crashes(self, process) -> None:
        """Arm the plan's ``crash_calls`` against components in ``process``.

        Installs a dispatch hook consulted by the CORBA skeleton, the
        collocated stub path, and the COM channel; on the configured call
        index the hook raises :class:`ComponentCrash`, which the dispatch
        layers treat as process death (no end probes, no reply).
        """
        process.fault_hook = CrashArm(self, process.name)


class CrashArm:
    """Per-process dispatch hook implementing plan-scheduled crashes."""

    def __init__(self, injector: FaultInjector, process_name: str):
        self.injector = injector
        self._process_name = process_name
        self._calls: dict[str, int] = {}
        self._lock = threading.Lock()

    def on_dispatch(self, interface: str, operation: str) -> None:
        """Called between the start and end probes of every dispatch.

        Raises :class:`ComponentCrash` when this is the plan-scheduled
        call; counts are per (process, operation) so the schedule is
        deterministic per component regardless of sibling traffic.
        """
        qualified = f"{interface}::{operation}"
        at = self.injector.plan.crash_at(qualified)
        if at is None:
            return
        with self._lock:
            self._calls[qualified] = index = self._calls.get(qualified, 0) + 1
        if index == at:
            scope = f"{self._process_name}:{qualified}"
            self.injector.record(FaultKind.CRASH, scope, index)
            raise ComponentCrash(self._process_name, qualified, index)
