"""Fault-injecting network: drop, duplicate, reorder, corrupt, truncate,
reset and delay at the message level.

:class:`FaultyNetwork` is a drop-in :class:`~repro.platform.network.Network`
whose connections consult the injector's :class:`~repro.faults.plan.FaultPlan`
on every ``send``. Decisions are keyed by the *directed link* (labels with
per-thread connection serials stripped) and a per-connection message
counter, so a single-threaded driver replays byte-identically from the
seed while unrelated links never perturb each other's schedules.
"""

from __future__ import annotations

import time

from repro.faults.plan import FaultKind
from repro.platform.clocks import VirtualClock
from repro.platform.host import Host
from repro.platform.network import Connection, Network


def link_scope(local_label: str, peer_label: str) -> str:
    """Directed-link name with per-thread connection serials stripped.

    Client connection labels look like ``client/t3``; the ``/t3`` part
    depends on thread creation order, so fault decisions key on the
    stable ``client->server`` form instead.
    """
    return f"{local_label.split('/')[0]}->{peer_label.split('/')[0]}"


class FaultyConnection(Connection):
    """A connection that runs every send through the fault plan."""

    def __init__(self, local_label: str, peer_label: str, network: "FaultyNetwork"):
        super().__init__(local_label, peer_label, network)
        self._injector = network.injector
        self._scope = link_scope(local_label, peer_label)
        self._send_index = 0
        #: Payload held back by a REORDER fault, delivered after the next.
        self._held: tuple[bytes, Host | None] | None = None

    def send(self, payload: bytes, sender_host: Host | None = None) -> None:
        if self.closed:
            # Match the base transport: sending on a closed (e.g. reset)
            # connection raises, rather than taking a new fault decision.
            self._deliver(payload, sender_host)
            return
        index = self._send_index
        self._send_index += 1
        plan = self._injector.plan
        fault = plan.message_fault(self._scope, index)

        if fault is None:
            self._deliver_with_held(payload, sender_host)
            return

        self._injector.record(fault, self._scope, index)
        if fault is FaultKind.DROP:
            self._flush_held()
            return
        if fault is FaultKind.RESET:
            self._held = None
            self.close()
            return
        if fault is FaultKind.DUPLICATE:
            self._deliver_with_held(payload, sender_host)
            self._deliver(payload, sender_host)
            return
        if fault is FaultKind.REORDER:
            self._flush_held()
            self._held = (payload, sender_host)
            return
        if fault is FaultKind.CORRUPT:
            offset = plan.choice(self._scope, index, "corrupt_at", len(payload))
            flip = 1 + plan.choice(self._scope, index, "corrupt_bit", 255)
            damaged = bytearray(payload)
            if damaged:
                damaged[offset] ^= flip
            self._deliver_with_held(bytes(damaged), sender_host)
            return
        if fault is FaultKind.TRUNCATE:
            cut = plan.choice(self._scope, index, "truncate_at", max(len(payload), 1))
            self._deliver_with_held(payload[:cut], sender_host)
            return
        if fault is FaultKind.DELAY:
            self._spike(sender_host, plan.delay_ns)
            self._deliver_with_held(payload, sender_host)
            return
        raise AssertionError(f"unhandled fault kind {fault}")  # pragma: no cover

    # ------------------------------------------------------------------

    def _deliver_with_held(self, payload: bytes, sender_host: Host | None) -> None:
        """Deliver ``payload``, then any payload a REORDER fault held back.

        The held message lands *after* the newer one — that is the
        reordering observable to the receiver.
        """
        self._deliver(payload, sender_host)
        self._flush_held()

    def _flush_held(self) -> None:
        if self._held is None:
            return
        held_payload, held_host = self._held
        self._held = None
        if not self.closed:
            self._deliver(held_payload, held_host)

    def _spike(self, sender_host: Host | None, delay_ns: int) -> None:
        """Charge an extra latency spike the same way link latency is."""
        if delay_ns <= 0:
            return
        clock = sender_host.clock if sender_host is not None else None
        idle = getattr(clock, "idle", None)
        if isinstance(clock, VirtualClock) or callable(idle):
            try:
                clock.idle(delay_ns)  # type: ignore[union-attr]
                return
            except AttributeError:
                pass
        time.sleep(delay_ns / 1e9)


class FaultyNetwork(Network):
    """A network whose connections inject plan-scheduled faults."""

    def __init__(self, injector):
        super().__init__()
        self.injector = injector

    def _new_connection(self, local_label: str, peer_label: str) -> Connection:
        return FaultyConnection(local_label, peer_label, self)
