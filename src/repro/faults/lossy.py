"""Lossy probe-record delivery (the probe -> collector path).

A :class:`LossyLogBuffer` stands between a process's real log buffer and
the collector: drains may fail transiently (exercising the collector's
retry/backoff) and individual records may be lost in transit (exercising
the analyzer's soundness under partial observation). Probes keep
appending to the real buffer untouched — only *delivery* is faulty, as
in a real deployment where the log store outlives a flaky uplink.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import TransientCollectorError
from repro.faults.plan import FaultKind


class LossyLogBuffer:
    """Wraps a process's log buffer with plan-scheduled delivery faults."""

    def __init__(self, inner, injector, scope: str):
        self._inner = inner
        self._injector = injector
        self._scope = scope
        self._drain_attempts = 0
        self._record_index = 0
        self._lock = threading.Lock()

    # -- probe side: appends pass straight through ----------------------

    def append(self, record: Any) -> None:
        self._inner.append(record)

    def snapshot(self) -> list[Any]:
        return self._inner.snapshot()

    def read_from(self, cursor):
        """Incremental live reads pass straight through (delivery faults
        apply only to the collector's ``drain`` path)."""
        return self._inner.read_from(cursor)

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def capacity(self):
        return getattr(self._inner, "capacity", None)

    @property
    def dropped(self) -> int:
        return getattr(self._inner, "dropped", 0)

    # -- collector side: delivery is faulty -----------------------------

    def drain(self) -> list[Any]:
        """Deliver the buffered records, subject to the fault plan.

        A transient failure raises *before* the inner buffer is touched,
        so a retry sees the records intact. On success, each record is
        individually subject to loss; lost records are logged against
        this process's scope.
        """
        plan = self._injector.plan
        with self._lock:
            attempt = self._drain_attempts
            self._drain_attempts += 1
        if plan.drain_fails(self._scope, attempt):
            self._injector.record(
                FaultKind.COLLECT_FAIL, self._scope, attempt, detail=f"attempt {attempt}"
            )
            raise TransientCollectorError(
                f"injected drain failure for {self._scope} (attempt {attempt})"
            )
        records = self._inner.drain()
        delivered = []
        with self._lock:
            base = self._record_index
            self._record_index += len(records)
        for offset, record in enumerate(records):
            if plan.loses_record(self._scope, base + offset):
                self._injector.record(FaultKind.RECORD_LOSS, self._scope, base + offset)
                continue
            delivered.append(record)
        return delivered
