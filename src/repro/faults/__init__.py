"""Deterministic fault injection (``repro.faults``).

The paper's monitor claims to work "without global clock synchronization
and without log concatenation"; this package supplies the adversary that
claim must survive: seeded, replayable faults at every boundary —

- network links (:class:`FaultyNetwork`): drop, duplicate, reorder,
  corrupt, truncate, reset, latency spikes;
- components (:meth:`FaultInjector.arm_crashes`): mid-call death so the
  end probes never fire;
- probe-record delivery (:meth:`FaultInjector.lossy_delivery`): lossy
  drains and transient collector failures.

Everything is scheduled by a :class:`FaultPlan` — a pure function of a
seed — so any chaotic run replays exactly from its seed, and the chaos
test matrix can assert byte-identical loss accounting back to back.
"""

from repro.errors import ComponentCrash, TransientCollectorError
from repro.faults.injector import CrashArm, FaultEvent, FaultInjector
from repro.faults.lossy import LossyLogBuffer
from repro.faults.network import FaultyConnection, FaultyNetwork, link_scope
from repro.faults.plan import MESSAGE_FAULT_PRIORITY, FaultKind, FaultPlan

__all__ = [
    "ComponentCrash",
    "CrashArm",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultyConnection",
    "FaultyNetwork",
    "LossyLogBuffer",
    "MESSAGE_FAULT_PRIORITY",
    "TransientCollectorError",
    "link_scope",
]
