"""Seeded, fully deterministic fault schedules.

A :class:`FaultPlan` is a pure function from ``(scope, index)`` to a
fault decision. "Scope" names an injection site (a network link such as
``client->server``, a process buffer, a component operation); "index" is
that site's own monotonically increasing operation counter. Decisions
are derived by hashing ``seed || scope || index || kind`` — no shared RNG
stream — so they are

- independent of thread interleavings across sites,
- reproducible from the seed alone (replay a failing run by re-running
  with its plan), and
- stable under insertion/removal of *other* sites.

Every plan serializes to/from JSON so a repro report can carry the exact
schedule that produced it.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field


class FaultKind(str, enum.Enum):
    """The fault taxonomy (see docs/fault-injection.md)."""

    # Message-level faults (network links).
    DROP = "drop"  # payload silently discarded
    DUPLICATE = "duplicate"  # payload delivered twice
    REORDER = "reorder"  # payload held and delivered after the next one
    CORRUPT = "corrupt"  # one byte flipped at a plan-chosen offset
    TRUNCATE = "truncate"  # payload cut short at a plan-chosen length
    RESET = "reset"  # connection closed instead of delivering
    DELAY = "delay"  # extra latency spike charged to the sender
    # Component-level faults.
    CRASH = "crash"  # component dies mid-call; end probes never fire
    # Probe-record delivery faults (probe -> collector path).
    RECORD_LOSS = "record_loss"  # a drained record is lost in transit
    COLLECT_FAIL = "collect_fail"  # a whole drain attempt fails (retryable)


#: Evaluation order when several message-fault rates are nonzero: the
#: first kind whose hash draw clears its rate wins, so one (scope, index)
#: yields at most one fault and the priority is explicit and stable.
MESSAGE_FAULT_PRIORITY: tuple[FaultKind, ...] = (
    FaultKind.RESET,
    FaultKind.DROP,
    FaultKind.DUPLICATE,
    FaultKind.REORDER,
    FaultKind.CORRUPT,
    FaultKind.TRUNCATE,
    FaultKind.DELAY,
)

_FRACTION_DENOM = float(1 << 53)


@dataclass
class FaultPlan:
    """Deterministic fault schedule derived from one integer seed."""

    seed: int
    #: Probability per message fault kind, 0.0 (never) .. 1.0 (always).
    rates: dict[FaultKind, float] = field(default_factory=dict)
    #: Probability that one drained probe record is lost in delivery.
    record_loss_rate: float = 0.0
    #: How many leading drain attempts per process fail transiently.
    collect_fail_attempts: int = 0
    #: ``"Interface::operation" -> k``: crash the hosting component on
    #: the k-th (1-based) dispatch of that operation.
    crash_calls: dict[str, int] = field(default_factory=dict)
    #: Extra latency charged by a DELAY fault, in nanoseconds.
    delay_ns: int = 1_000_000

    def __post_init__(self) -> None:
        self.rates = {FaultKind(kind): float(rate) for kind, rate in self.rates.items()}
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind.value} must be in [0, 1], got {rate}")
        if not 0.0 <= self.record_loss_rate <= 1.0:
            raise ValueError("record_loss_rate must be in [0, 1]")

    # ------------------------------------------------------------------
    # The deterministic draw

    def fraction(self, scope: str, index: int, salt: str = "") -> float:
        """A uniform draw in [0, 1) keyed by (seed, scope, index, salt)."""
        digest = hashlib.blake2b(
            f"{self.seed}\x1f{scope}\x1f{index}\x1f{salt}".encode(),
            digest_size=8,
        ).digest()
        return (int.from_bytes(digest, "big") >> 11) / _FRACTION_DENOM

    def choice(self, scope: str, index: int, salt: str, n: int) -> int:
        """A deterministic integer in [0, n) (corrupt offsets, cut points)."""
        if n <= 0:
            return 0
        return int(self.fraction(scope, index, salt) * n)

    # ------------------------------------------------------------------
    # Message faults

    def message_fault(self, scope: str, index: int) -> FaultKind | None:
        """Which fault (if any) hits the ``index``-th message on ``scope``."""
        for kind in MESSAGE_FAULT_PRIORITY:
            rate = self.rates.get(kind, 0.0)
            if rate and self.fraction(scope, index, kind.value) < rate:
                return kind
        return None

    def schedule(self, scope: str, count: int) -> list[str]:
        """The first ``count`` message decisions for one scope.

        Useful for byte-identical schedule comparisons in tests and for
        embedding the effective schedule into repro reports.
        """
        return [
            (fault.value if (fault := self.message_fault(scope, i)) else "pass")
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    # Record-delivery faults

    def loses_record(self, scope: str, index: int) -> bool:
        rate = self.record_loss_rate
        return bool(rate) and self.fraction(scope, index, "record_loss") < rate

    def drain_fails(self, scope: str, attempt: int) -> bool:
        """Whether drain ``attempt`` (0-based) on ``scope`` fails transiently."""
        return attempt < self.collect_fail_attempts

    # ------------------------------------------------------------------
    # Component crashes

    def crash_at(self, operation: str) -> int | None:
        """1-based call index at which ``operation``'s component dies."""
        return self.crash_calls.get(operation)

    # ------------------------------------------------------------------
    # Serialization (repro reports)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rates": {kind.value: rate for kind, rate in sorted(self.rates.items())},
            "record_loss_rate": self.record_loss_rate,
            "collect_fail_attempts": self.collect_fail_attempts,
            "crash_calls": dict(sorted(self.crash_calls.items())),
            "delay_ns": self.delay_ns,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data["seed"]),
            rates={FaultKind(k): float(v) for k, v in data.get("rates", {}).items()},
            record_loss_rate=float(data.get("record_loss_rate", 0.0)),
            collect_fail_attempts=int(data.get("collect_fail_attempts", 0)),
            crash_calls={str(k): int(v) for k, v in data.get("crash_calls", {}).items()},
            delay_ns=int(data.get("delay_ns", 1_000_000)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
