"""Bean model for the J2EE-like container.

The paper's first listed future effort is "to investigate the adoption of
our monitoring techniques to the J2EE-based applications" (Section 6).
This package is that adoption: a third remote-invocation infrastructure,
deliberately different from both the CORBA ORB (no IDL — remote
interfaces are discovered by reflection, as EJB dynamic proxies do) and
the COM runtime (no apartments — the container owns a worker pool), yet
instrumented with the *same* four probes and FTL tunnel.

Beans declare their kind:

- ``@stateless`` — the container keeps a pool of interchangeable
  instances; any free instance serves any call (the EJB stateless
  session-bean contract);
- ``@stateful`` — one instance per handle, calls serialized per handle.
"""

from __future__ import annotations

import inspect
from typing import Callable

STATELESS = "stateless"
STATEFUL = "stateful"


def stateless(cls: type) -> type:
    """Mark a class as a stateless session bean."""
    cls._ejb_kind = STATELESS
    return cls


def stateful(cls: type) -> type:
    """Mark a class as a stateful session bean."""
    cls._ejb_kind = STATEFUL
    return cls


def bean_kind(cls: type) -> str:
    kind = getattr(cls, "_ejb_kind", None)
    if kind not in (STATELESS, STATEFUL):
        raise TypeError(
            f"{cls.__name__} is not a session bean; decorate it with"
            " @stateless or @stateful"
        )
    return kind


def remote_methods(cls: type) -> tuple[str, ...]:
    """The bean's remote interface, discovered by reflection.

    Every public instance method is exported — the dynamic-proxy
    equivalent of an EJB remote interface. Names starting with ``_`` stay
    container-private.
    """
    methods = []
    for name, member in inspect.getmembers(cls, predicate=callable):
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) or inspect.ismethod(member):
            methods.append(name)
    if not methods:
        raise TypeError(f"bean {cls.__name__} exports no public methods")
    return tuple(sorted(methods))


class BeanHandle:
    """Client-side handle naming one deployed bean (EJBObject analogue)."""

    def __init__(self, container_name: str, bean_name: str, handle_id: str,
                 methods: tuple[str, ...]):
        self.container_name = container_name
        self.bean_name = bean_name
        self.handle_id = handle_id
        self.methods = methods

    @property
    def object_id(self) -> str:
        return f"{self.container_name}.{self.handle_id}"

    def __repr__(self) -> str:
        return f"<bean handle {self.bean_name} @ {self.object_id}>"
