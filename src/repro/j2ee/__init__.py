"""J2EE-like container — the paper's future-work adoption target."""

from repro.j2ee.beans import BeanHandle, bean_kind, remote_methods, stateful, stateless
from repro.j2ee.container import Container, DynamicProxy, EjbError, Jndi

__all__ = [
    "BeanHandle",
    "Container",
    "DynamicProxy",
    "EjbError",
    "Jndi",
    "bean_kind",
    "remote_methods",
    "stateful",
    "stateless",
]
