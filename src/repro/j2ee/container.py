"""The J2EE-like container: deployment, pooling, dispatch, naming.

Differences from the other two runtimes, on purpose:

- **no IDL**: remote interfaces come from reflection over the bean class
  (dynamic proxies), so this exercises the probes without any generated
  code;
- **container-managed threading**: one fixed worker pool per container
  dispatches every incoming call (observation O1 holds — workers block on
  nested outbound calls, they never pump);
- **instance pooling**: stateless beans are served by any free pooled
  instance, stateful beans by their handle's dedicated instance with
  calls serialized per handle.

Causality: the dynamic proxy fires probes 1/4, the container dispatch
fires probes 2/3, and the FTL rides the call message — identical
semantics to the CORBA/COM paths, which is the point of the paper's
future-work claim.
"""

from __future__ import annotations

import copy
import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.events import Domain
from repro.core.records import OperationInfo
from repro.errors import ReproError
from repro.j2ee.beans import (
    STATEFUL,
    STATELESS,
    BeanHandle,
    bean_kind,
    remote_methods,
)
from repro.platform.process import SimProcess


class EjbError(ReproError):
    """Raised for container lifecycle and dispatch failures."""


@dataclass
class _Deployment:
    bean_name: str
    bean_class: type
    kind: str
    methods: tuple[str, ...]
    #: stateless: the shared instance pool; stateful: per-handle instances
    free_instances: "queue.Queue[Any]" = field(default_factory=queue.Queue)
    stateful_instances: dict[str, Any] = field(default_factory=dict)
    stateful_locks: dict[str, threading.Lock] = field(default_factory=dict)


@dataclass
class _EjbCall:
    deployment: _Deployment
    handle: BeanHandle
    method: str
    args: tuple
    kwargs: dict
    ftl: bytes | None
    done: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: BaseException | None = None
    reply_ftl: bytes | None = None


class Container:
    """One EJB-style container bound to a simulated process."""

    _handle_counter = itertools.count(1)

    def __init__(
        self,
        process: SimProcess,
        name: str | None = None,
        instrumented: bool = True,
        worker_threads: int = 4,
        stateless_pool_size: int = 3,
        call_timeout: float = 30.0,
    ):
        if worker_threads < 1 or stateless_pool_size < 1:
            raise EjbError("worker_threads and stateless_pool_size must be >= 1")
        self.process = process
        self.name = name or f"{process.name}-container"
        self.instrumented = instrumented
        self.stateless_pool_size = stateless_pool_size
        self.call_timeout = call_timeout
        self._deployments: dict[str, _Deployment] = {}
        self._inbox: "queue.Queue[_EjbCall | None]" = queue.Queue()
        self._lock = threading.Lock()
        self._stopping = False
        self._worker_idents: set[int] = set()
        self._workers = [
            process.spawn_thread(self._worker, name=f"ejb-{self.name}-{i}")
            for i in range(worker_threads)
        ]

    # ------------------------------------------------------------------
    # Deployment

    def deploy(
        self,
        bean_class: type,
        bean_name: str | None = None,
        factory: Callable[[], Any] | None = None,
    ) -> BeanHandle:
        """Deploy a session bean; returns a handle for remote use.

        ``factory`` builds instances (defaults to the class with no
        arguments). Stateless beans are instantiated
        ``stateless_pool_size`` times up front; stateful beans once per
        handle (see :meth:`create_handle`).
        """
        kind = bean_kind(bean_class)
        bean_name = bean_name or bean_class.__name__
        methods = remote_methods(bean_class)
        factory = factory or bean_class
        with self._lock:
            if bean_name in self._deployments:
                raise EjbError(f"bean {bean_name!r} already deployed in {self.name}")
            deployment = _Deployment(
                bean_name=bean_name, bean_class=bean_class, kind=kind, methods=methods
            )
            self._deployments[bean_name] = deployment
        if kind == STATELESS:
            for _ in range(self.stateless_pool_size):
                deployment.free_instances.put(factory())
            handle_id = f"{bean_name}.pool"
            return BeanHandle(self.name, bean_name, handle_id, methods)
        # Stateful: the deploy-time handle owns the first instance.
        return self.create_handle(bean_name, factory)

    def create_handle(
        self, bean_name: str, factory: Callable[[], Any] | None = None
    ) -> BeanHandle:
        """Create a new stateful-bean handle with its own instance."""
        deployment = self._deployment(bean_name)
        if deployment.kind != STATEFUL:
            raise EjbError(f"{bean_name} is stateless; handles are not per-client")
        factory = factory or deployment.bean_class
        handle_id = f"{bean_name}.{next(self._handle_counter)}"
        with self._lock:
            deployment.stateful_instances[handle_id] = factory()
            deployment.stateful_locks[handle_id] = threading.Lock()
        return BeanHandle(self.name, bean_name, handle_id, deployment.methods)

    def _deployment(self, bean_name: str) -> _Deployment:
        with self._lock:
            deployment = self._deployments.get(bean_name)
        if deployment is None:
            raise EjbError(f"no bean {bean_name!r} deployed in {self.name}")
        return deployment

    # ------------------------------------------------------------------
    # Dispatch (server side: probes 2/3)

    def _worker(self) -> None:
        self._worker_idents.add(threading.get_ident())
        while True:
            call = self._inbox.get()
            if call is None:
                return
            self._execute(call)
            call.done.set()

    def hosts_current_thread(self) -> bool:
        return threading.get_ident() in self._worker_idents

    def _execute(self, call: _EjbCall) -> None:
        monitor = self.process.monitor if self.instrumented else None
        op = OperationInfo(
            interface=call.handle.bean_name,
            operation=call.method,
            object_id=call.handle.object_id,
            component=call.deployment.bean_class.__name__,
            domain=Domain.J2EE,
        )
        skel_ctx = monitor.skel_start(op, call.ftl) if monitor is not None else None
        try:
            call.value = self._invoke_bean(call)
        except BaseException as exc:  # noqa: BLE001 — forwarded to caller
            call.error = exc
        call.reply_ftl = monitor.skel_end(skel_ctx) if monitor is not None else None

    def _invoke_bean(self, call: _EjbCall) -> Any:
        deployment = call.deployment
        if deployment.kind == STATELESS:
            try:
                instance = deployment.free_instances.get(timeout=self.call_timeout)
            except queue.Empty:
                raise EjbError(
                    f"stateless pool of {deployment.bean_name} exhausted"
                ) from None
            try:
                return getattr(instance, call.method)(*call.args, **call.kwargs)
            finally:
                deployment.free_instances.put(instance)
        instance = deployment.stateful_instances.get(call.handle.handle_id)
        if instance is None:
            raise EjbError(f"stale stateful handle {call.handle.handle_id}")
        lock = deployment.stateful_locks[call.handle.handle_id]
        with lock:  # stateful contract: calls serialized per handle
            return getattr(instance, call.method)(*call.args, **call.kwargs)

    # ------------------------------------------------------------------
    # Client side (probes 1/4) — used by the dynamic proxy

    def invoke(
        self,
        client_process: SimProcess,
        handle: BeanHandle,
        method: str,
        args: tuple,
        kwargs: dict,
        client_instrumented: bool,
    ) -> Any:
        deployment = self._deployment(handle.bean_name)
        if method not in deployment.methods:
            raise EjbError(f"{handle.bean_name} exports no method {method!r}")
        monitor = client_process.monitor if client_instrumented else None
        op = OperationInfo(
            interface=handle.bean_name,
            operation=method,
            object_id=handle.object_id,
            component=deployment.bean_class.__name__,
            domain=Domain.J2EE,
        )
        ctx = monitor.stub_start(op) if monitor is not None else None
        call = _EjbCall(
            deployment=deployment,
            handle=handle,
            method=method,
            args=copy.deepcopy(args),  # RMI serialization analogue
            kwargs=copy.deepcopy(kwargs),
            ftl=ctx.request_ftl_payload if ctx is not None else None,
        )
        self._inbox.put(call)
        if not call.done.wait(self.call_timeout):
            raise EjbError(f"call to {handle.bean_name}.{method} timed out")
        if monitor is not None:
            monitor.stub_end(ctx, call.reply_ftl)
        if call.error is not None:
            raise call.error
        return copy.deepcopy(call.value)

    def shutdown(self) -> None:
        self._stopping = True
        for _ in self._workers:
            self._inbox.put(None)


class DynamicProxy:
    """Client-side dynamic proxy over a bean handle (EJB remote stub)."""

    def __init__(self, container: Container, handle: BeanHandle,
                 client_process: SimProcess, instrumented: bool = True):
        self._container = container
        self._handle = handle
        self._client_process = client_process
        self._instrumented = instrumented

    @property
    def handle(self) -> BeanHandle:
        return self._handle

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self._handle.methods:
            raise AttributeError(f"{self._handle.bean_name} has no method {name!r}")

        def call(*args, **kwargs):
            return self._container.invoke(
                self._client_process, self._handle, name, args, kwargs,
                self._instrumented,
            )

        call.__name__ = name
        return call

    def __repr__(self) -> str:
        return f"<ejb proxy {self._handle!r} from {self._client_process.name}>"


class Jndi:
    """A naming service: bean names to (container, handle) bindings."""

    def __init__(self):
        self._bindings: dict[str, tuple[Container, BeanHandle]] = {}
        self._lock = threading.Lock()

    def bind(self, name: str, container: Container, handle: BeanHandle) -> None:
        with self._lock:
            if name in self._bindings:
                raise EjbError(f"JNDI name already bound: {name!r}")
            self._bindings[name] = (container, handle)

    def lookup(
        self, name: str, client_process: SimProcess, instrumented: bool = True
    ) -> DynamicProxy:
        with self._lock:
            binding = self._bindings.get(name)
        if binding is None:
            raise EjbError(f"JNDI name not found: {name!r}")
        container, handle = binding
        return DynamicProxy(container, handle, client_process, instrumented)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._bindings)
