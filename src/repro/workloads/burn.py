"""CPU burning that works on both clock kinds.

Workload servants express their cost as "consume N nanoseconds of CPU".
On a :class:`~repro.platform.clocks.VirtualClock` the charge is exact and
deterministic (tests, accounting experiments); on a real clock we spin
until the thread's CPU counter advances by N (benchmarks, where genuine
timing noise is the point of the accuracy experiments).
"""

from __future__ import annotations

import time

from repro.platform.host import Host


def burn_cpu(host: Host, ns: int) -> None:
    """Charge ~``ns`` nanoseconds of CPU to the calling thread."""
    if ns <= 0:
        return
    clock = host.clock
    consume = getattr(clock, "consume", None)
    if callable(consume):
        consume(ns)
        return
    deadline = time.thread_time_ns() + ns
    spin = 0
    while time.thread_time_ns() < deadline:
        spin += 1  # busy loop: burns CPU on the calling thread


def idle_wall(host: Host, ns: int) -> None:
    """Advance wall time without charging CPU (I/O wait analogue)."""
    if ns <= 0:
        return
    clock = host.clock
    idle = getattr(clock, "idle", None)
    if callable(idle):
        idle(ns)
        return
    time.sleep(ns / 1e9)
