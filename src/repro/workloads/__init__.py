"""Workload builders: canonical patterns, burn helpers, call generators."""

from repro.workloads.burn import burn_cpu, idle_wall
from repro.workloads.generator import BudgetSplitter, FanoutPlan, total_calls_of_budget
from repro.workloads.patterns import (
    PatternHarness,
    PatternScenario,
    callback_scenario,
    parent_child_scenario,
    recursion_scenario,
    sibling_scenario,
)

__all__ = [
    "BudgetSplitter",
    "FanoutPlan",
    "PatternHarness",
    "PatternScenario",
    "burn_cpu",
    "callback_scenario",
    "idle_wall",
    "parent_child_scenario",
    "recursion_scenario",
    "sibling_scenario",
    "total_calls_of_budget",
]
