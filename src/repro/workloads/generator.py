"""Budget-split workload generator.

Used by the large-scale embedded-system experiment: a root invocation
receives a *call budget*; every invocation consumes one unit and splits
the remainder among a seeded-random number of child calls to
seeded-random targets. The total number of component invocations in the
run therefore equals the root budget exactly — which is how the Figure-5
benchmark dials in "about 195,000 calls".
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FanoutPlan:
    """How one invocation spends its budget."""

    children: tuple[tuple[int, int, int], ...]  # (target_index, method_index, budget)


class BudgetSplitter:
    """Deterministic fan-out decisions derived from (seed, budget, depth)."""

    def __init__(
        self,
        target_count: int,
        methods_per_target,
        seed: int,
        max_fanout: int = 4,
    ):
        if target_count < 1:
            raise ValueError("need at least one target")
        self.target_count = target_count
        self.methods_per_target = methods_per_target
        self.seed = seed
        self.max_fanout = max_fanout

    def plan(self, budget: int, path_seed: int) -> FanoutPlan:
        """Split ``budget - 1`` among children (empty plan when exhausted)."""
        remaining = budget - 1
        if remaining <= 0:
            return FanoutPlan(children=())
        rng = random.Random(self.seed * 2_654_435_761 + path_seed)
        fanout = min(rng.randint(1, self.max_fanout), remaining)
        # Random split of `remaining` into `fanout` positive parts.
        cuts = sorted(rng.sample(range(1, remaining), fanout - 1)) if fanout > 1 else []
        bounds = [0] + cuts + [remaining]
        children = []
        for index in range(fanout):
            child_budget = bounds[index + 1] - bounds[index]
            if child_budget <= 0:
                continue
            target = rng.randrange(self.target_count)
            method_count = (
                self.methods_per_target(target)
                if callable(self.methods_per_target)
                else self.methods_per_target
            )
            method = rng.randrange(method_count)
            children.append((target, method, child_budget))
        return FanoutPlan(children=tuple(children))

    def derive_path_seed(self, path_seed: int, child_index: int) -> int:
        """Stable per-child seed so the whole tree is reproducible."""
        return hash((path_seed, child_index)) & 0x7FFFFFFF


def total_calls_of_budget(budget: int) -> int:
    """The invariant the splitter guarantees: calls == budget."""
    return budget
