"""Canonical call-pattern scenarios (Table 1 and Section 2).

Builders that stand up small instrumented deployments exercising exactly
the structures the paper's Table 1 defines:

- **sibling**: ``void main() { F(...); G(...); }``
- **parent/child (nesting)**: ``void F() { G(); }  void G() { H(); }``

plus cascading mixes, callbacks and recursion (both "produce nesting
calls", Section 2). Each builder returns the collected probe records and
the expected Table-1 event-label sequence, so tests and the Table-1
benchmark can verify the chaining patterns verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.core.records import ProbeRecord
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

_PATTERNS_IDL = """
module Patterns {
  interface Hop {
    void F(in long depth);
    void G(in long depth);
    void H(in long depth);
    void recurse(in long depth);
  };
  interface Sink {
    void deliver(in long payload);
  };
  interface Source {
    void pull(in Sink callback);
  };
};
"""


@dataclass
class PatternScenario:
    """A runnable deployment plus its collected records."""

    processes: list[SimProcess]
    records: list[ProbeRecord] = field(default_factory=list)
    expected_labels: list[str] = field(default_factory=list)

    def collect(self) -> list[ProbeRecord]:
        records: list[ProbeRecord] = []
        for process in self.processes:
            records.extend(process.log_buffer.drain())
        records.sort(key=lambda r: (r.chain_uuid, r.event_seq))
        self.records = records
        return records

    def shutdown(self) -> None:
        for process in self.processes:
            process.shutdown()


class PatternHarness:
    """Shared two-process instrumented deployment for the scenarios."""

    def __init__(self, seed_prefix: str = "ab", mode: MonitorMode = MonitorMode.LATENCY):
        self.clock = VirtualClock()
        self.network = Network()
        self.host = Host("host1", PlatformKind.HPUX_11, clock=self.clock)
        self.registry = InterfaceRegistry()
        self.compiled = compile_idl(_PATTERNS_IDL, instrument=True, registry=self.registry)
        self.uuid_factory = SequentialUuidFactory(seed_prefix)
        self.client = self._process("client", mode)
        self.server = self._process("server", mode)
        self.client_orb = Orb(self.client, self.network, registry=self.registry)
        self.server_orb = Orb(self.server, self.network, registry=self.registry)

    def _process(self, name: str, mode: MonitorMode) -> SimProcess:
        process = SimProcess(name, self.host)
        MonitoringRuntime(
            process, MonitorConfig(mode=mode, uuid_factory=self.uuid_factory)
        )
        return process

    @property
    def processes(self) -> list[SimProcess]:
        return [self.client, self.server]


class _HopImpl:
    """Servant whose F→G→H nesting is driven through real stubs."""

    def __init__(self, harness: PatternHarness, burn_ns: int = 100):
        self.harness = harness
        self.burn_ns = burn_ns
        self.self_stub = None  # wired after activation

    def _work(self) -> None:
        self.harness.clock.consume(self.burn_ns)

    def F(self, depth):
        self._work()
        if depth > 0:
            self.self_stub.G(depth - 1)

    def G(self, depth):
        self._work()
        if depth > 0:
            self.self_stub.H(depth - 1)

    def H(self, depth):
        self._work()

    def recurse(self, depth):
        self._work()
        if depth > 0:
            self.self_stub.recurse(depth - 1)


def _hop_impl_class(harness: PatternHarness):
    # _HopImpl first so its method bodies override the servant base's
    # NotImplementedError placeholders.
    return type("HopImpl", (_HopImpl, harness.compiled.Patterns_Hop), {})


def sibling_scenario() -> PatternScenario:
    """Table 1 left column: main calls F then G (cascading)."""
    harness = PatternHarness(seed_prefix="a1")
    impl = _hop_impl_class(harness)(harness, burn_ns=100)
    ref = harness.server_orb.activate(impl, interface="Patterns::Hop")
    impl.self_stub = harness.server_orb.resolve(ref)
    stub = harness.client_orb.resolve(ref)
    stub.F(0)
    stub.G(0)
    scenario = PatternScenario(processes=harness.processes)
    scenario.expected_labels = [
        "Patterns::Hop::F.stub_start",
        "Patterns::Hop::F.skel_start",
        "Patterns::Hop::F.skel_end",
        "Patterns::Hop::F.stub_end",
        "Patterns::Hop::G.stub_start",
        "Patterns::Hop::G.skel_start",
        "Patterns::Hop::G.skel_end",
        "Patterns::Hop::G.stub_end",
    ]
    scenario.collect()
    return scenario


def parent_child_scenario() -> PatternScenario:
    """Table 1 right column: F calls G, G calls H (nesting)."""
    harness = PatternHarness(seed_prefix="a2")
    impl = _hop_impl_class(harness)(harness, burn_ns=100)
    ref = harness.server_orb.activate(impl, interface="Patterns::Hop")
    impl.self_stub = harness.server_orb.resolve(ref)
    stub = harness.client_orb.resolve(ref)
    stub.F(2)  # F -> G -> H
    scenario = PatternScenario(processes=harness.processes)
    scenario.expected_labels = [
        "Patterns::Hop::F.stub_start",
        "Patterns::Hop::F.skel_start",
        "Patterns::Hop::G.stub_start",
        "Patterns::Hop::G.skel_start",
        "Patterns::Hop::H.stub_start",
        "Patterns::Hop::H.skel_start",
        "Patterns::Hop::H.skel_end",
        "Patterns::Hop::H.stub_end",
        "Patterns::Hop::G.skel_end",
        "Patterns::Hop::G.stub_end",
        "Patterns::Hop::F.skel_end",
        "Patterns::Hop::F.stub_end",
    ]
    scenario.collect()
    return scenario


def recursion_scenario(depth: int = 4) -> PatternScenario:
    """Recursion produces nesting calls (Section 2)."""
    harness = PatternHarness(seed_prefix="a3")
    impl = _hop_impl_class(harness)(harness, burn_ns=50)
    ref = harness.server_orb.activate(impl, interface="Patterns::Hop")
    impl.self_stub = harness.server_orb.resolve(ref)
    stub = harness.client_orb.resolve(ref)
    stub.recurse(depth)
    scenario = PatternScenario(processes=harness.processes)
    scenario.collect()
    return scenario


def callback_scenario() -> PatternScenario:
    """Callbacks produce nesting calls (Section 2): client passes a Sink."""
    harness = PatternHarness(seed_prefix="a4")
    compiled = harness.compiled

    class SourceImpl(compiled.Patterns_Source):
        def __init__(self, clock):
            self.clock = clock

        def pull(self, callback):
            self.clock.consume(100)
            callback.deliver(7)  # nested call back into the client process

    class SinkImpl(compiled.Patterns_Sink):
        def __init__(self, clock):
            self.clock = clock
            self.received: list[int] = []

        def deliver(self, payload):
            self.clock.consume(10)
            self.received.append(payload)

    source_ref = harness.server_orb.activate(
        SourceImpl(harness.clock), interface="Patterns::Source"
    )
    sink = SinkImpl(harness.clock)
    harness.client_orb.activate(sink, interface="Patterns::Sink")
    stub = harness.client_orb.resolve(source_ref)
    stub.pull(sink)
    assert sink.received == [7]
    scenario = PatternScenario(processes=harness.processes)
    scenario.collect()
    return scenario
